//! # p3 — Priority-based Parameter Propagation, reproduced in Rust
//!
//! A full reproduction of *"Priority-based Parameter Propagation for
//! Distributed DNN Training"* (Jayarajan et al., MLSys 2019): the P3
//! synchronization mechanism, the MXNet-KVStore-style parameter-server
//! substrate it modifies, a deterministic cluster simulator standing in
//! for the paper's GPU testbed, and a real data-parallel training engine
//! for the accuracy experiments.
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`des`] | `p3-des` | simulated time, event calendar, deterministic RNG |
//! | [`net`] | `p3-net` | fluid flow network, strict-priority max-min sharing |
//! | [`topo`] | `p3-topo` | racks, oversubscribed cores, placement policies |
//! | [`models`] | `p3-models` | ResNet-50 / VGG-19 / InceptionV3 / Sockeye zoo |
//! | [`pserver`] | `p3-pserver` | sharding, push/pull protocol, KV aggregation |
//! | [`core`] | `p3-core` | **the contribution**: slicing, priorities, strategies |
//! | [`cluster`] | `p3-cluster` | end-to-end training-cluster simulation |
//! | [`trace`] | `p3-trace` | typed event traces, Perfetto export, trace files |
//! | [`audit`] | `p3-audit` | offline invariant auditor for exported traces |
//! | [`tensor`] | `p3-tensor` | matrix ops, exact-backprop MLP, datasets |
//! | [`compress`] | `p3-compress` | DGC, QSGD, TernGrad, 1-bit SGD baselines |
//! | [`train`] | `p3-train` | real synchronous / DGC / ASGD training |
//! | [`allreduce`] | `p3-allreduce` | P3 principles on ring/tree collectives |
//! | [`prof`] | `p3-prof` | simulator self-profiling and perf-regression reports |
//! | [`tune`] | `p3-tune` | deterministic grid + genetic config search, Pareto frontier |
//!
//! # Quick start
//!
//! ```no_run
//! use p3::cluster::{ClusterConfig, ClusterSim};
//! use p3::core::SyncStrategy;
//! use p3::models::ModelSpec;
//! use p3::net::Bandwidth;
//!
//! // VGG-19 on 4 machines at 15 Gbps, baseline vs P3 (paper Fig. 7c).
//! let run = |s: SyncStrategy| {
//!     ClusterSim::new(ClusterConfig::new(
//!         ModelSpec::vgg19(), s, 4, Bandwidth::from_gbps(15.0),
//!     ))
//!     .run()
//! };
//! let baseline = run(SyncStrategy::baseline());
//! let p3 = run(SyncStrategy::p3());
//! println!("P3 speedup: {:.2}x", p3.speedup_over(&baseline));
//! ```

#![warn(missing_docs)]

pub use p3_allreduce as allreduce;
pub use p3_audit as audit;
pub use p3_cluster as cluster;
pub use p3_compress as compress;
pub use p3_core as core;
pub use p3_des as des;
pub use p3_models as models;
pub use p3_net as net;
pub use p3_prof as prof;
pub use p3_pserver as pserver;
pub use p3_tensor as tensor;
pub use p3_topo as topo;
pub use p3_trace as trace;
pub use p3_train as train;
pub use p3_tune as tune;
