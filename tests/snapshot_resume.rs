//! Snapshot/resume robustness: a run interrupted at an iteration
//! boundary and resumed from its snapshot must be bit-identical to the
//! uninterrupted run — same result, same rolling event hash, and a trace
//! that is an exact suffix of the full trace — across the parameter-server
//! and collective backends, with and without faults. Malformed snapshot
//! bytes must surface as structured [`SnapshotError`]s, never panics.

use p3::audit::check_resume_equivalence;
use p3::cluster::{BackendKind, ClusterConfig, ClusterSim, FaultPlan, SnapshotError, WorkerCrash};
use p3::core::SyncStrategy;
use p3::des::{SimDuration, SimTime};
use p3::models::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};
use p3::net::Bandwidth;
use p3::trace::TraceEvent;

/// Same small skewed model as `tests/determinism.rs`: fast in debug
/// builds, still exercises slicing, priorities, and multi-block overlap.
fn tiny_model() -> ModelSpec {
    let blocks = vec![
        ComputeBlock::new(
            "conv1",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv1.weight", 40_000)],
        ),
        ComputeBlock::new(
            "conv2",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv2.weight", 120_000)],
        ),
        ComputeBlock::new(
            "head",
            BlockKind::Dense,
            10_000_000,
            vec![
                ParamArray::new("head.weight", 900_000),
                ParamArray::new("head.bias", 3_000),
            ],
        ),
    ];
    ModelSpec::from_blocks("TinyDet", SampleUnit::Images, blocks, 800.0, 32, 0.0)
}

fn base(backend: BackendKind, seed: u64) -> ClusterConfig {
    ClusterConfig::new(
        tiny_model(),
        SyncStrategy::p3(),
        4,
        Bandwidth::from_gbps(5.0),
    )
    .with_iters(1, 2)
    .with_seed(seed)
    .with_backend(backend)
    .with_slice_trace()
}

fn crash_plan(worker: usize, at_ms: u64, rejoin_ms: u64) -> FaultPlan {
    FaultPlan {
        crashes: vec![WorkerCrash {
            worker,
            at: SimTime::from_millis(at_ms),
            rejoin_after: Some(SimDuration::from_millis(rejoin_ms)),
        }],
        ..FaultPlan::none()
    }
}

/// Runs `mk()` uninterrupted, runs it again snapshotting at the first
/// iteration boundary, restores that snapshot under a fresh config, and
/// asserts all three agree: the snapshotting run is bit-identical to the
/// plain one, the resumed run reproduces the full result (rolling event
/// hash included), and the resumed trace is an exact suffix of the full
/// trace.
fn assert_snapshot_resume_bit_identical(label: &str, mk: impl Fn() -> ClusterConfig) {
    let (full, full_log) = ClusterSim::new(mk())
        .try_run_traced()
        .unwrap_or_else(|e| panic!("{label}: full run failed: {e}"));
    let full_log = full_log.expect("slice tracing was enabled");

    let mut snap: Option<(u64, Vec<u8>)> = None;
    let (snapped, _) = ClusterSim::new(mk())
        .try_run_traced_with_snapshots(1, |iter, bytes| {
            if snap.is_none() {
                snap = Some((iter, bytes));
            }
        })
        .unwrap_or_else(|e| panic!("{label}: snapshotting run failed: {e}"));
    assert_eq!(full, snapped, "{label}: taking snapshots perturbed the run");
    let (iter, bytes) = snap.unwrap_or_else(|| panic!("{label}: no snapshot was taken"));
    assert!(iter >= 1, "{label}: snapshot label below the floor");

    let (resumed, resumed_log) = ClusterSim::restore(mk(), &bytes)
        .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"))
        .resume_traced()
        .unwrap_or_else(|e| panic!("{label}: resumed run failed: {e}"));
    let resumed_log = resumed_log.expect("slice tracing was enabled");
    assert_eq!(
        full, resumed,
        "{label}: resumed run diverged from the uninterrupted run"
    );
    assert_eq!(
        full.event_hash, resumed.event_hash,
        "{label}: rolling event hash diverged"
    );
    let report = check_resume_equivalence(&full_log, &resumed_log);
    assert!(
        report.is_clean(),
        "{label}: resumed trace is not a suffix of the full trace:\n{report}"
    );
}

// ---------------------------------------------------------------------
// Resume equivalence per backend, clean and faulty.

#[test]
fn ps_snapshot_resume_is_bit_identical() {
    assert_snapshot_resume_bit_identical("ps", || base(BackendKind::Ps, 7));
}

#[test]
fn ring_snapshot_resume_is_bit_identical() {
    assert_snapshot_resume_bit_identical("ring", || base(BackendKind::Ring, 7));
}

#[test]
fn halving_doubling_snapshot_resume_is_bit_identical() {
    assert_snapshot_resume_bit_identical("halving-doubling", || {
        base(BackendKind::HalvingDoubling, 11)
    });
}

#[test]
fn ps_crash_rejoin_snapshot_resume_is_bit_identical() {
    assert_snapshot_resume_bit_identical("ps-crash", || {
        base(BackendKind::Ps, 7).with_faults(crash_plan(1, 40, 30))
    });
}

#[test]
fn ring_crash_rejoin_snapshot_resume_is_bit_identical() {
    assert_snapshot_resume_bit_identical("ring-crash", || {
        base(BackendKind::Ring, 7).with_faults(crash_plan(2, 40, 30))
    });
}

// ---------------------------------------------------------------------
// Malformed snapshots are structured errors, never panics.

fn snapshot_fixture() -> (ClusterConfig, Vec<u8>) {
    let mut snap: Option<Vec<u8>> = None;
    ClusterSim::new(base(BackendKind::Ps, 7))
        .try_run_traced_with_snapshots(1, |_, bytes| {
            if snap.is_none() {
                snap = Some(bytes);
            }
        })
        .expect("fixture run failed");
    (base(BackendKind::Ps, 7), snap.expect("no snapshot taken"))
}

#[test]
fn valid_snapshot_restores_cleanly() {
    let (cfg, bytes) = snapshot_fixture();
    assert!(ClusterSim::restore(cfg, &bytes).is_ok());
}

#[test]
fn bad_magic_is_rejected() {
    let (cfg, mut bytes) = snapshot_fixture();
    bytes[0] ^= 0xff;
    assert_eq!(
        ClusterSim::restore(cfg, &bytes).map(|_| ()).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn wrong_version_is_rejected_with_both_versions_named() {
    let (cfg, mut bytes) = snapshot_fixture();
    bytes[8] = 99; // low byte of the little-endian format version (v1)
    match ClusterSim::restore(cfg, &bytes).map(|_| ()).unwrap_err() {
        SnapshotError::UnsupportedVersion { found, expected } => {
            assert_eq!(found, 99);
            assert_eq!(expected, p3::cluster::SNAP_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_snapshot_is_rejected() {
    let (cfg, bytes) = snapshot_fixture();
    let cut = &bytes[..bytes.len() - 5];
    assert_eq!(
        ClusterSim::restore(cfg, cut).map(|_| ()).unwrap_err(),
        SnapshotError::Truncated
    );
}

#[test]
fn every_truncation_point_errors_instead_of_panicking() {
    // Sweep prefixes of the byte stream (strided to stay fast): every cut
    // must produce a structured error — truncation can never panic or,
    // worse, restore successfully.
    let (_, bytes) = snapshot_fixture();
    let mut cut = 0;
    while cut < bytes.len() {
        let err = ClusterSim::restore(base(BackendKind::Ps, 7), &bytes[..cut]).map(|_| ());
        assert!(err.is_err(), "truncation at {cut}/{} restored", bytes.len());
        cut += 97;
    }
}

#[test]
fn trailing_garbage_is_corrupt() {
    let (cfg, mut bytes) = snapshot_fixture();
    bytes.push(0);
    match ClusterSim::restore(cfg, &bytes).map(|_| ()).unwrap_err() {
        SnapshotError::Corrupt(why) => assert!(why.contains("trailing"), "{why}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn snapshot_from_a_different_config_is_a_mismatch() {
    let (_, bytes) = snapshot_fixture(); // taken under seed 7
    assert_eq!(
        ClusterSim::restore(base(BackendKind::Ps, 8), &bytes)
            .map(|_| ())
            .unwrap_err(),
        SnapshotError::ConfigMismatch
    );
}

#[test]
fn snapshot_from_a_different_backend_is_a_mismatch() {
    let (_, bytes) = snapshot_fixture(); // taken under the PS backend
    assert_eq!(
        ClusterSim::restore(base(BackendKind::Ring, 7), &bytes)
            .map(|_| ())
            .unwrap_err(),
        SnapshotError::ConfigMismatch
    );
}

// ---------------------------------------------------------------------
// Divergence bisection via the rolling state-hash stream.

#[test]
fn state_hash_stream_bisects_divergence_to_the_first_differing_event() {
    // Two configurations that agree until a fault fires: the clean run
    // and the same run with a mid-flight crash. Their per-event hash
    // streams must share a non-empty common prefix (the pre-fault events)
    // and then diverge — the first differing row IS the divergence point,
    // no re-running or manual diffing required.
    let hashes = |cfg: ClusterConfig| -> Vec<(u64, u64)> {
        let (_, log) = ClusterSim::new(cfg.with_state_hash_every(1))
            .try_run_traced()
            .expect("run failed");
        log.expect("tracing enabled")
            .events()
            .iter()
            .filter_map(|te| match te.event {
                TraceEvent::StateHash { events, hash } => Some((events, hash)),
                _ => None,
            })
            .collect()
    };
    let clean = hashes(base(BackendKind::Ps, 7));
    let crashed = hashes(base(BackendKind::Ps, 7).with_faults(crash_plan(1, 40, 30)));
    let first = clean
        .iter()
        .zip(&crashed)
        .position(|(a, b)| a != b)
        .expect("a crash must eventually diverge the event stream");
    assert!(
        first > 0,
        "runs share no common prefix — bisection degenerates"
    );
    assert_eq!(
        clean[..first],
        crashed[..first],
        "prefix before the divergence point must be identical"
    );
    // Both streams index hash rows by event count, so the row where they
    // split names the exact event to inspect.
    assert_eq!(clean[first].0, crashed[first].0);
}

#[test]
fn identical_configs_have_identical_hash_streams() {
    let run = || {
        let (r, _) = ClusterSim::new(base(BackendKind::Ring, 7))
            .try_run_traced()
            .expect("run failed");
        r.event_hash
    };
    assert_eq!(run(), run());
}
