//! Topology-aware networking end to end through the `p3` facade: the
//! degenerate single-rack fabric reproduces the flat simulator exactly,
//! and an oversubscribed core changes results the way DESIGN.md §9 says
//! it should.

use p3::cluster::{ClusterConfig, ClusterSim};
use p3::core::SyncStrategy;
use p3::models::ModelSpec;
use p3::net::Bandwidth;
use p3::topo::{Placement, Topology};

fn base_cfg() -> ClusterConfig {
    ClusterConfig::new(
        ModelSpec::resnet50(),
        SyncStrategy::p3(),
        4,
        Bandwidth::from_gbps(10.0),
    )
    .with_iters(1, 2)
    .with_seed(7)
}

#[test]
fn single_rack_topology_reproduces_the_flat_simulator() {
    let flat = ClusterSim::new(base_cfg()).run();
    let mut topo = ClusterSim::new(base_cfg().with_topology(Topology::new(1, 4, 1.0))).run();
    // Only the link-utilization report distinguishes the runs: the flat
    // fabric has no link graph to report on.
    assert!(!topo.links.is_empty());
    assert!(flat.links.is_empty());
    topo.links.clear();
    assert_eq!(flat, topo);
}

#[test]
fn oversubscribed_core_costs_throughput_and_placement_is_accepted() {
    let full = ClusterSim::new(base_cfg().with_topology(Topology::new(2, 2, 1.0))).run();
    let squeezed = ClusterSim::new(
        base_cfg()
            .with_topology(Topology::new(2, 2, 8.0))
            .with_placement(Placement::RackLocal),
    )
    .run();
    assert!(
        squeezed.throughput < full.throughput,
        "8:1 core did not slow training: {} vs {}",
        squeezed.throughput,
        full.throughput
    );
    // Rack-local aggregation actually engaged: combined pushes crossed
    // the core on behalf of whole racks.
    assert!(squeezed.messages.combined_pushes > 0);
    // Transit links exist and report sane utilization.
    let core: Vec<_> = squeezed.links.iter().filter(|l| l.transit).collect();
    assert_eq!(core.len(), 4); // up + down per rack
    for l in core {
        assert!((0.0..=1.0).contains(&l.busy_fraction), "{l:?}");
        assert!(l.bytes > 0.0, "{l:?}");
    }
}
