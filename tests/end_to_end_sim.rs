//! Cross-crate integration: strategies from `p3-core`, models from
//! `p3-models`, executed by `p3-cluster` over `p3-net` — asserting the
//! paper's qualitative claims hold end to end.
//!
//! Iteration counts are small so the suite stays fast in debug builds; the
//! full-scale numbers live in the bench binaries.

use p3::cluster::{throughput_of, ClusterConfig, ClusterSim};
use p3::core::SyncStrategy;
use p3::models::ModelSpec;
use p3::net::Bandwidth;

fn tp(model: &ModelSpec, s: SyncStrategy, gbps: f64) -> f64 {
    throughput_of(model, &s, 4, Bandwidth::from_gbps(gbps), 1, 4, 11)
}

#[test]
fn p3_beats_baseline_on_constrained_resnet() {
    // Fig. 7a: at 4 Gbps the baseline has left the linear regime, P3 has
    // not.
    let m = ModelSpec::resnet50();
    let base = tp(&m, SyncStrategy::baseline(), 4.0);
    let p3 = tp(&m, SyncStrategy::p3(), 4.0);
    assert!(
        p3 > base * 1.10,
        "P3 should clearly win at 4 Gbps: baseline {base:.1}, P3 {p3:.1}"
    );
}

#[test]
fn strategies_tie_at_high_bandwidth_on_resnet() {
    // Fig. 7a: with ample bandwidth every strategy is compute-bound.
    let m = ModelSpec::resnet50();
    let base = tp(&m, SyncStrategy::baseline(), 25.0);
    let p3 = tp(&m, SyncStrategy::p3(), 25.0);
    assert!(
        (p3 / base - 1.0).abs() < 0.05,
        "compute-bound regime should tie: baseline {base:.1}, P3 {p3:.1}"
    );
}

#[test]
fn slicing_matters_for_vgg_but_not_resnet() {
    // §5.3: VGG's single huge layer benefits from slicing alone; ResNet's
    // already-fine layers do not.
    let vgg = ModelSpec::vgg19();
    let v_base = tp(&vgg, SyncStrategy::baseline(), 20.0);
    let v_slice = tp(&vgg, SyncStrategy::slicing_only(), 20.0);
    assert!(
        v_slice > v_base * 1.15,
        "VGG slicing-only should win big: {v_base:.1} vs {v_slice:.1}"
    );

    let resnet = ModelSpec::resnet50();
    let r_base = tp(&resnet, SyncStrategy::baseline(), 8.0);
    let r_slice = tp(&resnet, SyncStrategy::slicing_only(), 8.0);
    let vgg_gain = v_slice / v_base;
    let resnet_gain = r_slice / r_base;
    assert!(
        vgg_gain > resnet_gain,
        "slicing should matter more for VGG ({vgg_gain:.2}x) than ResNet ({resnet_gain:.2}x)"
    );
}

#[test]
fn p3_speedup_shrinks_when_bandwidth_is_ample_for_sockeye() {
    let m = ModelSpec::sockeye();
    let tight = tp(&m, SyncStrategy::p3(), 4.0) / tp(&m, SyncStrategy::baseline(), 4.0);
    let ample = tp(&m, SyncStrategy::p3(), 30.0) / tp(&m, SyncStrategy::baseline(), 30.0);
    assert!(
        tight > ample,
        "P3's edge should be larger under constraint: {tight:.2}x vs {ample:.2}x"
    );
}

#[test]
fn simulation_is_deterministic() {
    let mk = || {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(4.0),
        )
        .with_iters(1, 3)
        .with_seed(99)
    };
    let a = ClusterSim::new(mk()).run();
    let b = ClusterSim::new(mk()).run();
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.events, b.events);
}

#[test]
fn consumption_order_priorities_beat_generation_order() {
    // The ablation at the heart of the paper: same slicing, same transport,
    // only the priority order differs.
    let m = ModelSpec::resnet50();
    let consumption = tp(&m, SyncStrategy::p3(), 3.0);
    let generation = tp(&m, SyncStrategy::p3_generation_order(), 3.0);
    assert!(
        consumption >= generation,
        "consumption order {consumption:.1} vs generation order {generation:.1}"
    );
}

#[test]
fn more_machines_scale_aggregate_throughput() {
    // Fig. 10: doubling the cluster must increase aggregate throughput.
    let m = ModelSpec::resnet50();
    let bw = Bandwidth::from_gbps(10.0);
    let t4 = throughput_of(&m, &SyncStrategy::p3(), 4, bw, 1, 3, 5);
    let t8 = throughput_of(&m, &SyncStrategy::p3(), 8, bw, 1, 3, 5);
    assert!(t8 > t4 * 1.5, "scaling 4->8 machines: {t4:.1} -> {t8:.1}");
}
