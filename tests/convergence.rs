//! Cross-crate integration of the accuracy stack: `p3-tensor` gradients
//! through `p3-pserver` aggregation under `p3-train` orchestration, with
//! `p3-compress` baselines.

use p3::tensor::gaussian_blobs;
use p3::train::{train_async, train_sync, SyncMode, TrainConfig};

fn cfg(epochs: u32) -> TrainConfig {
    let mut c = TrainConfig::new(epochs);
    c.hidden = vec![16];
    c.batch_per_worker = 16;
    c
}

#[test]
fn full_sync_hits_high_accuracy() {
    let data = gaussian_blobs(3, 6, 480, 120, 0.8, 3);
    let run = train_sync(&data, &cfg(6), SyncMode::FullSync);
    assert!(run.final_accuracy > 0.9, "accuracy {}", run.final_accuracy);
}

#[test]
fn p3_equivalence_worker_count_changes_nothing_fundamental() {
    // P3's guarantee is "full gradients, synchronous" — with identical
    // total batch and data order, 2 and 4 workers give close results.
    let data = gaussian_blobs(3, 6, 480, 120, 0.8, 3);
    let mut c2 = cfg(5);
    c2.workers = 2;
    c2.batch_per_worker = 32;
    let mut c4 = cfg(5);
    c4.workers = 4;
    c4.batch_per_worker = 16;
    let r2 = train_sync(&data, &c2, SyncMode::FullSync);
    let r4 = train_sync(&data, &c4, SyncMode::FullSync);
    assert!(
        (r2.final_accuracy - r4.final_accuracy).abs() < 0.15,
        "{} vs {}",
        r2.final_accuracy,
        r4.final_accuracy
    );
}

#[test]
fn exact_sync_at_least_matches_compressed() {
    let data = gaussian_blobs(4, 8, 640, 160, 1.0, 9);
    let c = cfg(6);
    let full = train_sync(&data, &c, SyncMode::FullSync);
    for mode in [
        SyncMode::Dgc {
            final_sparsity: 0.99,
            warmup_epochs: 2,
        },
        SyncMode::GradDrop { ratio: 50.0 },
    ] {
        let run = train_sync(&data, &c, mode);
        assert!(
            full.final_accuracy >= run.final_accuracy - 0.05,
            "{}: full {} vs {}",
            run.mode_name,
            full.final_accuracy,
            run.final_accuracy
        );
    }
}

#[test]
fn asgd_with_staleness_never_beats_sync_meaningfully() {
    let data = gaussian_blobs(4, 8, 640, 160, 1.1, 4);
    let c = cfg(6);
    let sync = train_sync(&data, &c, SyncMode::FullSync);
    let asgd = train_async(&data, &c, 3);
    assert!(
        sync.final_accuracy >= asgd.final_accuracy - 0.03,
        "sync {} vs asgd {}",
        sync.final_accuracy,
        asgd.final_accuracy
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let data = gaussian_blobs(2, 4, 160, 40, 1.0, 8);
    let a = train_sync(
        &data,
        &cfg(2),
        SyncMode::Dgc {
            final_sparsity: 0.95,
            warmup_epochs: 1,
        },
    );
    let b = train_sync(
        &data,
        &cfg(2),
        SyncMode::Dgc {
            final_sparsity: 0.95,
            warmup_epochs: 1,
        },
    );
    assert_eq!(a, b);
}
