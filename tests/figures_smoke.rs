//! Smoke tests that every figure pipeline produces plausible data at toy
//! scale — the full-resolution numbers live in `crates/bench/src/bin`.

use p3::cluster::gantt::{
    figure6_layerwise, figure6_sliced, schedule_sync, schedule_tandem, PipelineSpec, SyncOrder,
};
use p3::cluster::{bandwidth_sweep, slice_size_sweep};
use p3::core::SyncStrategy;
use p3::models::ModelSpec;
use p3::net::Bandwidth;

#[test]
fn fig4_delay_halves() {
    let a = schedule_sync(&PipelineSpec::figure4(), SyncOrder::Fifo);
    let b = schedule_sync(&PipelineSpec::figure4(), SyncOrder::PriorityPreemptive);
    assert_eq!(a.iteration_gap, 4.0);
    assert_eq!(b.iteration_gap, 2.0);
}

#[test]
fn fig5_shapes_match_paper_description() {
    // VGG: one array dominates; Sockeye: heaviest block first; ResNet:
    // many modest arrays.
    let vgg = ModelSpec::vgg19();
    let frac = vgg.heaviest_array().expect("params").params as f64 / vgg.total_params() as f64;
    assert!(frac > 0.7);
    assert_eq!(ModelSpec::sockeye().heaviest_block_index(), Some(0));
    assert!(ModelSpec::resnet50().num_arrays() > 150);
}

#[test]
fn fig6_slicing_saves() {
    let a = schedule_tandem(&figure6_layerwise());
    let b = schedule_tandem(&figure6_sliced());
    assert!(b.makespan < a.makespan);
}

#[test]
fn fig7_sweep_produces_monotone_ish_curves() {
    let pts = bandwidth_sweep(
        &ModelSpec::resnet50(),
        &[SyncStrategy::p3()],
        2,
        &[2.0, 20.0],
        1,
        2,
        3,
    );
    assert!(
        pts[1].series[0].1 > pts[0].series[0].1,
        "more bandwidth, more throughput"
    );
}

#[test]
fn fig12_extreme_slice_sizes_are_suboptimal() {
    let pts = slice_size_sweep(
        &ModelSpec::resnet50(),
        &[1_000, 50_000, 2_000_000],
        4,
        Bandwidth::from_gbps(4.0),
        1,
        3,
        3,
    );
    let tiny = pts[0].series[0].1;
    let mid = pts[1].series[0].1;
    assert!(mid >= tiny, "50k ({mid:.1}) should beat 1k ({tiny:.1})");
}
