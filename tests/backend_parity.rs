//! Parity between the engine-hosted ring backend and the closed-form
//! analytic allreduce simulator (`p3_allreduce::run_allreduce`).
//!
//! The two models are calibrated differently — the analytic model charges
//! a fixed `per_step` cost plus busiest-link serialization at a protocol
//! efficiency, while the engine runs every chunk through per-message
//! admission gates and the fluid network — so exact agreement is not
//! expected. Under a matched calibration (see [`analytic_ring_throughput`])
//! they track each other within a few percent; this test pins the
//! flat-topology discrepancy to a documented band (EXPERIMENTS.md,
//! "Engine vs analytic allreduce") so either model drifting silently
//! fails CI.

use p3::allreduce::{run_allreduce, AllreduceConfig, DEFAULT_COLLECTIVE_SLICE};
use p3::cluster::{BackendKind, ClusterConfig, ClusterSim};
use p3::core::SyncStrategy;
use p3::des::SimDuration;
use p3::models::ModelSpec;
use p3::net::Bandwidth;

/// VGG-19 on four machines — the paper's flagship model. 4 Gbps is deep in
/// the communication-bound regime (the transport model dominates); 15 Gbps
/// is the paper's flagship operating point, where the run is
/// compute-bound with full overlap (both models converge on compute time).
const MACHINES: usize = 4;

fn engine_ring_throughput(gbps: f64) -> f64 {
    // Matched slicing: the engine uses the strategy's shard plan, so give
    // it the analytic model's collective slice size.
    let cfg = ClusterConfig::new(
        ModelSpec::vgg19(),
        SyncStrategy::p3_with_slice_params(DEFAULT_COLLECTIVE_SLICE),
        MACHINES,
        Bandwidth::from_gbps(gbps),
    )
    .with_iters(2, 8)
    .with_seed(17)
    .with_backend(BackendKind::Ring);
    ClusterSim::new(cfg).run().throughput
}

fn analytic_ring_throughput(gbps: f64) -> f64 {
    let mut cfg = AllreduceConfig::new(ModelSpec::vgg19(), MACHINES, Bandwidth::from_gbps(gbps));
    cfg.warmup_iters = 2;
    cfg.measure_iters = 8;
    cfg.seed = 17;
    // Matched calibration. The engine derates NIC goodput by
    // `ClusterConfig::net_efficiency` (0.25) and splits every transfer into
    // `collective_channels` (4) flows, each admitted 100 µs (`msg_overhead`)
    // apart and delivered after 50 µs one-way latency — so the analytic
    // side uses the same efficiency and a per-step constant of
    // 4 × 100 µs + 50 µs = 450 µs.
    cfg.net_efficiency = 0.25;
    cfg.per_step = SimDuration::from_micros(450);
    run_allreduce(&cfg).throughput
}

#[test]
fn engine_ring_tracks_analytic_allreduce_on_flat_topology() {
    // Measured ratios (EXPERIMENTS.md): 1.030 at 4 Gbps (comm-bound),
    // 1.006 at 15 Gbps (compute-bound); the band leaves margin on both
    // sides. The engine lands slightly above because the fluid network
    // overlaps a chunk's admission gate with the previous chunk's
    // drain, which the analytic per-step constant charges in full.
    for gbps in [4.0, 15.0] {
        let engine = engine_ring_throughput(gbps);
        let analytic = analytic_ring_throughput(gbps);
        let ratio = engine / analytic;
        assert!(
            (0.90..=1.15).contains(&ratio),
            "at {gbps} Gbps: engine {engine:.1} vs analytic {analytic:.1} samples/s \
             (ratio {ratio:.3}) left the documented tolerance band [0.90, 1.15]"
        );
    }
}
