//! Property tests for the trace auditor: every trace the simulator
//! actually produces — across random cluster shapes, bandwidths, seeds,
//! strategies and fault rates — must satisfy the invariant catalog
//! (DESIGN.md §10). A failure here means either a simulator bug or an
//! over-strict auditor; both are worth knowing about.

use p3::audit::{check_with, AuditOptions};
use p3::cluster::{ClusterConfig, ClusterSim, FaultPlan};
use p3::core::SyncStrategy;
use p3::models::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};
use p3::net::Bandwidth;
use p3::topo::Topology;
use proptest::prelude::*;

fn tiny_model(head_params: u64) -> ModelSpec {
    let blocks = vec![
        ComputeBlock::new(
            "conv1",
            BlockKind::Conv,
            30_000_000,
            vec![ParamArray::new("conv1.weight", 50_000)],
        ),
        ComputeBlock::new(
            "head",
            BlockKind::Dense,
            10_000_000,
            vec![ParamArray::new("head.weight", head_params)],
        ),
    ];
    ModelSpec::from_blocks("TinyProp", SampleUnit::Images, blocks, 900.0, 32, 0.0)
}

fn audit_clean(cfg: ClusterConfig) -> Result<(), String> {
    let cfg = cfg.with_slice_trace();
    let meta = cfg.trace_meta();
    let (_, log) = ClusterSim::new(cfg)
        .try_run_traced()
        .map_err(|e| format!("run failed: {e}"))?;
    let log = log.expect("slice tracing was enabled");
    let report = check_with(&log, &AuditOptions::from_meta(&meta));
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("audit failed on a real trace:\n{report}"))
    }
}

proptest! {
    /// Flat clusters: any shape, both strategies, any seed.
    #[test]
    fn simulator_traces_always_audit_clean(
        machines in 2usize..5,
        gbps in 2.0f64..20.0,
        seed in 0u64..1_000_000,
        head in 200_000u64..1_500_000,
        p3_strategy in any::<bool>(),
    ) {
        let strategy = if p3_strategy { SyncStrategy::p3() } else { SyncStrategy::baseline() };
        let cfg = ClusterConfig::new(
            tiny_model(head),
            strategy,
            machines,
            Bandwidth::from_gbps(gbps),
        )
        .with_iters(0, 2)
        .with_seed(seed);
        if let Err(why) = audit_clean(cfg) {
            prop_assert!(false, "machines={machines} gbps={gbps:.1} seed={seed} p3={p3_strategy}: {why}");
        }
    }

    /// Lossy clusters: the retransmit machinery must not break causality,
    /// conservation or capacity accounting.
    #[test]
    fn lossy_traces_audit_clean(
        machines in 2usize..4,
        loss in 0.0f64..0.15,
        seed in 0u64..1_000_000,
    ) {
        let mut faults = FaultPlan::none();
        faults.loss_probability = loss;
        let cfg = ClusterConfig::new(
            tiny_model(600_000),
            SyncStrategy::p3(),
            machines,
            Bandwidth::from_gbps(6.0),
        )
        .with_iters(0, 2)
        .with_seed(seed)
        .with_faults(faults);
        if let Err(why) = audit_clean(cfg) {
            prop_assert!(false, "machines={machines} loss={loss} seed={seed}: {why}");
        }
    }

    /// Rack topologies: per-port capacity is unknown to the auditor there
    /// (heterogeneous fabric), but every other invariant still applies.
    #[test]
    fn topology_traces_audit_clean(
        oversub in 1.0f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let cfg = ClusterConfig::new(
            tiny_model(600_000),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(6.0),
        )
        .with_iters(0, 2)
        .with_seed(seed)
        .with_topology(Topology::new(2, 2, oversub));
        if let Err(why) = audit_clean(cfg) {
            prop_assert!(false, "oversub={oversub} seed={seed}: {why}");
        }
    }
}

proptest! {
    /// Collective backends: randomized cluster shapes, bandwidths and
    /// seeds under ring and halving–doubling allreduce must produce
    /// audit-clean traces too — the engine's collective chunks obey the
    /// same causality, conservation and capacity invariants as PS
    /// messages. (Halving–doubling additionally requires a power-of-two
    /// cluster, so its size is drawn from {2, 4}.)
    #[test]
    fn collective_traces_always_audit_clean(
        machines in 2usize..6,
        gbps in 2.0f64..20.0,
        seed in 0u64..1_000_000,
        head in 200_000u64..1_500_000,
        ring in any::<bool>(),
    ) {
        use p3::cluster::BackendKind;
        let (backend, machines) = if ring {
            (BackendKind::Ring, machines)
        } else {
            (BackendKind::HalvingDoubling, if machines < 4 { 2 } else { 4 })
        };
        let cfg = ClusterConfig::new(
            tiny_model(head),
            SyncStrategy::p3(),
            machines,
            Bandwidth::from_gbps(gbps),
        )
        .with_iters(0, 2)
        .with_seed(seed)
        .with_backend(backend);
        if let Err(why) = audit_clean(cfg) {
            prop_assert!(false, "backend={} machines={machines} gbps={gbps:.1} seed={seed}: {why}", backend.name());
        }
    }
}
