//! The `p3-tune` search harness's two headline guarantees, end to end:
//!
//! 1. **Byte-identical reports.** The same search produces the same
//!    `TuneReport` JSON, byte for byte, run to run AND across worker
//!    counts — results are merged by candidate index, never completion
//!    order, and no wall-clock value reaches the report.
//! 2. **Recommendations replay clean.** Every recommended config, re-run
//!    from scratch with the inline trace audit enabled, passes the full
//!    invariant catalog — across random cluster shapes and seeds.

use p3::models::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};
use p3::tune::{
    tune, verify_recommended, Cell, EvalParams, FaultClass, SearchSpace, TuneReport, TuneSettings,
};
use proptest::prelude::*;

/// Small skewed model: enough blocks to exercise slicing and priorities,
/// small enough for a debug-build search over many candidates.
fn tiny_model() -> ModelSpec {
    let blocks = vec![
        ComputeBlock::new(
            "conv1",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv1.weight", 40_000)],
        ),
        ComputeBlock::new(
            "conv2",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv2.weight", 120_000)],
        ),
        ComputeBlock::new(
            "head",
            BlockKind::Dense,
            10_000_000,
            vec![
                ParamArray::new("head.weight", 900_000),
                ParamArray::new("head.bias", 3_000),
            ],
        ),
    ];
    ModelSpec::from_blocks("TinyTune", SampleUnit::Images, blocks, 800.0, 32, 0.0)
}

fn cell(machines: usize, gbps: f64, fault: FaultClass) -> Cell {
    Cell {
        model: tiny_model(),
        machines,
        gbps,
        topology: None,
        fault,
    }
}

fn small_settings(jobs: usize, seed: u64) -> TuneSettings {
    TuneSettings {
        space: SearchSpace::parse("slice=500000,2000000;policy=consumption,generation;backend=ps")
            .expect("valid space"),
        params: EvalParams {
            warmup: 1,
            screen_measure: 2,
            measure: 3,
        },
        generations: 1,
        population: 4,
        seed,
        jobs,
    }
}

fn report_json(cells: &[Cell], settings: &TuneSettings) -> String {
    let outcome = tune(cells, settings).expect("search runs");
    TuneReport::from_outcome(&outcome, settings).to_json()
}

/// Grid + one genetic generation over two cells: the report must be byte
/// stable across repeated runs and across `jobs` 1 vs 4. The `jobs` knob
/// may change scheduling arbitrarily but must never reach the report.
#[test]
fn tune_report_is_byte_identical_across_runs_and_jobs() {
    let cells = vec![
        cell(3, 5.0, FaultClass::None),
        cell(4, 10.0, FaultClass::Loss),
    ];
    let serial = report_json(&cells, &small_settings(1, 42));
    let serial_again = report_json(&cells, &small_settings(1, 42));
    assert_eq!(serial, serial_again, "run-to-run report drift at --jobs 1");
    let parallel = report_json(&cells, &small_settings(4, 42));
    assert_eq!(serial, parallel, "--jobs changed report bytes");
    let parallel_again = report_json(&cells, &small_settings(4, 42));
    assert_eq!(parallel, parallel_again, "run-to-run drift at --jobs 4");
}

/// The report round-trips through its own parser, and the search found a
/// nonempty frontier with a recommendation for a healthy cell.
#[test]
fn tune_report_round_trips_and_recommends() {
    let cells = vec![cell(3, 8.0, FaultClass::None)];
    let settings = small_settings(2, 7);
    let outcome = tune(&cells, &settings).expect("search runs");
    let report = TuneReport::from_outcome(&outcome, &settings);
    let json = report.to_json();
    let parsed = TuneReport::from_json(&json).expect("report parses");
    assert_eq!(parsed, report, "JSON round-trip lost information");
    let c = &report.cells[0];
    assert!(!c.frontier.is_empty(), "no Pareto frontier members");
    assert!(c.recommended.is_some(), "no recommended config");
}

proptest! {
    /// Any recommended config, on any cluster shape the tuner searched,
    /// replays audit-clean when re-simulated from scratch over the full
    /// measurement window.
    #[test]
    fn recommended_configs_replay_audit_clean(
        machines in 2usize..5,
        gbps in 3.0f64..20.0,
        seed in 0u64..1_000_000,
        lossy in any::<bool>(),
    ) {
        let fault = if lossy { FaultClass::Loss } else { FaultClass::None };
        let cells = vec![cell(machines, gbps, fault)];
        let mut settings = small_settings(1, seed);
        settings.generations = 0; // grid only: keep each case cheap
        let outcome = tune(&cells, &settings).expect("search runs");
        let audited = verify_recommended(&outcome, &settings)
            .expect("recommended config failed its audit replay");
        prop_assert_eq!(audited, 1, "expected exactly one recommendation");
    }
}
