//! Run-twice determinism: identical configurations must produce
//! bit-identical results AND byte-identical exported traces, across flat,
//! faulty, and topology-aware clusters.
//!
//! This is the behavioural counterpart of the `p3-lint` ban on unordered
//! collections in simulation crates: any HashMap iteration order leaking
//! into scheduling decisions shows up here as a digest mismatch.

use p3::cluster::{ClusterConfig, ClusterSim, FaultPlan};
use p3::core::SyncStrategy;
use p3::models::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};
use p3::net::Bandwidth;
use p3::topo::{Placement, Topology};
use p3::trace::export_trace_json;

/// A small skewed model so the suite stays fast in debug builds while
/// still exercising slicing, priorities and multi-block pipelines.
fn tiny_model() -> ModelSpec {
    let blocks = vec![
        ComputeBlock::new(
            "conv1",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv1.weight", 40_000)],
        ),
        ComputeBlock::new(
            "conv2",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv2.weight", 120_000)],
        ),
        ComputeBlock::new(
            "head",
            BlockKind::Dense,
            10_000_000,
            vec![
                ParamArray::new("head.weight", 900_000),
                ParamArray::new("head.bias", 3_000),
            ],
        ),
    ];
    ModelSpec::from_blocks("TinyDet", SampleUnit::Images, blocks, 800.0, 32, 0.0)
}

/// FNV-1a over the exported trace document: small to report, and any
/// event reorder, retime or refield changes it.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the config twice and asserts throughput bits, event counts and the
/// full exported trace agree.
fn assert_deterministic(label: &str, mk: impl Fn() -> ClusterConfig) {
    let digest = || {
        let cfg = mk().with_slice_trace();
        let meta = cfg.trace_meta();
        let (result, log) = ClusterSim::new(cfg)
            .try_run_traced()
            .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
        let log = log.expect("slice tracing was enabled");
        let doc = export_trace_json(&log, &meta);
        (
            result.throughput.to_bits(),
            result.events,
            log.len(),
            fnv(&doc),
        )
    };
    let a = digest();
    let b = digest();
    assert_eq!(
        a, b,
        "{label}: reruns diverged (throughput bits, sim events, trace events, trace digest)"
    );
}

#[test]
fn flat_cluster_is_run_twice_deterministic() {
    assert_deterministic("flat", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(7)
    });
}

#[test]
fn baseline_strategy_is_run_twice_deterministic() {
    assert_deterministic("baseline", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::baseline(),
            3,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(0, 2)
        .with_seed(21)
    });
}

#[test]
fn lossy_cluster_is_run_twice_deterministic() {
    assert_deterministic("lossy", || {
        let mut faults = FaultPlan::none();
        faults.loss_probability = 0.05;
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            3,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(13)
        .with_faults(faults)
    });
}

#[test]
fn topology_cluster_is_run_twice_deterministic() {
    assert_deterministic("topology", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(3)
        .with_topology(Topology::new(2, 2, 2.0))
    });
}

#[test]
fn rack_local_placement_is_run_twice_deterministic() {
    assert_deterministic("rack-local", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(5)
        .with_topology(Topology::new(2, 2, 2.0))
        .with_placement(Placement::RackLocal)
    });
}

#[test]
fn ring_backend_is_run_twice_deterministic() {
    use p3::cluster::BackendKind;
    assert_deterministic("ring", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(7)
        .with_backend(BackendKind::Ring)
    });
}

#[test]
fn halving_doubling_backend_is_run_twice_deterministic() {
    use p3::cluster::BackendKind;
    assert_deterministic("halving-doubling", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(11)
        .with_backend(BackendKind::HalvingDoubling)
    });
}

/// A mid-run crash with a later rejoin, exercising the fault machinery
/// (and, under collective backends, abort-and-reform of the in-flight
/// collective) inside the run-twice digest net.
fn crash_rejoin_plan() -> FaultPlan {
    use p3::cluster::WorkerCrash;
    use p3::des::{SimDuration, SimTime};
    FaultPlan {
        crashes: vec![WorkerCrash {
            worker: 1,
            at: SimTime::from_millis(40),
            rejoin_after: Some(SimDuration::from_millis(30)),
        }],
        ..FaultPlan::none()
    }
}

#[test]
fn ps_crash_rejoin_is_run_twice_deterministic() {
    assert_deterministic("ps-crash", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(7)
        .with_faults(crash_rejoin_plan())
    });
}

#[test]
fn ring_crash_rejoin_is_run_twice_deterministic() {
    use p3::cluster::BackendKind;
    assert_deterministic("ring-crash", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(7)
        .with_backend(BackendKind::Ring)
        .with_faults(crash_rejoin_plan())
    });
}

#[test]
fn halving_doubling_crash_rejoin_is_run_twice_deterministic() {
    use p3::cluster::BackendKind;
    assert_deterministic("halving-doubling-crash", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(11)
        .with_backend(BackendKind::HalvingDoubling)
        .with_faults(crash_rejoin_plan())
    });
}

#[test]
fn ring_backend_on_topology_is_run_twice_deterministic() {
    use p3::cluster::BackendKind;
    assert_deterministic("ring-topology", || {
        ClusterConfig::new(
            tiny_model(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(5.0),
        )
        .with_iters(1, 2)
        .with_seed(19)
        .with_backend(BackendKind::Ring)
        .with_topology(Topology::new(2, 2, 2.0))
    });
}
