//! Golden-digest pin for the parameter-server path.
//!
//! The engine decomposition (DESIGN.md §11) promised that splitting
//! `ClusterSim` into layers would be behaviour-preserving: the PS path
//! must produce **bit-identical traces** to the pre-refactor monolith.
//! This test pins that promise to a constant captured from the
//! pre-refactor build. If it ever fails, the engine changed observable
//! scheduling behaviour — either revert, or (for an intentional protocol
//! change) regenerate the constant and call the change out in the PR.

use p3::cluster::{ClusterConfig, ClusterSim};
use p3::core::SyncStrategy;
use p3::models::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};
use p3::net::Bandwidth;
use p3::trace::export_trace_json;

/// Digest of the exported trace for [`golden_config`], captured from the
/// pre-refactor monolithic `sim.rs` (commit 6ef229d lineage), re-pinned
/// when the export metadata gained the `collective` field (the event
/// stream, throughput bits, and event count are unchanged from the
/// original capture — only the embedded `p3Meta` header grew).
const GOLDEN_TRACE_FNV: u64 = 0x425b_a9d2_bb57_3d7a;
/// Throughput bits for the same run.
const GOLDEN_THROUGHPUT_BITS: u64 = 0x40a3_86b6_3905_ca76;
/// Simulator events processed for the same run.
const GOLDEN_EVENTS: u64 = 1639;

/// Same skewed three-block model as `tests/determinism.rs`: fast to run
/// in debug builds, still exercises slicing, priorities, and stalls.
fn tiny_model() -> ModelSpec {
    let blocks = vec![
        ComputeBlock::new(
            "conv1",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv1.weight", 40_000)],
        ),
        ComputeBlock::new(
            "conv2",
            BlockKind::Conv,
            40_000_000,
            vec![ParamArray::new("conv2.weight", 120_000)],
        ),
        ComputeBlock::new(
            "head",
            BlockKind::Dense,
            10_000_000,
            vec![
                ParamArray::new("head.weight", 900_000),
                ParamArray::new("head.bias", 3_000),
            ],
        ),
    ];
    ModelSpec::from_blocks("TinyDet", SampleUnit::Images, blocks, 800.0, 32, 0.0)
}

fn golden_config() -> ClusterConfig {
    ClusterConfig::new(
        tiny_model(),
        SyncStrategy::p3(),
        4,
        Bandwidth::from_gbps(5.0),
    )
    .with_iters(1, 2)
    .with_seed(7)
    .with_slice_trace()
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn ps_trace_digest_matches_pre_refactor_golden() {
    let cfg = golden_config();
    let meta = cfg.trace_meta();
    let (result, log) = ClusterSim::new(cfg)
        .try_run_traced()
        .expect("golden config must run clean");
    let log = log.expect("slice tracing was enabled");
    let doc = export_trace_json(&log, &meta);
    let digest = fnv(&doc);
    assert_eq!(
        (digest, result.throughput.to_bits(), result.events),
        (GOLDEN_TRACE_FNV, GOLDEN_THROUGHPUT_BITS, GOLDEN_EVENTS),
        "PS-path trace diverged from the pre-refactor golden digest \
         (got fnv={digest:#018x} throughput_bits={:#018x} events={})",
        result.throughput.to_bits(),
        result.events,
    );
}
