//! Integration of the protocol pieces: a P3 shard plan's slices travel as
//! wire messages, aggregate in the KV server, and reconstruct the exact
//! synchronous update.

use bytes::BytesMut;
use p3::core::{p3_plan, SyncStrategy};
use p3::models::ModelSpec;
use p3::pserver::{KvServer, Message, OptimizerKind, PushOutcome, WorkerId};

#[test]
fn sliced_pushes_roundtrip_the_wire_and_update_the_server() {
    // Two arrays sliced at 3 params for visibility.
    let plan = p3_plan(&[7, 4], 2, 3);
    assert_eq!(plan.num_keys(), 5); // 7 -> (3,2,2); 4 -> (2,2)
    let workers = 2;
    let mut server = KvServer::new(workers, OptimizerKind::Sgd { lr: 1.0 });
    for s in plan.slices() {
        server.init(s.key, vec![0.0; s.params as usize]);
    }

    // Each worker pushes gradient = worker index + 1 for every slice, via
    // the real codec.
    for w in 0..workers {
        for s in plan.slices() {
            let msg = Message::Push {
                key: s.key,
                worker: WorkerId(w),
                priority: s.array as u32,
                values: vec![(w + 1) as f32; s.params as usize],
            };
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            let decoded = Message::decode(&mut buf.freeze()).expect("valid frame");
            let Message::Push {
                key,
                worker,
                values,
                ..
            } = decoded
            else {
                panic!("wrong message type");
            };
            let outcome = server.push(worker, key, &values);
            if w == workers - 1 {
                assert_eq!(outcome, PushOutcome::Updated { version: 1 });
            }
        }
    }

    // Mean gradient = 1.5, lr = 1: params = -1.5 everywhere.
    for s in plan.slices() {
        let (vals, version) = server.pull(s.key);
        assert_eq!(version, 1);
        assert!(vals.iter().all(|&v| v == -1.5));
    }
}

#[test]
fn strategy_plans_cover_every_model_parameter() {
    for model in ModelSpec::paper_models() {
        for strategy in [
            SyncStrategy::baseline(),
            SyncStrategy::slicing_only(),
            SyncStrategy::p3(),
            SyncStrategy::poseidon_wfbp(),
        ] {
            let plan = strategy.plan(&model, 4, 1);
            assert_eq!(
                plan.total_params(),
                model.total_params(),
                "{} under {}",
                model.name(),
                strategy.name()
            );
            let prios = strategy.priorities(&plan);
            assert_eq!(prios.len(), plan.num_keys());
        }
    }
}

#[test]
fn p3_slice_priorities_follow_forward_order() {
    let model = ModelSpec::vgg19();
    let strategy = SyncStrategy::p3();
    let plan = strategy.plan(&model, 4, 0);
    let prios = strategy.priorities(&plan);
    // Walking keys in forward order, array priority is nondecreasing.
    let mut last = 0;
    for s in plan.slices() {
        let p = prios[s.key.0 as usize];
        assert!(p >= last || s.part > 0, "priority regressed at {}", s.key);
        last = p;
    }
}
