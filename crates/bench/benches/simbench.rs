//! End-to-end simulation benches: one short cluster run per figure family,
//! so regressions in simulator performance (the cost of regenerating the
//! paper) are caught. Criterion measures wall time of a fixed simulated
//! workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p3_cluster::gantt::{schedule_sync, PipelineSpec, SyncOrder};
use p3_cluster::{ClusterConfig, ClusterSim};
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn short_run(model: ModelSpec, strategy: SyncStrategy, gbps: f64, machines: usize) -> f64 {
    let cfg =
        ClusterConfig::new(model, strategy, machines, Bandwidth::from_gbps(gbps)).with_iters(1, 2);
    ClusterSim::new(cfg).run().throughput
}

fn bench_fig7_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_single_point");
    g.sample_size(10);
    for (name, model, gbps) in [
        ("resnet50_4g", ModelSpec::resnet50(), 4.0),
        ("vgg19_15g", ModelSpec::vgg19(), 15.0),
        ("sockeye_4g", ModelSpec::sockeye(), 4.0),
    ] {
        for strat in [SyncStrategy::baseline(), SyncStrategy::p3()] {
            g.bench_with_input(
                BenchmarkId::new(name, strat.name()),
                &(model.clone(), strat),
                |b, (m, s)| b.iter(|| short_run(m.clone(), s.clone(), gbps, 4)),
            );
        }
    }
    g.finish();
}

fn bench_fig10_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_scaling_point");
    g.sample_size(10);
    g.bench_function("resnet50_8_machines_10g", |b| {
        b.iter(|| short_run(ModelSpec::resnet50(), SyncStrategy::p3(), 10.0, 8))
    });
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot");
    g.sample_size(10);
    let mk = || {
        ClusterConfig::new(
            ModelSpec::resnet50(),
            SyncStrategy::p3(),
            4,
            Bandwidth::from_gbps(10.0),
        )
        .with_iters(1, 2)
    };
    // Capture one mid-run snapshot (first iteration boundary), then bench
    // the codec round-trip and the state digest on that fixed state.
    let mut bytes: Option<Vec<u8>> = None;
    ClusterSim::new(mk())
        .try_run_traced_with_snapshots(1, |_, snap| {
            bytes.get_or_insert(snap);
        })
        .expect("benchmark run");
    let bytes = bytes.expect("a snapshot at the first iteration boundary");
    let sim = ClusterSim::restore(mk(), &bytes).expect("restore captured snapshot");
    g.bench_function("encode_resnet50_4m_mid_run", |b| b.iter(|| sim.snapshot()));
    g.bench_function("state_hash_resnet50_4m_mid_run", |b| {
        b.iter(|| sim.state_hash())
    });
    g.bench_function("restore_resnet50_4m_mid_run", |b| {
        b.iter(|| ClusterSim::restore(mk(), &bytes).expect("restore"))
    });
    g.finish();
}

fn bench_gantt(c: &mut Criterion) {
    c.bench_function("fig4_schedule_pair", |b| {
        let spec = PipelineSpec::figure4();
        b.iter(|| {
            let a = schedule_sync(&spec, SyncOrder::Fifo);
            let p = schedule_sync(&spec, SyncOrder::PriorityPreemptive);
            (a.makespan, p.makespan)
        })
    });
}

criterion_group!(
    benches,
    bench_fig7_points,
    bench_fig10_point,
    bench_snapshot,
    bench_gantt
);
criterion_main!(benches);
