//! Micro-benchmarks of the hot paths underlying every experiment: the
//! priority queue, the max-min rate allocator, parameter slicing, server
//! aggregation, the wire codec, DGC top-k selection and MLP backprop.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use p3_compress::Dgc;
use p3_core::{p3_plan, PrioQueue, SyncStrategy};
use p3_des::SplitMix64;
use p3_models::ModelSpec;
use p3_net::{allocate_rates_capped, FlowSpec, Priority};
use p3_pserver::{Key, KvServer, Message, OptimizerKind, WorkerId};
use p3_tensor::{Matrix, Mlp};

fn bench_prio_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("prio_queue");
    for n in [1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = SplitMix64::new(1);
            b.iter(|| {
                let mut q = PrioQueue::new();
                for i in 0..n {
                    q.push((rng.next_u64() % 64) as u32, i);
                }
                let mut acc = 0usize;
                while let Some(v) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("rate_allocator");
    for machines in [4usize, 16] {
        let mut rng = SplitMix64::new(7);
        let flows: Vec<FlowSpec> = (0..machines * 3)
            .map(|_| FlowSpec {
                src: rng.next_below(machines as u64) as usize,
                dst: rng.next_below(machines as u64) as usize,
                priority: Priority(rng.next_below(4) as u32),
            })
            .collect();
        let caps = vec![1.25e9; machines];
        g.bench_with_input(
            BenchmarkId::new("strict_priority_max_min", machines),
            &flows,
            |b, flows| b.iter(|| allocate_rates_capped(flows, &caps, &caps, 1.2e8)),
        );
    }
    g.finish();
}

fn bench_slicing(c: &mut Criterion) {
    let vgg = ModelSpec::vgg19();
    let arrays: Vec<u64> = vgg.param_arrays().map(|a| a.params).collect();
    c.bench_function("slicing/vgg19_p3_plan_50k", |b| {
        b.iter(|| p3_plan(&arrays, 4, 50_000))
    });
    c.bench_function("slicing/vgg19_priorities", |b| {
        let strat = SyncStrategy::p3();
        let plan = strat.plan(&vgg, 4, 0);
        b.iter(|| strat.priorities(&plan))
    });
}

fn bench_server(c: &mut Criterion) {
    c.bench_function("kvserver/round_50k_params_4_workers", |b| {
        b.iter_batched(
            || {
                let mut s = KvServer::new(4, OptimizerKind::Sgd { lr: 0.1 });
                s.init(Key(0), vec![0.1; 50_000]);
                (s, vec![0.01f32; 50_000])
            },
            |(mut s, g)| {
                for w in 0..4 {
                    s.push(WorkerId(w), Key(0), &g);
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_codec(c: &mut Criterion) {
    let msg = Message::Push {
        key: Key(42),
        worker: WorkerId(1),
        priority: 3,
        values: vec![0.5; 50_000],
    };
    c.bench_function("codec/encode_decode_50k", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(msg.wire_size());
            msg.encode(&mut buf);
            Message::decode(&mut buf.freeze()).expect("roundtrip")
        })
    });
}

fn bench_dgc(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let grad: Vec<f32> = (0..1_000_000).map(|_| rng.normal() as f32).collect();
    c.bench_function("dgc/top_k_1m_params", |b| {
        b.iter_batched(
            || Dgc::new(1_000_000, 0.9, 0.999, 0),
            |mut d| d.step(&grad),
            BatchSize::LargeInput,
        )
    });
}

fn bench_mlp(c: &mut Criterion) {
    let mut rng = SplitMix64::new(5);
    let mlp = Mlp::new(&[32, 64, 32, 10], &mut rng);
    let x = Matrix::randn(64, 32, 1.0, &mut rng);
    let y: Vec<usize> = (0..64).map(|i| i % 10).collect();
    c.bench_function("mlp/loss_and_grads_batch64", |b| {
        b.iter(|| mlp.loss_and_grads(&x, &y))
    });
}

criterion_group!(
    benches,
    bench_prio_queue,
    bench_allocator,
    bench_slicing,
    bench_server,
    bench_codec,
    bench_dgc,
    bench_mlp
);
criterion_main!(benches);
