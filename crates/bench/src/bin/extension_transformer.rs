//! Extension: does P3 transfer to the Transformer (Vaswani et al. 2017)?
//!
//! The Transformer is Sockeye's successor: an even heavier shared
//! embedding at the *start* of the forward pass (the worst case for
//! generation-order synchronization) over uniform attention/FF blocks.
//! The paper predates widespread Transformer adoption by months; this
//! extension runs its exact methodology on the new architecture.

use p3_cluster::bound::iteration_bound;
use p3_cluster::{bandwidth_sweep, ClusterConfig, ClusterSim};
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };
    let model = ModelSpec::transformer();
    p3_bench::print_header(
        "extension-transformer",
        &format!(
            "model: {}  {:.1}M params, heaviest array = shared embedding ({:.1}%)",
            model.name(),
            model.total_params() as f64 / 1e6,
            100.0 * model.heaviest_array().expect("params").params as f64
                / model.total_params() as f64
        ),
    );
    let strategies = SyncStrategy::fig7_series();
    let gbps = [2.0, 4.0, 8.0, 15.0, 30.0];
    let pts = bandwidth_sweep(&model, &strategies, 4, &gbps, warmup, measure, 42);
    p3_bench::print_sweep("bandwidth_gbps", &pts);

    // Fraction of the analytic bound each strategy realizes at 4 Gbps.
    let cfg = ClusterConfig::new(
        model.clone(),
        SyncStrategy::p3(),
        4,
        Bandwidth::from_gbps(4.0),
    )
    .with_iters(warmup, measure);
    let allowed = iteration_bound(&cfg).throughput_limit(cfg.batch_per_worker, cfg.machines);
    for strategy in strategies {
        let mut c = cfg.clone();
        c.strategy = strategy;
        let name = c.strategy.name().to_string();
        let r = ClusterSim::new(c).run();
        println!(
            "# {name} at 4 Gbps: {:.1} sent/s = {:.0}% of the analytic bound (stall {:.2})",
            r.throughput,
            100.0 * r.throughput / allowed,
            r.mean_stall_fraction
        );
    }
}
