//! Extension: compression × scheduling — the paper's §6 closing claim that
//! P3 "is an orthogonal approach to the compression techniques and can be
//! used on top of compression mechanisms to further improve performance."
//!
//! Wire compression (DGC's sparsified traffic) is modelled as payload
//! shrink factors; its *accuracy* cost is measured separately by the real
//! training harness (Figure 11). Here: throughput of {baseline, P3} ×
//! {no compression, DGC-99.9%} at low bandwidth.

use p3_cluster::{ClusterConfig, ClusterSim, WireCompression};
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };

    // (model, bandwidth, sparsity): the headline 99.9% case, plus a milder
    // 95% compression under a much tighter link where compressed traffic
    // still binds — there P3's scheduling adds on top of compression.
    for (model, gbps, sparsity) in [
        (ModelSpec::vgg19(), 2.0, 0.999),
        (ModelSpec::resnet50(), 1.0, 0.999),
        (ModelSpec::resnet50(), 0.2, 0.95),
    ] {
        p3_bench::print_header(
            "extension-dgc-p3",
            &format!(
                "model: {}  machines: 4  bandwidth: {gbps} Gbps  DGC sparsity: {sparsity}",
                model.name()
            ),
        );
        let mut rows = Vec::new();
        for (label, strategy, compression) in [
            ("baseline", SyncStrategy::baseline(), None),
            ("P3", SyncStrategy::p3(), None),
            (
                "baseline + DGC",
                SyncStrategy::baseline(),
                Some(WireCompression::dgc(sparsity, 4)),
            ),
            (
                "P3 + DGC",
                SyncStrategy::p3(),
                Some(WireCompression::dgc(sparsity, 4)),
            ),
        ] {
            let mut cfg =
                ClusterConfig::new(model.clone(), strategy, 4, Bandwidth::from_gbps(gbps))
                    .with_iters(warmup, measure);
            cfg.wire_compression = compression;
            let r = ClusterSim::new(cfg).run();
            println!(
                "{label:>16}: {:8.1} {}/sec  (stall fraction {:.2})",
                r.throughput, r.unit, r.mean_stall_fraction
            );
            rows.push((label, r.throughput));
        }
        let base = rows[0].1;
        let dgc_only = rows[2].1;
        let combo = rows[3].1;
        println!(
            "# P3+DGC: {:+.0}% over baseline, {:+.1}% over DGC alone",
            (combo / base - 1.0) * 100.0,
            (combo / dgc_only - 1.0) * 100.0
        );
        println!();
    }
    println!("# NOTE: compression trades accuracy (Figure 11); P3 alone does not.");
}
