//! Robustness experiment: Baseline / Slicing-only / P3 under injected
//! faults — a compute straggler, a degraded link, a lossy network, and a
//! worker crash. Reports throughput, iteration-time tails (p50/p99), and
//! the reliability layer's counters for each combination.
//!
//! Run with: `cargo run --release -p p3-bench --bin robustness [--quick]`

use p3_cluster::{
    ClusterConfig, ClusterSim, FaultPlan, LinkDegradation, StragglerEpisode, WorkerCrash,
};
use p3_core::SyncStrategy;
use p3_des::{SimDuration, SimTime};
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_pserver::RetryPolicy;

const MACHINES: usize = 4;
const GBPS: f64 = 5.0;

fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    let forever = SimDuration::from_secs(1_000);
    vec![
        ("clean", FaultPlan::none()),
        (
            "straggler (w1 at 2.5x)",
            FaultPlan {
                stragglers: vec![StragglerEpisode {
                    worker: 1,
                    start: SimTime::ZERO,
                    duration: forever,
                    slowdown: 2.5,
                }],
                ..FaultPlan::none()
            },
        ),
        (
            "degraded link (m0 at 25%)",
            FaultPlan {
                link_degradations: vec![LinkDegradation {
                    machine: 0,
                    start: SimTime::ZERO,
                    duration: forever,
                    capacity_factor: 0.25,
                }],
                ..FaultPlan::none()
            },
        ),
        (
            "lossy network (3% drop)",
            FaultPlan {
                loss_probability: 0.03,
                ..FaultPlan::none()
            },
        ),
        (
            "worker crash (w2, no restart)",
            FaultPlan {
                crashes: vec![WorkerCrash {
                    worker: 2,
                    at: SimTime::from_millis(500),
                    rejoin_after: None,
                }],
                ..FaultPlan::none()
            },
        ),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };
    let strategies = [
        SyncStrategy::baseline(),
        SyncStrategy::slicing_only(),
        SyncStrategy::p3(),
    ];
    let model = ModelSpec::resnet50();
    p3_bench::print_header(
        "robustness",
        &format!(
            "model: {}  machines: {MACHINES}  bandwidth: {GBPS} Gbps  unit: {}/sec",
            model.name(),
            model.unit()
        ),
    );
    println!(
        "{:<30} {:<12} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "scenario", "strategy", "thruput", "p50", "p99", "retx", "lost", "degr"
    );
    for (name, plan) in scenarios() {
        for strategy in &strategies {
            let mut cfg = ClusterConfig::new(
                model.clone(),
                strategy.clone(),
                MACHINES,
                Bandwidth::from_gbps(GBPS),
            )
            .with_iters(warmup, measure)
            .with_seed(7)
            .with_faults(plan.clone())
            .with_retry(RetryPolicy::new(SimDuration::from_millis(20), 2.0, 16));
            // Evict a silent worker after 200 ms so survivors keep training.
            cfg.liveness_timeout = SimDuration::from_millis(200);
            match ClusterSim::new(cfg).try_run() {
                Ok(r) => println!(
                    "{:<30} {:<12} {:>9.1} {:>9} {:>9} {:>7} {:>6} {:>6}",
                    name,
                    strategy.name(),
                    r.throughput,
                    r.p50_iteration.to_string(),
                    r.p99_iteration.to_string(),
                    r.faults.retransmits,
                    r.faults.messages_lost,
                    r.faults.degraded_rounds,
                ),
                Err(e) => println!("{:<30} {:<12} failed: {e}", name, strategy.name()),
            }
        }
        println!();
    }
    println!(
        "Reading the table: a compute straggler hurts every strategy equally —\n\
         the sync barrier is unforgiving and no communication schedule hides\n\
         slow math. Under message loss P3 keeps its clean-network lead: drops\n\
         cost retransmits, not correctness. A crashed worker is evicted after\n\
         the liveness timeout and rounds complete degraded with the survivors'\n\
         gradients — at full speed, under every strategy. The one place P3\n\
         falls behind is a severely degraded link: at a quarter of an already\n\
         modest NIC, its many small slices pay the per-message overhead that\n\
         Figure 12 of the paper charges for fine slicing."
    );
}
