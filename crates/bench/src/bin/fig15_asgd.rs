//! Figure 15 (Appendix B.2): ASGD vs P3 — validation accuracy against wall
//! time. ASGD iterates faster (no barrier) but converges worse under stale
//! gradients; P3 reaches high accuracy sooner and ends higher.
//!
//! Wall-time mapping: the per-iteration times come from the cluster
//! simulator at the paper's operating point (ResNet-110-class model,
//! 4 machines, 1 Gbps): synchronous iterations pay the measured
//! synchronization cost, ASGD iterations only the compute.

use p3_cluster::{ClusterConfig, ClusterSim};
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_tensor::spirals;
use p3_train::{train_async, train_sync, SyncMode, TrainConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let epochs = if quick { 12 } else { 40 };

    // Simulated per-iteration wall times at 1 Gbps, 4 machines.
    let sim = |s| {
        let cfg = ClusterConfig::new(ModelSpec::resnet110(), s, 4, Bandwidth::from_gbps(1.0))
            .with_iters(1, 4);
        ClusterSim::new(cfg).run().mean_iteration.as_secs_f64()
    };
    let t_sync = sim(SyncStrategy::p3());
    let t_compute = ModelSpec::resnet110().default_batch() as f64
        / ModelSpec::resnet110().reference_throughput();
    println!("# per-iteration: P3 {t_sync:.4}s (simulated), ASGD {t_compute:.4}s (no barrier)");

    let data = spirals(3, 6, 3000, 900, 77);
    let mut cfg = TrainConfig::new(epochs);
    cfg.hidden = vec![48, 24];
    cfg.lr = 0.1;
    let p3 = train_sync(&data, &cfg, SyncMode::FullSync);
    // ASGD is sensitive to the learning rate under staleness; give it the
    // benefit of a tuned grid and keep its best run.
    let asgd = [0.05f32, 0.025, 0.0125]
        .iter()
        .map(|&lr| {
            let mut c = cfg.clone();
            c.lr = lr;
            train_async(&data, &c, cfg.workers - 1)
        })
        .max_by(|a, b| {
            a.final_accuracy
                .partial_cmp(&b.final_accuracy)
                .expect("finite")
        })
        .expect("nonempty grid");

    p3_bench::print_header("15", "ASGD vs P3: validation accuracy vs time (minutes)");
    println!("# x = time_min, series = p3_accuracy | x = time_min, series = asgd_accuracy");
    for r in &p3.records {
        let t = (r.epoch + 1) as f64 * p3.iterations_per_epoch as f64 * t_sync / 60.0;
        println!("P3   {t:10.3} {:8.4}", r.val_accuracy);
    }
    for r in &asgd.records {
        let t = (r.epoch + 1) as f64 * asgd.iterations_per_epoch as f64 * t_compute / 60.0;
        println!("ASGD {t:10.3} {:8.4}", r.val_accuracy);
    }
    println!(
        "# final accuracy: P3 {:.3}, ASGD {:.3} (paper: 93% vs 88%)",
        p3.final_accuracy, asgd.final_accuracy
    );
    let target = 0.8 * p3.final_accuracy.max(asgd.final_accuracy);
    let reach = |run: &p3_train::TrainRun, t_iter: f64| {
        run.epochs_to_reach(target)
            .map(|e| (e + 1) as f64 * run.iterations_per_epoch as f64 * t_iter / 60.0)
    };
    if let (Some(tp), Some(ta)) = (reach(&p3, t_sync), reach(&asgd, t_compute)) {
        println!(
            "# time to {:.0}% accuracy: P3 {tp:.2} min, ASGD {ta:.2} min ({:.1}x)",
            target * 100.0,
            ta / tp
        );
    }
}
