//! Figure 10: throughput scaling with cluster size (2–16 machines) on a
//! 10 Gbps network, Baseline vs P3, plus the §5.5 headline numbers.

use p3_cluster::scalability_sweep;
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };
    let strategies = [SyncStrategy::baseline(), SyncStrategy::p3()];
    let sizes = [2usize, 4, 8, 16];

    for (tag, model) in [
        ("10a", ModelSpec::resnet50()),
        ("10b", ModelSpec::vgg19()),
        ("10c", ModelSpec::sockeye()),
    ] {
        p3_bench::print_header(
            tag,
            &format!(
                "model: {}  bandwidth: 10 Gbps  unit: {}/sec",
                model.name(),
                model.unit()
            ),
        );
        let pts = scalability_sweep(
            &model,
            &strategies,
            &sizes,
            Bandwidth::from_gbps(10.0),
            warmup,
            measure,
            42,
        );
        p3_bench::print_sweep("machines", &pts);
        for p in &pts {
            println!(
                "# {}",
                p3_bench::speedup_line(
                    &format!("{} @{} machines", model.name(), p.x),
                    p.series[0].1,
                    p.series[1].1
                )
            );
        }
    }
    println!("# paper: ResNet ~parity at 10G; VGG up to +61% (8 machines); Sockeye up to +18% (8 machines)");
}
