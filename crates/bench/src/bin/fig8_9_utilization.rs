//! Figures 8 and 9: NIC utilization traces (10 ms bins, machine 0) for the
//! baseline (bursty, unidirectional) vs P3 (smooth, bidirectional), at the
//! same operating points the paper uses.

use p3_cluster::{ClusterConfig, ClusterSim};
use p3_core::SyncStrategy;
use p3_des::SimDuration;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn trace(model: ModelSpec, strategy: SyncStrategy, gbps: f64) -> (Vec<f64>, Vec<f64>, f64) {
    let cfg = ClusterConfig::new(model, strategy, 4, Bandwidth::from_gbps(gbps))
        .with_iters(1, 3)
        .with_trace(SimDuration::from_millis(10));
    let r = ClusterSim::new(cfg).run();
    let t = r.trace.expect("tracing enabled");
    (t.tx_gbps, t.rx_gbps, t.bin.as_secs_f64())
}

fn main() {
    let cases = [
        ("ResNet-50 at 4Gbps", ModelSpec::resnet50(), 4.0),
        ("VGG-19 at 15Gbps", ModelSpec::vgg19(), 15.0),
        ("Sockeye at 4Gbps", ModelSpec::sockeye(), 4.0),
    ];
    for (fig, strategy) in [("8", SyncStrategy::baseline()), ("9", SyncStrategy::p3())] {
        for (i, (name, model, gbps)) in cases.iter().enumerate() {
            let sub = ['a', 'b', 'c'][i];
            p3_bench::print_header(
                &format!("{fig}{sub}"),
                &format!("{name}  strategy: {}", strategy.name()),
            );
            let (tx, rx, bin) = trace(model.clone(), strategy.clone(), *gbps);
            let n = tx.len().min(rx.len()).min(400);
            let rows: Vec<(f64, Vec<f64>)> = (0..n)
                .map(|b| (b as f64 * bin * 100.0, vec![tx[b], rx[b]]))
                .collect();
            p3_bench::print_series("time_10ms", &["outbound_gbps", "inbound_gbps"], &rows);
            // Idle-time summary: fraction of bins below 5% of nominal.
            let idle_tx = tx.iter().take(n).filter(|&&g| g < gbps * 0.05).count() as f64 / n as f64;
            println!("# outbound idle fraction (<5% of nominal): {idle_tx:.2}");
            // Bidirectional overlap: Σ min(tx,rx) / Σ max(tx,rx) — the
            // paper's "inbound and outbound traffics are not overlapped"
            // observation, quantified.
            let (mut num, mut den) = (0.0, 0.0);
            for b in 0..n {
                num += tx[b].min(rx[b]);
                den += tx[b].max(rx[b]);
            }
            let overlap = if den > 0.0 { num / den } else { 0.0 };
            println!("# bidirectional overlap coefficient: {overlap:.2}");
        }
    }
}
