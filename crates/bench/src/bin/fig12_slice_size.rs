//! Figure 12: P3 throughput vs parameter-slice size (1k – 1M parameters),
//! peaking around the paper's 50k optimum.

use p3_cluster::slice_size_sweep;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };
    let sizes: &[u64] = if quick {
        &[2_000, 50_000, 1_000_000]
    } else {
        &[
            1_000, 2_000, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
        ]
    };

    for (tag, model, gbps) in [
        ("12a", ModelSpec::resnet50(), 4.0),
        ("12b", ModelSpec::vgg19(), 15.0),
        ("12c", ModelSpec::sockeye(), 4.0),
    ] {
        p3_bench::print_header(
            tag,
            &format!(
                "model: {}  machines: 4  bandwidth: {gbps} Gbps",
                model.name()
            ),
        );
        let pts = slice_size_sweep(
            &model,
            sizes,
            4,
            Bandwidth::from_gbps(gbps),
            warmup,
            measure,
            42,
        );
        println!(
            "# x = slice_params, series = P3 throughput ({}/sec)",
            model.unit()
        );
        for p in &pts {
            println!("{:10.0} {:10.2}", p.x, p.series[0].1);
        }
        let best = pts
            .iter()
            .max_by(|a, b| a.series[0].1.partial_cmp(&b.series[0].1).expect("finite"))
            .expect("nonempty");
        println!("# best slice size: {:.0} params (paper: 50,000)", best.x);
    }
}
