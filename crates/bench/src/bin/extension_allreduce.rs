//! Extension: P3's principles applied to collective aggregation — testing
//! the paper's §2/§6 claim that slicing + priority generalize beyond the
//! parameter server.
//!
//! Compares, per model and bandwidth: the PS baseline, PS-P3, layer-wise
//! FIFO ring-allreduce (Horovod-without-fusion), and sliced+priority
//! ring-allreduce ("P3-AR"), plus a collective slice-size sweep showing
//! that collectives want far coarser slices (fusion-buffer economics).

use p3_allreduce::{run_allreduce, AllreduceConfig};
use p3_cluster::throughput_of;
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };

    for (model, gbps_list) in [
        (ModelSpec::resnet50(), vec![2.0, 4.0, 8.0]),
        (ModelSpec::vgg19(), vec![5.0, 10.0, 20.0]),
    ] {
        p3_bench::print_header(
            "extension-allreduce",
            &format!("model: {}  machines: 4", model.name()),
        );
        println!("# x = gbps, series = PS-Baseline, PS-P3, AR-layerwise-FIFO, AR-sliced-priority");
        for &g in &gbps_list {
            let bw = Bandwidth::from_gbps(g);
            let ps_base = throughput_of(
                &model,
                &SyncStrategy::baseline(),
                4,
                bw,
                warmup,
                measure,
                42,
            );
            let ps_p3 = throughput_of(&model, &SyncStrategy::p3(), 4, bw, warmup, measure, 42);
            let mut hor = AllreduceConfig::layerwise_fifo(model.clone(), 4, bw);
            hor.warmup_iters = warmup;
            hor.measure_iters = measure;
            let ar_fifo = run_allreduce(&hor).throughput;
            let mut p3ar = AllreduceConfig::new(model.clone(), 4, bw);
            p3ar.warmup_iters = warmup;
            p3ar.measure_iters = measure;
            let ar_p3 = run_allreduce(&p3ar).throughput;
            println!("{g:10.1} {ps_base:10.2} {ps_p3:10.2} {ar_fifo:10.2} {ar_p3:10.2}");
        }
    }

    // Collective slice-size sweep: where is the allreduce fusion optimum?
    p3_bench::print_header(
        "extension-allreduce-slices",
        "VGG-19, 4 machines, 10 Gbps ring allreduce",
    );
    println!("# x = slice_params, series = AR-sliced-priority throughput");
    for slice in [
        50_000u64, 200_000, 500_000, 2_000_000, 8_000_000, 50_000_000,
    ] {
        let mut cfg = AllreduceConfig::new(ModelSpec::vgg19(), 4, Bandwidth::from_gbps(10.0));
        cfg.slice_params = Some(slice);
        cfg.warmup_iters = warmup;
        cfg.measure_iters = measure;
        let t = run_allreduce(&cfg).throughput;
        println!("{slice:10} {t:10.2}");
    }
    println!(
        "# collectives want coarser slices than the PS's 50k: each ring pays 2(N-1) step costs"
    );
}
