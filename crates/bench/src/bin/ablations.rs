//! Ablations of P3's design choices (DESIGN.md §5) — not a paper figure,
//! but the decomposition the paper's §4 argues for:
//!
//! 1. slicing without priorities vs priorities without slicing vs both;
//! 2. priority *order*: consumption (P3) vs generation (FIFO-like) vs
//!    random;
//! 3. immediate broadcast vs KVStore's notify-then-pull;
//! 4. slice-size extremes (see `fig12_slice_size` for the full sweep).

use p3_cluster::throughput_of;
use p3_core::{PriorityMode, Slicing, SyncStrategy};
use p3_models::ModelSpec;
use p3_net::Bandwidth;

/// P3's transport and priorities, but KVStore's layer-wise keys — the
/// "priority without slicing" arm of the decomposition.
fn priority_without_slicing() -> SyncStrategy {
    let mut s = SyncStrategy::p3();
    s.slicing = Slicing::KvstoreLayerwise {
        split_threshold: 1_000_000,
    };
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };
    let bw = |g| Bandwidth::from_gbps(g);
    let run = |model: &ModelSpec, s: &SyncStrategy, gbps: f64| {
        throughput_of(model, s, 4, bw(gbps), warmup, measure, 42)
    };

    for (model, gbps) in [(ModelSpec::resnet50(), 4.0), (ModelSpec::vgg19(), 15.0)] {
        p3_bench::print_header(
            "ablation",
            &format!(
                "model: {}  machines: 4  bandwidth: {gbps} Gbps",
                model.name()
            ),
        );
        let base = run(&model, &SyncStrategy::baseline(), gbps);
        let rows: Vec<(&str, SyncStrategy)> = vec![
            ("baseline (KVStore)", SyncStrategy::baseline()),
            ("slicing only", SyncStrategy::slicing_only()),
            ("priority, no slicing", priority_without_slicing()),
            ("P3 (slicing + priority)", SyncStrategy::p3()),
            ("P3, generation order", SyncStrategy::p3_generation_order()),
            ("P3, random order", SyncStrategy::p3_random_order(9)),
            ("P3, notify-then-pull", SyncStrategy::p3_notify_pull()),
        ];
        for (label, strat) in rows {
            let t = run(&model, &strat, gbps);
            println!(
                "{label:>26}: {t:8.1}  ({:+6.1}% vs baseline)",
                (t / base - 1.0) * 100.0
            );
        }
        // Sanity relations printed for EXPERIMENTS.md.
        let p3 = run(&model, &SyncStrategy::p3(), gbps);
        let gen = run(&model, &SyncStrategy::p3_generation_order(), gbps);
        println!(
            "# consumption-order gain over generation-order: {:+.1}%",
            (p3 / gen - 1.0) * 100.0
        );
        println!();
    }

    // Priority-mode micro-comparison at very tight bandwidth, ResNet-50.
    p3_bench::print_header("ablation-priority-modes", "ResNet-50, 4 machines, 2 Gbps");
    let model = ModelSpec::resnet50();
    for (label, mode) in [
        ("consumption", PriorityMode::Consumption),
        ("generation", PriorityMode::Generation),
        ("uniform", PriorityMode::Uniform),
        ("random", PriorityMode::Random { seed: 4 }),
    ] {
        let mut s = SyncStrategy::p3();
        s.priority_mode = mode;
        let t = run(&model, &s, 2.0);
        println!("{label:>12}: {t:8.1} images/sec");
    }
}
