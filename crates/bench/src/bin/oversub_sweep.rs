//! Oversubscription sweep: throughput of Baseline vs P3 on a two-rack
//! cluster as the core fabric shrinks from full bisection (1:1) to 8:1.
//!
//! Each model runs at its Fig. 7 crossover bandwidth (where the NIC just
//! binds on the flat fabric), so the sweep isolates what the *core* takes
//! away: the flat reference point reproduces the Fig. 10 story at that
//! bandwidth, oversub=1 matches it up to rack-hop sharing, and P3's edge
//! fades monotonically as the shared uplinks take over as the bottleneck
//! that no scheduling order can hide.

use p3_cluster::{oversubscription_sweep, throughput_of, SweepPoint};
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_topo::Placement;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 3) } else { (2, 8) };
    let (racks, rack_size) = (2usize, 4usize);
    let oversubs = [1.0, 2.0, 4.0, 8.0];
    let strategies = [SyncStrategy::baseline(), SyncStrategy::p3()];

    for (tag, model, gbps) in [
        ("oversub-a", ModelSpec::resnet50(), 4.0),
        ("oversub-b", ModelSpec::vgg19(), 15.0),
    ] {
        let bandwidth = Bandwidth::from_gbps(gbps);
        p3_bench::print_header(
            tag,
            &format!(
                "model: {}  racks: {racks}x{rack_size}  bandwidth: {gbps} Gbps  unit: {}/sec",
                model.name(),
                model.unit()
            ),
        );
        // Flat-fabric reference: what the same 8 machines do with no core
        // bottleneck at all (x = 0 marks "no topology").
        let flat: Vec<(String, f64)> = strategies
            .iter()
            .map(|s| {
                let t = throughput_of(&model, s, racks * rack_size, bandwidth, warmup, measure, 42);
                (s.name().to_string(), t)
            })
            .collect();
        let mut pts = vec![SweepPoint {
            x: 0.0,
            series: flat,
        }];
        pts.extend(oversubscription_sweep(
            &model,
            &strategies,
            racks,
            rack_size,
            bandwidth,
            Placement::Spread,
            &oversubs,
            warmup,
            measure,
            42,
        ));
        p3_bench::print_sweep("oversub (0 = flat fabric)", &pts);
        for p in &pts {
            let label = if p.x == 0.0 {
                format!("{} flat", model.name())
            } else {
                format!("{} @{}:1 oversub", model.name(), p.x)
            };
            println!(
                "# {}",
                p3_bench::speedup_line(&label, p.series[0].1, p.series[1].1)
            );
        }
    }
    println!("# expectation: throughput falls monotonically with oversub; P3's edge fades monotonically as the core takes over");
}
