//! Figure 4: aggressive vs priority-based parameter synchronization of the
//! paper's 3-layer example (unit fwd/bwd, 2-unit sync, one shared link).

use p3_cluster::gantt::{ascii_gantt, schedule_sync, PipelineSpec, SyncOrder};

fn main() {
    let spec = PipelineSpec::figure4();

    p3_bench::print_header("4a", "aggressive (FIFO) synchronization");
    let a = schedule_sync(&spec, SyncOrder::Fifo);
    print!("{}", ascii_gantt(&a, 1.0));
    println!(
        "# inter-iteration delay: {} units, makespan: {}",
        a.iteration_gap, a.makespan
    );

    p3_bench::print_header("4b", "priority-based synchronization (P3)");
    let b = schedule_sync(&spec, SyncOrder::PriorityPreemptive);
    print!("{}", ascii_gantt(&b, 1.0));
    println!(
        "# inter-iteration delay: {} units, makespan: {}",
        b.iteration_gap, b.makespan
    );

    println!(
        "# paper claim: priority halves the delay — {} -> {} ({}x)",
        a.iteration_gap,
        b.iteration_gap,
        a.iteration_gap / b.iteration_gap
    );
}
