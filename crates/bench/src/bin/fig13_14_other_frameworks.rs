//! Figures 13 and 14 (Appendix B.1): the same bursty under-utilization in
//! other frameworks — TensorFlow-style deferred pulls (ResNet-50 at
//! 4 Gbps) and Poseidon's layer-granular WFBP (InceptionV3 at 1 Gbps).

use p3_cluster::{ClusterConfig, ClusterSim};
use p3_core::SyncStrategy;
use p3_des::SimDuration;
use p3_models::ModelSpec;
use p3_net::Bandwidth;

fn main() {
    let cases = [
        (
            "13",
            "ResNet-50 on TensorFlow-style at 4Gbps",
            ModelSpec::resnet50(),
            SyncStrategy::tf_style(),
            4.0,
        ),
        (
            "14",
            "InceptionV3 on Poseidon-WFBP at 1Gbps",
            ModelSpec::inception_v3(),
            SyncStrategy::poseidon_wfbp(),
            1.0,
        ),
    ];
    for (tag, name, model, strategy, gbps) in cases {
        p3_bench::print_header(tag, name);
        let cfg = ClusterConfig::new(model, strategy, 4, Bandwidth::from_gbps(gbps))
            .with_iters(1, 3)
            .with_trace(SimDuration::from_millis(10));
        let r = ClusterSim::new(cfg).run();
        let t = r.trace.expect("tracing enabled");
        let n = t.tx_gbps.len().min(t.rx_gbps.len()).min(500);
        let rows: Vec<(f64, Vec<f64>)> = (0..n)
            .map(|b| (b as f64, vec![t.tx_gbps[b], t.rx_gbps[b]]))
            .collect();
        p3_bench::print_series("time_10ms", &["outbound_gbps", "inbound_gbps"], &rows);
        let idle = t
            .tx_gbps
            .iter()
            .take(n)
            .filter(|&&g| g < gbps * 0.05)
            .count() as f64
            / n as f64;
        println!("# outbound idle fraction: {idle:.2} — bursty under-utilization as in the paper");
    }
}
