//! Figure 6: layer-level vs fine-grained slices through the
//! send → update → receive tandem pipeline (heavy middle layer).

use p3_cluster::gantt::{ascii_gantt, figure6_layerwise, figure6_sliced, schedule_tandem};

fn main() {
    p3_bench::print_header("6a", "layer-level granularity");
    let a = schedule_tandem(&figure6_layerwise());
    print!("{}", ascii_gantt(&a, 1.0));
    println!("# makespan: {} units", a.makespan);

    p3_bench::print_header("6b", "fine granularity (heavy layer sliced in 3)");
    let b = schedule_tandem(&figure6_sliced());
    print!("{}", ascii_gantt(&b, 1.0));
    println!("# makespan: {} units", b.makespan);

    println!(
        "# paper claim: slicing reduces communication cost ~30% — measured {:.1}%",
        (1.0 - b.makespan / a.makespan) * 100.0
    );
}
