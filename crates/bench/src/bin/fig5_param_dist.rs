//! Figure 5: parameter distribution across layer index (one point per
//! parameter-server key / array) for ResNet-50, VGG-19 and Sockeye
//! (InceptionV3 added for completeness).

use p3_models::ModelSpec;

fn main() {
    for (tag, model) in [
        ("5a", ModelSpec::resnet50()),
        ("5b", ModelSpec::vgg19()),
        ("5c", ModelSpec::sockeye()),
        ("5x", ModelSpec::inception_v3()),
    ] {
        p3_bench::print_header(
            tag,
            &format!(
                "model: {}  total: {:.2}M params over {} arrays",
                model.name(),
                model.total_params() as f64 / 1e6,
                model.num_arrays()
            ),
        );
        println!("# x = array_index, series = params_millions");
        for (i, a) in model.param_arrays().enumerate() {
            println!("{:6} {:12.6}   # {}", i + 1, a.params as f64 / 1e6, a.name);
        }
        let heaviest = model.heaviest_array().expect("nonempty model");
        println!(
            "# heaviest array: {} = {:.2}M ({:.1}% of model)",
            heaviest.name,
            heaviest.params as f64 / 1e6,
            100.0 * heaviest.params as f64 / model.total_params() as f64
        );
    }
}
