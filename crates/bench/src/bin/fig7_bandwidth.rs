//! Figure 7: training throughput vs NIC bandwidth on a 4-machine cluster,
//! for Baseline / Slicing-only / P3 across all four models, plus the §5.3
//! headline speedups.

use p3_cluster::bandwidth_sweep;
use p3_core::SyncStrategy;
use p3_models::ModelSpec;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (warmup, measure) = if quick { (1, 4) } else { (3, 10) };
    let strategies = SyncStrategy::fig7_series();

    let cases: Vec<(&str, ModelSpec, Vec<f64>)> = vec![
        (
            "7a",
            ModelSpec::resnet50(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0],
        ),
        (
            "7b",
            ModelSpec::inception_v3(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0],
        ),
        (
            "7c",
            ModelSpec::vgg19(),
            vec![2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0],
        ),
        (
            "7d",
            ModelSpec::sockeye(),
            vec![2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0],
        ),
    ];

    let mut claims = Vec::new();
    for (tag, model, gbps) in cases {
        p3_bench::print_header(
            tag,
            &format!(
                "model: {}  machines: 4  unit: {}/sec",
                model.name(),
                model.unit()
            ),
        );
        let pts = bandwidth_sweep(&model, &strategies, 4, &gbps, warmup, measure, 42);
        p3_bench::print_sweep("bandwidth_gbps", &pts);

        // Headline claims of §5.3: peak P3-vs-baseline speedup over the sweep.
        let mut best = (0.0f64, 0.0f64, 0.0f64); // (gbps, base, p3)
        for p in &pts {
            let base = p.series[0].1;
            let p3 = p.series[2].1;
            if p3 / base > best.2 / best.1.max(1e-9) {
                best = (p.x, base, p3);
            }
        }
        claims.push(format!(
            "# {}: max P3 speedup {:+.1}% at {} Gbps  (paper: ResNet +25-26%, Inception +18%, VGG +66%, Sockeye +38%)",
            model.name(),
            (best.2 / best.1 - 1.0) * 100.0,
            best.0
        ));
        // Slicing-only contribution at the top bandwidth (paper: VGG +49% at 30G).
        let top = pts.last().expect("nonempty");
        claims.push(p3_bench::speedup_line(
            &format!("{} slicing-only @{}G", model.name(), top.x),
            top.series[0].1,
            top.series[1].1,
        ));
    }
    println!("# ---- summary (5.3) ----");
    for c in claims {
        println!("{c}");
    }
}
