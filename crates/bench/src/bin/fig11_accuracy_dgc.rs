//! Figure 11: validation accuracy of P3 (≡ exact synchronous SGD) vs Deep
//! Gradient Compression across five hyper-parameter settings — the
//! min/max band per epoch.
//!
//! Substitution (DESIGN.md §2): ResNet-110/CIFAR-10 is replaced by an MLP
//! on a hard synthetic task; the comparison is between the *algorithms*.

use p3_bench::print_header;
use p3_tensor::spirals;
use p3_train::{accuracy_band, sweep, SyncMode, TrainConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let epochs = if quick { 12 } else { 40 };
    let data = spirals(3, 6, 3000, 900, 77);

    // Sparsity scaling (DESIGN.md §2): the paper's 99.9% on ResNet-110's
    // 1.7M parameters leaves ~1.7k coordinates per step; at the same
    // sparsity our ~3.5k-parameter MLP would send ~4 coordinates per step,
    // a regime DGC was never designed for. 99% preserves DGC's intended
    // operating point (top-1% per layer with warm-up).
    let dgc_sparsity = 0.99;

    // Five hyper-parameter settings, as in §5.6.
    let settings: Vec<(f32, f32, u64)> = vec![
        (0.10, 0.90, 1),
        (0.07, 0.90, 2),
        (0.13, 0.85, 3),
        (0.10, 0.95, 4),
        (0.08, 0.90, 5),
    ];
    let mut jobs = Vec::new();
    for mode in [
        SyncMode::FullSync,
        SyncMode::Dgc {
            final_sparsity: dgc_sparsity,
            warmup_epochs: 4,
        },
    ] {
        for &(lr, momentum, seed) in &settings {
            let mut cfg = TrainConfig::new(epochs);
            cfg.hidden = vec![48, 24];
            cfg.lr = lr;
            cfg.momentum = momentum;
            cfg.seed = seed;
            jobs.push((cfg, mode));
        }
    }
    let runs = sweep(&data, &jobs);
    let (p3_runs, dgc_runs) = runs.split_at(settings.len());

    print_header(
        "11",
        "P3 vs DGC validation-accuracy band, 5 hyper-parameter settings",
    );
    let p3_band = accuracy_band(p3_runs);
    let dgc_band = accuracy_band(dgc_runs);
    println!("# x = epoch, series = p3_min, p3_max, dgc_min, dgc_max");
    for ((e, p3lo, p3hi), (_, dgclo, dgchi)) in p3_band.iter().zip(&dgc_band) {
        println!("{e:6} {p3lo:10.4} {p3hi:10.4} {dgclo:10.4} {dgchi:10.4}");
    }
    let p3_best: f64 = p3_runs.iter().map(|r| r.final_accuracy).sum::<f64>() / p3_runs.len() as f64;
    let dgc_best: f64 =
        dgc_runs.iter().map(|r| r.final_accuracy).sum::<f64>() / dgc_runs.len() as f64;
    println!(
        "# mean final accuracy: P3 {:.4}, DGC {:.4} (drop {:.2} pp; paper reports ~0.4 pp)",
        p3_best,
        dgc_best,
        (p3_best - dgc_best) * 100.0
    );
}
