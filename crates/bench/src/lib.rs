//! # p3-bench — figure regeneration harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus shared
//! formatting helpers so every binary emits the same machine-readable
//! series format:
//!
//! ```text
//! # figure: 7a  model: ResNet-50  machines: 4
//! # x = bandwidth_gbps, series = Baseline, Slicing, P3
//! 1.0   15.2   23.7   24.7
//! 2.0   38.8   44.2   49.4
//! ```
//!
//! Lines starting with `#` are metadata; data rows are whitespace-separated
//! `x` followed by one column per series — directly gnuplot-compatible,
//! like the plots in the paper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use p3_cluster::SweepPoint;

/// Prints a figure header.
pub fn print_header(figure: &str, detail: &str) {
    println!("# figure: {figure}  {detail}");
}

/// Prints a sweep as gnuplot-style columns with a series legend.
pub fn print_sweep(x_label: &str, points: &[SweepPoint]) {
    if points.is_empty() {
        println!("# (no data)");
        return;
    }
    let names: Vec<&str> = points[0].series.iter().map(|(n, _)| n.as_str()).collect();
    println!("# x = {x_label}, series = {}", names.join(", "));
    for p in points {
        print!("{:10.1}", p.x);
        for (_, v) in &p.series {
            print!(" {v:10.2}");
        }
        println!();
    }
}

/// Prints a multi-column series (e.g. a utilization trace).
pub fn print_series(x_label: &str, labels: &[&str], rows: &[(f64, Vec<f64>)]) {
    println!("# x = {x_label}, series = {}", labels.join(", "));
    for (x, ys) in rows {
        print!("{x:10.3}");
        for y in ys {
            print!(" {y:10.3}");
        }
        println!();
    }
}

/// Formats a speedup comparison line.
pub fn speedup_line(name: &str, base: f64, ours: f64) -> String {
    format!(
        "{name}: baseline {base:.1} -> {ours:.1}  ({:+.1}%)",
        (ours / base - 1.0) * 100.0
    )
}

/// Downsamples a dense series to at most `max` points (every k-th bin),
/// keeping traces printable.
///
/// # Panics
///
/// Panics if `max == 0`.
pub fn downsample(series: &[f64], max: usize) -> Vec<(usize, f64)> {
    assert!(max > 0, "max must be positive");
    let stride = series.len().div_ceil(max).max(1);
    series.iter().copied().enumerate().step_by(stride).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formatting() {
        let line = speedup_line("VGG-19@15G", 40.0, 60.0);
        assert!(line.contains("+50.0%"), "{line}");
    }

    #[test]
    fn downsample_bounds() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let d = downsample(&xs, 100);
        assert!(d.len() <= 100);
        assert_eq!(d[0], (0, 0.0));
        assert_eq!(d[1].0, 10);
    }

    #[test]
    fn downsample_short_series_untouched() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(downsample(&xs, 10).len(), 3);
    }
}
