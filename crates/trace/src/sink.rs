//! Event sinks: where instrumented code sends [`TraceEvent`]s.
//!
//! The design goal is *zero overhead when disabled*: producers hold an
//! `Option<TraceHandle>` (or a `&mut dyn TraceSink` whose no-op impl reports
//! `is_enabled() == false`) and pay a single branch per potential event.
//! Recording never draws randomness, never schedules events, and never
//! observes anything the simulation logic depends on, so tracing cannot
//! perturb a deterministic run.

use crate::event::TraceEvent;
use p3_des::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Anything that can accept timestamped [`TraceEvent`]s.
///
/// Instrumented code that cannot hold a [`TraceHandle`] directly (e.g. a
/// leaf crate that should not know about shared ownership) takes a
/// `&mut dyn TraceSink`; callers pass [`NullSink`] when tracing is off.
pub trait TraceSink {
    /// Records one event at simulated time `at`.
    fn record(&mut self, at: SimTime, event: TraceEvent);

    /// False if this sink discards everything, letting producers skip
    /// event construction that needs extra work (e.g. computing a queue
    /// depth).
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A sink that drops every event. [`TraceSink::is_enabled`] is `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _at: SimTime, _event: TraceEvent) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// One recorded event with its simulated timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// When the event happened on the simulated clock.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// An in-memory recording of a run: every event in the order it was
/// recorded (which, because producers record at the current clock, is
/// nondecreasing in time).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TimedEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog { events: Vec::new() }
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for TraceLog {
    #[inline]
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        self.events.push(TimedEvent { at, event });
    }
}

/// A cloneable, shared handle to a [`TraceLog`].
///
/// The simulator and the network model both record into the same log; a
/// `Rc<RefCell<…>>` handle lets them share it without threading mutable
/// borrows through every call. Single-threaded by design — the DES kernel
/// itself is single-threaded.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Rc<RefCell<TraceLog>>,
}

impl TraceHandle {
    /// Creates a handle to a fresh empty log.
    pub fn new() -> Self {
        TraceHandle::default()
    }

    /// Records one event at simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside another `record` (cannot
    /// happen from straight-line instrumentation code).
    #[inline]
    pub fn record(&self, at: SimTime, event: TraceEvent) {
        self.inner.borrow_mut().record(at, event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Takes the accumulated log out of the handle, leaving it empty.
    /// Other clones of this handle keep recording into the (now empty)
    /// shared log.
    pub fn drain(&self) -> TraceLog {
        std::mem::take(&mut *self.inner.borrow_mut())
    }
}

impl TraceSink for TraceHandle {
    #[inline]
    fn record(&mut self, at: SimTime, event: TraceEvent) {
        TraceHandle::record(self, at, event);
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComputePhase, TraceEvent};

    #[test]
    fn null_sink_reports_disabled_and_discards() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.record(
            SimTime::ZERO,
            TraceEvent::ComputeStart {
                worker: 0,
                phase: ComputePhase::Forward,
                block: 0,
            },
        );
    }

    #[test]
    fn handle_clones_share_one_log() {
        let h = TraceHandle::new();
        let h2 = h.clone();
        h.record(
            SimTime::from_nanos(1),
            TraceEvent::StallStart {
                worker: 0,
                block: 3,
            },
        );
        h2.record(
            SimTime::from_nanos(2),
            TraceEvent::StallEnd {
                worker: 0,
                block: 3,
            },
        );
        assert_eq!(h.len(), 2);
        let log = h.drain();
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].at, SimTime::from_nanos(1));
        assert!(h2.is_empty(), "drain leaves the shared log empty");
    }
}
