//! The typed event vocabulary of the simulation trace.
//!
//! Every event names simulator entities by plain indices (machine, key,
//! round) so the model stays independent of the crates that emit it: the
//! DES kernel is the only dependency, and the network, parameter-server and
//! cluster layers all speak this vocabulary without cycles.
//!
//! The events cover the full slice lifecycle the paper reasons about
//! (Figures 4–9): gradient generated → egress-enqueued (with queue depth
//! and priority) → wire start/finish → server aggregate → round update →
//! parameter propagation back → consumed by the next forward pass — plus
//! compute segments, worker stall intervals, and every fault the injection
//! subsystem can produce.

/// Which half of an iteration a compute segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputePhase {
    /// Forward pass of one block.
    Forward,
    /// Backward pass of one block.
    Backward,
}

/// Which colocated endpoint of a machine emitted an egress event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointRole {
    /// The training worker process.
    Worker,
    /// The parameter-server shard.
    Server,
}

/// Protocol class of a traced message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Worker → server gradient push.
    Push,
    /// Server → worker updated parameters (the "pull" leg of the paper's
    /// push→aggregate→pull pipeline).
    Response,
    /// Server → worker update notification (baseline protocol only).
    Notify,
    /// Worker → server parameter request.
    PullRequest,
    /// Worker → rack-local aggregator gradient push (topology runs with
    /// rack-local aggregation).
    RackPush,
    /// Rack-local aggregator → home server combined gradient push.
    CombinedPush,
    /// Worker → worker partial-gradient chunk of a collective's
    /// reduce-scatter phase (ring or halving–doubling backend).
    ReduceScatter,
    /// Worker → worker aggregated-parameter chunk of a collective's
    /// allgather phase. Carries the post-collective version, like a
    /// parameter-server `Response`.
    AllGather,
}

impl MsgClass {
    /// Short lower-case label used in exported span names.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Push => "push",
            MsgClass::Response => "pull",
            MsgClass::Notify => "notify",
            MsgClass::PullRequest => "pullreq",
            MsgClass::RackPush => "rackpush",
            MsgClass::CombinedPush => "aggpush",
            MsgClass::ReduceScatter => "rscatter",
            MsgClass::AllGather => "allgather",
        }
    }
}

/// Everything the fault-injection and reliability machinery can do, one
/// variant per [`FaultStats`](https://docs.rs/p3-cluster) counter so
/// aggregate totals can be cross-checked against per-event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message died in the fabric (lossy network).
    Loss,
    /// A lost message was retransmitted after its retry timeout.
    Retransmit,
    /// A message was abandoned after exhausting its retry budget.
    GiveUp,
    /// A worker process crashed.
    Crash,
    /// A crashed worker restarted and re-synced.
    Rejoin,
    /// A silent worker was evicted from the aggregation membership.
    Eviction,
    /// A key-round completed without every configured worker's gradient.
    DegradedRound,
    /// A push was discarded because its round had already completed.
    StalePush,
    /// A push was discarded because the worker already contributed.
    DuplicatePush,
    /// An in-flight transmission was cancelled by a crash.
    FlowCancelled,
    /// An in-flight collective was aborted by a membership change and
    /// will be relaunched over the surviving group.
    CollectiveAbort,
}

impl FaultKind {
    /// Short lower-case label used in exported event names.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Loss => "loss",
            FaultKind::Retransmit => "retransmit",
            FaultKind::GiveUp => "gave-up",
            FaultKind::Crash => "crash",
            FaultKind::Rejoin => "rejoin",
            FaultKind::Eviction => "eviction",
            FaultKind::DegradedRound => "degraded-round",
            FaultKind::StalePush => "stale-push",
            FaultKind::DuplicatePush => "duplicate-push",
            FaultKind::FlowCancelled => "flow-cancelled",
            FaultKind::CollectiveAbort => "collective-abort",
        }
    }
}

/// One typed simulation event. All variants are `Copy` and allocation-free
/// so recording costs one bounds-checked `Vec` push and disabled tracing
/// costs one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A compute segment (forward or backward of one block) started.
    ComputeStart {
        /// Worker index.
        worker: usize,
        /// Forward or backward.
        phase: ComputePhase,
        /// Compute-block index.
        block: usize,
    },
    /// A compute segment finished.
    ComputeEnd {
        /// Worker index.
        worker: usize,
        /// Forward or backward.
        phase: ComputePhase,
        /// Compute-block index.
        block: usize,
    },
    /// The worker stalled waiting for parameters of a block.
    StallStart {
        /// Worker index.
        worker: usize,
        /// Block whose parameters are missing.
        block: usize,
    },
    /// The stalled worker's parameters arrived; compute resumes.
    StallEnd {
        /// Worker index.
        worker: usize,
        /// Block that was waiting.
        block: usize,
    },
    /// A worker finished one full iteration.
    IterationEnd {
        /// Worker index.
        worker: usize,
        /// 1-based count of completed iterations.
        iter: u64,
    },
    /// A slice's gradient became available at the end of its block's
    /// backward pass.
    GradReady {
        /// Worker index.
        worker: usize,
        /// Slice key.
        key: usize,
        /// Training round the gradient belongs to.
        round: u64,
        /// Network priority class the slice will be sent at.
        priority: u32,
    },
    /// A message entered an endpoint's egress queue.
    EgressEnqueue {
        /// Machine hosting the endpoint.
        machine: usize,
        /// Worker or server side of the machine.
        role: EndpointRole,
        /// Correlates with the matching wire events.
        msg_id: u64,
        /// Protocol class.
        class: MsgClass,
        /// Slice key the message is about.
        key: usize,
        /// Round (pushes/requests) or version (responses/notifies).
        round: u64,
        /// Network priority class at enqueue.
        priority: u32,
        /// Queued (not yet in-flight) messages after this enqueue.
        queue_depth: usize,
    },
    /// A transfer started occupying the fabric.
    WireStart {
        /// Correlation tag (the simulator's message id).
        msg_id: u64,
        /// Source machine.
        src: usize,
        /// Destination machine.
        dst: usize,
        /// Wire size.
        bytes: u64,
        /// Priority class.
        priority: u32,
    },
    /// A transfer's last byte was delivered.
    WireEnd {
        /// Correlation tag (the simulator's message id).
        msg_id: u64,
        /// Source machine.
        src: usize,
        /// Destination machine.
        dst: usize,
        /// Wire size.
        bytes: u64,
        /// Link-graph link that bounded the flow's final rate (topology
        /// runs only); `None` on the flat fabric, for loopback, or when
        /// the per-flow cap was the binding constraint.
        bottleneck: Option<usize>,
    },
    /// The server's processing unit started aggregating one push.
    AggStart {
        /// Server shard index.
        server: usize,
        /// Slice key.
        key: usize,
        /// Round being aggregated.
        round: u64,
        /// Worker whose gradient is being folded in.
        worker: usize,
    },
    /// The server finished aggregating one push.
    AggEnd {
        /// Server shard index.
        server: usize,
        /// Slice key.
        key: usize,
        /// Round being aggregated.
        round: u64,
        /// Worker whose gradient was folded in.
        worker: usize,
    },
    /// A key's aggregation round completed and the updated parameters were
    /// sent out.
    RoundComplete {
        /// Server shard index.
        server: usize,
        /// Slice key.
        key: usize,
        /// New parameter version.
        version: u64,
        /// True if the round completed without every configured worker.
        degraded: bool,
    },
    /// A slice's parameters were consumed by the next forward pass.
    SliceConsumed {
        /// Worker index.
        worker: usize,
        /// Slice key.
        key: usize,
        /// Round whose parameters are consumed.
        round: u64,
    },
    /// Something the fault-injection/reliability machinery did.
    Fault {
        /// What happened.
        kind: FaultKind,
        /// Machine the event is attributed to.
        machine: usize,
        /// Message involved, when the fault concerns one.
        msg_id: Option<u64>,
    },
    /// The engine's rolling state hash after processing a simulator event
    /// (emitted every `hash_every` events when enabled). Two runs of the
    /// same configuration produce identical hash sequences; the first
    /// differing `(events, hash)` pair between two diverging runs
    /// localizes the divergence to an exact event.
    StateHash {
        /// Simulator events processed when the hash was taken.
        events: u64,
        /// The rolling hash value.
        hash: u64,
    },
}
