//! # p3-trace — end-to-end simulation tracing
//!
//! Observability layer for the P3 reproduction: a typed event vocabulary
//! covering the full slice lifecycle (gradient generated → egress-enqueued →
//! wire → server aggregate → update → pull → consumed by the next forward),
//! zero-overhead-when-disabled sinks, a metrics registry with per-stage
//! latency breakdowns, and exporters to Chrome trace-event JSON (Perfetto)
//! plus helpers for ASCII timelines.
//!
//! The crate deliberately depends only on the DES kernel and names
//! simulator entities by plain indices, so the network, parameter-server
//! and cluster layers can all emit into one trace without dependency
//! cycles.
//!
//! ## Zero-overhead guarantee
//!
//! Producers hold an `Option<TraceHandle>` (or a `&mut dyn TraceSink` that
//! may be [`NullSink`]). With tracing off the cost is a single branch per
//! potential event; recording draws no randomness and schedules nothing, so
//! a traced run and an untraced run of the same seed produce bit-identical
//! results — pinned by test in `p3-cluster`.
//!
//! # Examples
//!
//! ```
//! use p3_des::SimTime;
//! use p3_trace::{chrome_trace_json, validate_chrome_trace, TraceEvent, TraceHandle};
//!
//! let handle = TraceHandle::new();
//! handle.record(
//!     SimTime::from_micros(3),
//!     TraceEvent::WireStart { msg_id: 0, src: 0, dst: 1, bytes: 512, priority: 1 },
//! );
//! handle.record(
//!     SimTime::from_micros(7),
//!     TraceEvent::WireEnd { msg_id: 0, src: 0, dst: 1, bytes: 512, bottleneck: None },
//! );
//! let doc = chrome_trace_json(&handle.drain(), 2);
//! assert_eq!(validate_chrome_trace(&doc).unwrap().len(), 2); // tx + rx lanes
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod event;
mod export;
pub mod json;
mod metrics;
mod sink;

pub use chrome::{chrome_trace_json, validate_chrome_trace, ChromeSpan};
pub use event::{ComputePhase, EndpointRole, FaultKind, MsgClass, TraceEvent};
pub use export::{export_trace_json, import_trace_json, TraceMeta, TRACE_FORMAT_VERSION};
pub use metrics::MetricsRegistry;
pub use sink::{NullSink, TimedEvent, TraceHandle, TraceLog, TraceSink};
