//! Chrome trace-event JSON export, loadable in Perfetto / `chrome://tracing`.
//!
//! Layout: one *process* per machine and one *thread* per lane — `0`
//! compute, `1` tx, `2` rx, `3` server — so a loaded trace reads like the
//! paper's timeline figures: compute segments and stalls on the compute
//! lane, each transfer as a span on the sender's tx lane and the receiver's
//! rx lane, aggregation on the server lane, with instants for round
//! updates, slice consumption and faults.
//!
//! Only the subset of the trace-event format that Perfetto needs is
//! emitted: `X` (complete) spans with `ts`/`dur` in microseconds, `i`
//! (instant) events, and `M` metadata records naming processes and
//! threads.

use crate::event::{ComputePhase, TraceEvent};
use crate::json::{escape, format_number, parse, JsonValue};
use crate::sink::TraceLog;
use p3_des::SimTime;
use std::collections::BTreeMap;

/// Lane (thread) ids within each machine's process.
const LANE_COMPUTE: u32 = 0;
/// Transmit lane.
const LANE_TX: u32 = 1;
/// Receive lane.
const LANE_RX: u32 = 2;
/// Server (aggregation) lane.
const LANE_SERVER: u32 = 3;

fn us(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000.0
}

fn span(name: &str, pid: usize, tid: u32, start: SimTime, end: SimTime) -> String {
    format!(
        "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \"dur\": {}}}",
        escape(name),
        format_number(us(start)),
        format_number(us(end).max(us(start)) - us(start)),
    )
}

fn span_with_bottleneck(
    name: &str,
    pid: usize,
    tid: u32,
    start: SimTime,
    end: SimTime,
    bottleneck: usize,
) -> String {
    format!(
        "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \"dur\": {}, \"args\": {{\"bottleneck\": {bottleneck}}}}}",
        escape(name),
        format_number(us(start)),
        format_number(us(end).max(us(start)) - us(start)),
    )
}

fn instant(name: &str, pid: usize, tid: u32, at: SimTime) -> String {
    format!(
        "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}}}",
        escape(name),
        format_number(us(at)),
    )
}

fn metadata(kind: &str, pid: usize, tid: Option<u32>, name: &str) -> String {
    match tid {
        Some(tid) => format!(
            "{{\"name\": \"{kind}\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ),
        None => format!(
            "{{\"name\": \"{kind}\", \"ph\": \"M\", \"pid\": {pid}, \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ),
    }
}

/// Renders a recorded trace as a Chrome trace-event JSON document for
/// `machines` machines.
///
/// Spans whose end was never recorded (cut off by the end of the run) are
/// dropped; a retransmitted message's wire span reflects its last
/// transmission.
pub fn chrome_trace_json(log: &TraceLog, machines: usize) -> String {
    let mut lines: Vec<String> = Vec::new();
    for m in 0..machines {
        lines.push(metadata("process_name", m, None, &format!("machine {m}")));
        lines.push(metadata("thread_name", m, Some(LANE_COMPUTE), "compute"));
        lines.push(metadata("thread_name", m, Some(LANE_TX), "tx"));
        lines.push(metadata("thread_name", m, Some(LANE_RX), "rx"));
        lines.push(metadata("thread_name", m, Some(LANE_SERVER), "server"));
    }

    // Open-span state.
    let mut compute_open: BTreeMap<(usize, usize, u8), SimTime> = BTreeMap::new();
    let mut stall_open: BTreeMap<(usize, usize), SimTime> = BTreeMap::new();
    let mut agg_open: BTreeMap<(usize, usize, u64, usize), SimTime> = BTreeMap::new();
    // msg_id → (class label, key) learned at enqueue; wire spans are named
    // after the protocol class even when the enqueue predates the capture.
    let mut msg_name: BTreeMap<u64, String> = BTreeMap::new();
    // msg_id → (start, src, dst); last start wins so a retransmitted
    // message's span covers its final (delivered) transmission.
    let mut wire_open: BTreeMap<u64, (SimTime, usize, usize)> = BTreeMap::new();

    for te in log.events() {
        let at = te.at;
        match te.event {
            TraceEvent::ComputeStart {
                worker,
                phase,
                block,
            } => {
                compute_open.insert((worker, block, phase as u8), at);
            }
            TraceEvent::ComputeEnd {
                worker,
                phase,
                block,
            } => {
                if let Some(t0) = compute_open.remove(&(worker, block, phase as u8)) {
                    let name = match phase {
                        ComputePhase::Forward => format!("fwd b{block}"),
                        ComputePhase::Backward => format!("bwd b{block}"),
                    };
                    lines.push(span(&name, worker, LANE_COMPUTE, t0, at));
                }
            }
            TraceEvent::StallStart { worker, block } => {
                stall_open.insert((worker, block), at);
            }
            TraceEvent::StallEnd { worker, block } => {
                if let Some(t0) = stall_open.remove(&(worker, block)) {
                    lines.push(span(
                        &format!("stall b{block}"),
                        worker,
                        LANE_COMPUTE,
                        t0,
                        at,
                    ));
                }
            }
            TraceEvent::EgressEnqueue {
                msg_id, class, key, ..
            } => {
                msg_name.insert(msg_id, format!("{} k{key}", class.label()));
            }
            TraceEvent::WireStart {
                msg_id, src, dst, ..
            } => {
                wire_open.insert(msg_id, (at, src, dst));
            }
            TraceEvent::WireEnd {
                msg_id, bottleneck, ..
            } => {
                if let Some((t0, src, dst)) = wire_open.remove(&msg_id) {
                    let name = msg_name
                        .get(&msg_id)
                        .cloned()
                        .unwrap_or_else(|| format!("msg {msg_id}"));
                    match bottleneck {
                        Some(l) => {
                            lines.push(span_with_bottleneck(&name, src, LANE_TX, t0, at, l));
                            lines.push(span_with_bottleneck(&name, dst, LANE_RX, t0, at, l));
                        }
                        None => {
                            lines.push(span(&name, src, LANE_TX, t0, at));
                            lines.push(span(&name, dst, LANE_RX, t0, at));
                        }
                    }
                }
            }
            TraceEvent::AggStart {
                server,
                key,
                round,
                worker,
            } => {
                agg_open.insert((server, key, round, worker), at);
            }
            TraceEvent::AggEnd {
                server,
                key,
                round,
                worker,
            } => {
                if let Some(t0) = agg_open.remove(&(server, key, round, worker)) {
                    lines.push(span(&format!("agg k{key}"), server, LANE_SERVER, t0, at));
                }
            }
            TraceEvent::RoundComplete {
                server,
                key,
                version,
                degraded,
            } => {
                let name = if degraded {
                    format!("update k{key} v{version} (degraded)")
                } else {
                    format!("update k{key} v{version}")
                };
                lines.push(instant(&name, server, LANE_SERVER, at));
            }
            TraceEvent::SliceConsumed { worker, key, .. } => {
                lines.push(instant(
                    &format!("consume k{key}"),
                    worker,
                    LANE_COMPUTE,
                    at,
                ));
            }
            TraceEvent::GradReady { worker, key, .. } => {
                lines.push(instant(&format!("grad k{key}"), worker, LANE_COMPUTE, at));
            }
            TraceEvent::IterationEnd { worker, iter } => {
                lines.push(instant(
                    &format!("iteration {iter}"),
                    worker,
                    LANE_COMPUTE,
                    at,
                ));
            }
            TraceEvent::Fault {
                kind,
                machine,
                msg_id,
            } => {
                let name = match msg_id {
                    Some(id) => format!("fault {} msg{id}", kind.label()),
                    None => format!("fault {}", kind.label()),
                };
                lines.push(instant(&name, machine, LANE_COMPUTE, at));
            }
            // Engine bookkeeping, not a machine-attributable span: the hash
            // stream is for digest comparison, not for the Perfetto view.
            TraceEvent::StateHash { .. } => {}
        }
    }

    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// One validated `X` (complete) span from a Chrome trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeSpan {
    /// Span name.
    pub name: String,
    /// Process (machine) id.
    pub pid: usize,
    /// Thread (lane) id.
    pub tid: u32,
    /// Start, microseconds.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    /// `args.bottleneck` (the saturated link id of a wire span on a
    /// topology run), when present.
    pub bottleneck: Option<usize>,
}

/// Parses and schema-checks a Chrome trace-event document, returning its
/// complete (`X`) spans.
///
/// Checks: the document is an object with a `traceEvents` array; every
/// entry is an object with a string `ph`; `X` entries carry a string
/// `name` and numeric `pid`/`tid`/`ts`/`dur` with `dur >= 0`; `i` entries
/// carry `name`, `pid`, `tid`, `ts`. An `X` entry may carry an `args`
/// object; when it holds a `bottleneck` it must be a non-negative number
/// (the link id), surfaced on the returned span.
pub fn validate_chrome_trace(doc: &str) -> Result<Vec<ChromeSpan>, String> {
    let v = parse(doc).map_err(|e| e.to_string())?;
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut spans = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or(format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or(format!("event {i} missing ph"))?;
        let num = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(JsonValue::as_number)
                .ok_or(format!("{ph} event {i} missing numeric {key}"))
        };
        let name = || -> Result<String, String> {
            obj.get("name")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or(format!("{ph} event {i} missing name"))
        };
        match ph {
            "X" => {
                let dur = num("dur")?;
                if dur < 0.0 {
                    return Err(format!("event {i} has negative dur"));
                }
                let mut bottleneck = None;
                if let Some(args) = obj.get("args") {
                    let args = args
                        .as_object()
                        .ok_or(format!("event {i} args is not an object"))?;
                    if let Some(b) = args.get("bottleneck") {
                        let b = b
                            .as_number()
                            .filter(|b| *b >= 0.0)
                            .ok_or(format!("event {i} bottleneck is not a link id"))?;
                        bottleneck = Some(b as usize);
                    }
                }
                spans.push(ChromeSpan {
                    name: name()?,
                    pid: num("pid")? as usize,
                    tid: num("tid")? as u32,
                    ts: num("ts")?,
                    dur,
                    bottleneck,
                });
            }
            "i" => {
                name()?;
                num("pid")?;
                num("tid")?;
                num("ts")?;
            }
            "M" => {
                name()?;
            }
            other => return Err(format!("event {i} has unsupported phase '{other}'")),
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EndpointRole, MsgClass};
    use crate::sink::TraceSink;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.record(
            t(0),
            TraceEvent::ComputeStart {
                worker: 0,
                phase: ComputePhase::Backward,
                block: 1,
            },
        );
        log.record(
            t(5),
            TraceEvent::ComputeEnd {
                worker: 0,
                phase: ComputePhase::Backward,
                block: 1,
            },
        );
        log.record(
            t(5),
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: EndpointRole::Worker,
                msg_id: 1,
                class: MsgClass::Push,
                key: 4,
                round: 0,
                priority: 2,
                queue_depth: 0,
            },
        );
        log.record(
            t(5),
            TraceEvent::WireStart {
                msg_id: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                priority: 2,
            },
        );
        log.record(
            t(9),
            TraceEvent::WireEnd {
                msg_id: 1,
                src: 0,
                dst: 1,
                bytes: 64,
                bottleneck: Some(2),
            },
        );
        log.record(
            t(9),
            TraceEvent::AggStart {
                server: 1,
                key: 4,
                round: 0,
                worker: 0,
            },
        );
        log.record(
            t(12),
            TraceEvent::AggEnd {
                server: 1,
                key: 4,
                round: 0,
                worker: 0,
            },
        );
        log.record(
            t(12),
            TraceEvent::RoundComplete {
                server: 1,
                key: 4,
                version: 1,
                degraded: false,
            },
        );
        log
    }

    #[test]
    fn export_validates_and_contains_expected_spans() {
        let doc = chrome_trace_json(&sample_log(), 2);
        let spans = validate_chrome_trace(&doc).expect("schema-valid");
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"bwd b1"));
        assert!(names.contains(&"push k4"));
        assert!(names.contains(&"agg k4"));
        // The wire span appears on both the sender tx lane and receiver rx
        // lane.
        let wire: Vec<&ChromeSpan> = spans.iter().filter(|s| s.name == "push k4").collect();
        assert_eq!(wire.len(), 2);
        assert!(wire.iter().any(|s| s.pid == 0 && s.tid == 1));
        assert!(wire.iter().any(|s| s.pid == 1 && s.tid == 2));
        assert!((wire[0].dur - 4.0).abs() < 1e-9);
        // The bottleneck link id survives the export → validate round trip
        // on wire spans and stays absent elsewhere.
        assert!(wire.iter().all(|s| s.bottleneck == Some(2)));
        let bwd = spans
            .iter()
            .find(|s| s.name == "bwd b1")
            .expect("compute span");
        assert_eq!(bwd.bottleneck, None);
    }

    #[test]
    fn unfinished_spans_are_dropped() {
        let mut log = TraceLog::new();
        log.record(
            t(0),
            TraceEvent::WireStart {
                msg_id: 9,
                src: 0,
                dst: 1,
                bytes: 1,
                priority: 0,
            },
        );
        let doc = chrome_trace_json(&log, 2);
        let spans = validate_chrome_trace(&doc).expect("schema-valid");
        assert!(spans.is_empty());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": -1}]}"#
        )
        .is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": []}"#)
            .unwrap()
            .is_empty());
        // args, when present, must be an object with a numeric non-negative
        // bottleneck.
        assert!(validate_chrome_trace(
            r#"{"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": 1, "args": 3}]}"#
        )
        .is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": 1, "args": {"bottleneck": -4}}]}"#
        )
        .is_err());
        let ok = validate_chrome_trace(
            r#"{"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": 1, "args": {"bottleneck": 9}}]}"#,
        )
        .unwrap();
        assert_eq!(ok[0].bottleneck, Some(9));
    }
}
