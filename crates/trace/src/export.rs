//! Lossless typed-event trace files.
//!
//! [`chrome_trace_json`](crate::chrome_trace_json) is deliberately lossy:
//! it renders spans for humans and drops whatever Perfetto cannot show
//! (exact priorities, queue depths, unfinished transfers). The offline
//! auditor (`p3-audit`) needs the opposite — every [`TraceEvent`] exactly
//! as recorded, plus enough run metadata to evaluate capacity and
//! scheduling invariants.
//!
//! [`export_trace_json`] therefore writes one JSON document carrying both
//! views side by side:
//!
//! ```json
//! {
//!   "traceEvents": [ ... ],          // Chrome/Perfetto spans (lossy)
//!   "p3TraceVersion": 1,
//!   "p3Meta": { "machines": 4, ... },
//!   "p3Events": [ [t, "ws", ...], ... ]  // every event, lossless
//! }
//! ```
//!
//! The Chrome trace-event format ignores unknown top-level keys, so the
//! file still loads in Perfetto unchanged, and
//! [`validate_chrome_trace`](crate::validate_chrome_trace) keeps working.
//! [`import_trace_json`] round-trips the `p3Events` array back into a
//! [`TraceLog`].
//!
//! Events are encoded as compact JSON arrays `[nanos, tag, fields…]`; the
//! tag is a two-letter code per variant. All integers fit in an `f64`
//! mantissa at simulation scale (2⁵³ ns ≈ 104 days).

use crate::chrome::chrome_trace_json;
use crate::event::{ComputePhase, EndpointRole, FaultKind, MsgClass, TraceEvent};
use crate::json::{self, format_number, JsonValue};
use crate::sink::{TraceLog, TraceSink};
use p3_des::SimTime;
use std::fmt::Write as _;

/// Format version written as `p3TraceVersion`.
pub const TRACE_FORMAT_VERSION: u64 = 1;

/// Run metadata embedded in an exported trace so an offline auditor can
/// evaluate invariants that depend on configuration, not just on the event
/// stream (egress discipline, in-flight window, NIC capacity).
///
/// Every field except `machines` is optional: `None` means "unknown", and
/// the auditor skips the checks that would need it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceMeta {
    /// Number of machines in the run.
    pub machines: usize,
    /// `Some(true)` if every endpoint drains one strict-priority queue
    /// through a single consumer (P3-style); `Some(false)` for
    /// per-destination FIFO lanes (baseline); `None` if unknown.
    pub single_consumer: Option<bool>,
    /// Maximum messages one single-consumer endpoint may have in flight.
    pub window: Option<usize>,
    /// Effective per-direction NIC goodput in bytes/sec (nominal bandwidth
    /// × efficiency), when every machine's port is identical (flat
    /// fabric). `None` on heterogeneous/topology fabrics, where per-port
    /// capacity cannot be summarized by one number.
    pub port_bytes_per_sec: Option<f64>,
    /// Strategy display name, for report headers.
    pub strategy: Option<String>,
    /// Model display name, for report headers.
    pub model: Option<String>,
    /// `Some(true)` when aggregation runs over a collective backend
    /// (ring / halving–doubling) rather than parameter servers; `None` if
    /// unknown. Collective rejoins sync worker versions in place instead
    /// of over the wire, which the auditor must model.
    pub collective: Option<bool>,
}

fn opt_bool(v: Option<bool>) -> String {
    match v {
        Some(true) => "true".into(),
        Some(false) => "false".into(),
        None => "null".into(),
    }
}

fn meta_json(meta: &TraceMeta) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"machines\":{}", meta.machines);
    let _ = write!(
        out,
        ",\"singleConsumer\":{}",
        opt_bool(meta.single_consumer)
    );
    match meta.window {
        Some(w) => {
            let _ = write!(out, ",\"window\":{w}");
        }
        None => out.push_str(",\"window\":null"),
    }
    match meta.port_bytes_per_sec {
        Some(c) => {
            let _ = write!(out, ",\"portBytesPerSec\":{}", format_number(c));
        }
        None => out.push_str(",\"portBytesPerSec\":null"),
    }
    if let Some(s) = &meta.strategy {
        let _ = write!(out, ",\"strategy\":\"{}\"", json::escape(s));
    }
    if let Some(m) = &meta.model {
        let _ = write!(out, ",\"model\":\"{}\"", json::escape(m));
    }
    let _ = write!(out, ",\"collective\":{}", opt_bool(meta.collective));
    out.push('}');
    out
}

fn phase_code(p: ComputePhase) -> u64 {
    match p {
        ComputePhase::Forward => 0,
        ComputePhase::Backward => 1,
    }
}

fn role_code(r: EndpointRole) -> u64 {
    match r {
        EndpointRole::Worker => 0,
        EndpointRole::Server => 1,
    }
}

fn class_code(c: MsgClass) -> u64 {
    match c {
        MsgClass::Push => 0,
        MsgClass::Response => 1,
        MsgClass::Notify => 2,
        MsgClass::PullRequest => 3,
        MsgClass::RackPush => 4,
        MsgClass::CombinedPush => 5,
        MsgClass::ReduceScatter => 6,
        MsgClass::AllGather => 7,
    }
}

fn fault_code(k: FaultKind) -> u64 {
    match k {
        FaultKind::Loss => 0,
        FaultKind::Retransmit => 1,
        FaultKind::GiveUp => 2,
        FaultKind::Crash => 3,
        FaultKind::Rejoin => 4,
        FaultKind::Eviction => 5,
        FaultKind::DegradedRound => 6,
        FaultKind::StalePush => 7,
        FaultKind::DuplicatePush => 8,
        FaultKind::FlowCancelled => 9,
        FaultKind::CollectiveAbort => 10,
    }
}

fn event_row(at: SimTime, ev: &TraceEvent) -> String {
    let t = at.as_nanos();
    match *ev {
        TraceEvent::ComputeStart {
            worker,
            phase,
            block,
        } => format!("[{t},\"cs\",{worker},{},{block}]", phase_code(phase)),
        TraceEvent::ComputeEnd {
            worker,
            phase,
            block,
        } => format!("[{t},\"ce\",{worker},{},{block}]", phase_code(phase)),
        TraceEvent::StallStart { worker, block } => format!("[{t},\"ss\",{worker},{block}]"),
        TraceEvent::StallEnd { worker, block } => format!("[{t},\"se\",{worker},{block}]"),
        TraceEvent::IterationEnd { worker, iter } => format!("[{t},\"it\",{worker},{iter}]"),
        TraceEvent::GradReady {
            worker,
            key,
            round,
            priority,
        } => format!("[{t},\"gr\",{worker},{key},{round},{priority}]"),
        TraceEvent::EgressEnqueue {
            machine,
            role,
            msg_id,
            class,
            key,
            round,
            priority,
            queue_depth,
        } => format!(
            "[{t},\"eq\",{machine},{},{msg_id},{},{key},{round},{priority},{queue_depth}]",
            role_code(role),
            class_code(class)
        ),
        TraceEvent::WireStart {
            msg_id,
            src,
            dst,
            bytes,
            priority,
        } => format!("[{t},\"ws\",{msg_id},{src},{dst},{bytes},{priority}]"),
        TraceEvent::WireEnd {
            msg_id,
            src,
            dst,
            bytes,
            bottleneck,
        } => {
            let b = match bottleneck {
                Some(l) => l.to_string(),
                None => "null".into(),
            };
            format!("[{t},\"we\",{msg_id},{src},{dst},{bytes},{b}]")
        }
        TraceEvent::AggStart {
            server,
            key,
            round,
            worker,
        } => format!("[{t},\"as\",{server},{key},{round},{worker}]"),
        TraceEvent::AggEnd {
            server,
            key,
            round,
            worker,
        } => format!("[{t},\"ae\",{server},{key},{round},{worker}]"),
        TraceEvent::RoundComplete {
            server,
            key,
            version,
            degraded,
        } => format!(
            "[{t},\"rc\",{server},{key},{version},{}]",
            u8::from(degraded)
        ),
        TraceEvent::SliceConsumed { worker, key, round } => {
            format!("[{t},\"sc\",{worker},{key},{round}]")
        }
        TraceEvent::Fault {
            kind,
            machine,
            msg_id,
        } => {
            let m = match msg_id {
                Some(id) => id.to_string(),
                None => "null".into(),
            };
            format!("[{t},\"ft\",{},{machine},{m}]", fault_code(kind))
        }
        // The hash is a full 64-bit value, wider than an f64 mantissa, so
        // it travels as a hex string rather than a JSON number.
        TraceEvent::StateHash { events, hash } => format!("[{t},\"sh\",{events},\"{hash:016x}\"]"),
    }
}

/// Exports a trace as one JSON document carrying both the lossy Chrome
/// spans (`traceEvents`, for Perfetto) and the lossless typed events plus
/// run metadata (`p3Events`/`p3Meta`, for `p3 audit`).
///
/// # Examples
///
/// ```
/// use p3_des::SimTime;
/// use p3_trace::{export_trace_json, import_trace_json, TraceEvent, TraceHandle, TraceMeta};
///
/// let h = TraceHandle::new();
/// h.record(
///     SimTime::from_micros(1),
///     TraceEvent::WireStart { msg_id: 0, src: 0, dst: 1, bytes: 64, priority: 2 },
/// );
/// let meta = TraceMeta { machines: 2, ..TraceMeta::default() };
/// let doc = export_trace_json(&h.drain(), &meta);
/// let (log, parsed) = import_trace_json(&doc).unwrap();
/// assert_eq!(log.len(), 1);
/// assert_eq!(parsed.machines, 2);
/// ```
pub fn export_trace_json(log: &TraceLog, meta: &TraceMeta) -> String {
    let chrome = chrome_trace_json(log, meta.machines);
    let trimmed = chrome.trim_end();
    debug_assert!(trimmed.ends_with('}'), "chrome export is a JSON object");
    let mut out = String::with_capacity(trimmed.len() + 64 * log.len());
    out.push_str(&trimmed[..trimmed.len() - 1]);
    let _ = write!(out, ",\n\"p3TraceVersion\": {TRACE_FORMAT_VERSION}");
    let _ = write!(out, ",\n\"p3Meta\": {}", meta_json(meta));
    out.push_str(",\n\"p3Events\": [\n");
    let mut first = true;
    for e in log.events() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&event_row(e.at, &e.event));
    }
    out.push_str("\n]}\n");
    out
}

fn num(v: &JsonValue, row: usize, what: &str) -> Result<f64, String> {
    v.as_number()
        .ok_or_else(|| format!("p3Events[{row}]: {what} is not a number"))
}

fn uint(v: &JsonValue, row: usize, what: &str) -> Result<u64, String> {
    let n = num(v, row, what)?;
    if n < 0.0 || n.fract() != 0.0 || n >= 9.007_199_254_740_992e15 {
        return Err(format!("p3Events[{row}]: {what} is not a u64 ({n})"));
    }
    Ok(n as u64)
}

fn idx(v: &JsonValue, row: usize, what: &str) -> Result<usize, String> {
    Ok(uint(v, row, what)? as usize)
}

fn opt_uint(v: &JsonValue, row: usize, what: &str) -> Result<Option<u64>, String> {
    match v {
        JsonValue::Null => Ok(None),
        other => uint(other, row, what).map(Some),
    }
}

fn decode_phase(code: u64, row: usize) -> Result<ComputePhase, String> {
    match code {
        0 => Ok(ComputePhase::Forward),
        1 => Ok(ComputePhase::Backward),
        c => Err(format!("p3Events[{row}]: unknown phase code {c}")),
    }
}

fn decode_role(code: u64, row: usize) -> Result<EndpointRole, String> {
    match code {
        0 => Ok(EndpointRole::Worker),
        1 => Ok(EndpointRole::Server),
        c => Err(format!("p3Events[{row}]: unknown role code {c}")),
    }
}

fn decode_class(code: u64, row: usize) -> Result<MsgClass, String> {
    match code {
        0 => Ok(MsgClass::Push),
        1 => Ok(MsgClass::Response),
        2 => Ok(MsgClass::Notify),
        3 => Ok(MsgClass::PullRequest),
        4 => Ok(MsgClass::RackPush),
        5 => Ok(MsgClass::CombinedPush),
        6 => Ok(MsgClass::ReduceScatter),
        7 => Ok(MsgClass::AllGather),
        c => Err(format!("p3Events[{row}]: unknown class code {c}")),
    }
}

fn decode_fault(code: u64, row: usize) -> Result<FaultKind, String> {
    match code {
        0 => Ok(FaultKind::Loss),
        1 => Ok(FaultKind::Retransmit),
        2 => Ok(FaultKind::GiveUp),
        3 => Ok(FaultKind::Crash),
        4 => Ok(FaultKind::Rejoin),
        5 => Ok(FaultKind::Eviction),
        6 => Ok(FaultKind::DegradedRound),
        7 => Ok(FaultKind::StalePush),
        8 => Ok(FaultKind::DuplicatePush),
        9 => Ok(FaultKind::FlowCancelled),
        10 => Ok(FaultKind::CollectiveAbort),
        c => Err(format!("p3Events[{row}]: unknown fault code {c}")),
    }
}

fn decode_row(row: &[JsonValue], i: usize) -> Result<(SimTime, TraceEvent), String> {
    let need = |n: usize| -> Result<(), String> {
        if row.len() != n + 2 {
            Err(format!(
                "p3Events[{i}]: expected {} fields, got {}",
                n + 2,
                row.len()
            ))
        } else {
            Ok(())
        }
    };
    if row.len() < 2 {
        return Err(format!("p3Events[{i}]: row too short"));
    }
    let at = SimTime::from_nanos(uint(&row[0], i, "timestamp")?);
    let tag = row[1]
        .as_str()
        .ok_or_else(|| format!("p3Events[{i}]: tag is not a string"))?;
    let ev = match tag {
        "cs" | "ce" => {
            need(3)?;
            let worker = idx(&row[2], i, "worker")?;
            let phase = decode_phase(uint(&row[3], i, "phase")?, i)?;
            let block = idx(&row[4], i, "block")?;
            if tag == "cs" {
                TraceEvent::ComputeStart {
                    worker,
                    phase,
                    block,
                }
            } else {
                TraceEvent::ComputeEnd {
                    worker,
                    phase,
                    block,
                }
            }
        }
        "ss" | "se" => {
            need(2)?;
            let worker = idx(&row[2], i, "worker")?;
            let block = idx(&row[3], i, "block")?;
            if tag == "ss" {
                TraceEvent::StallStart { worker, block }
            } else {
                TraceEvent::StallEnd { worker, block }
            }
        }
        "it" => {
            need(2)?;
            TraceEvent::IterationEnd {
                worker: idx(&row[2], i, "worker")?,
                iter: uint(&row[3], i, "iter")?,
            }
        }
        "gr" => {
            need(4)?;
            TraceEvent::GradReady {
                worker: idx(&row[2], i, "worker")?,
                key: idx(&row[3], i, "key")?,
                round: uint(&row[4], i, "round")?,
                priority: uint(&row[5], i, "priority")? as u32,
            }
        }
        "eq" => {
            need(8)?;
            TraceEvent::EgressEnqueue {
                machine: idx(&row[2], i, "machine")?,
                role: decode_role(uint(&row[3], i, "role")?, i)?,
                msg_id: uint(&row[4], i, "msg_id")?,
                class: decode_class(uint(&row[5], i, "class")?, i)?,
                key: idx(&row[6], i, "key")?,
                round: uint(&row[7], i, "round")?,
                priority: uint(&row[8], i, "priority")? as u32,
                queue_depth: idx(&row[9], i, "queue_depth")?,
            }
        }
        "ws" => {
            need(5)?;
            TraceEvent::WireStart {
                msg_id: uint(&row[2], i, "msg_id")?,
                src: idx(&row[3], i, "src")?,
                dst: idx(&row[4], i, "dst")?,
                bytes: uint(&row[5], i, "bytes")?,
                priority: uint(&row[6], i, "priority")? as u32,
            }
        }
        "we" => {
            need(5)?;
            TraceEvent::WireEnd {
                msg_id: uint(&row[2], i, "msg_id")?,
                src: idx(&row[3], i, "src")?,
                dst: idx(&row[4], i, "dst")?,
                bytes: uint(&row[5], i, "bytes")?,
                bottleneck: opt_uint(&row[6], i, "bottleneck")?.map(|l| l as usize),
            }
        }
        "as" | "ae" => {
            need(4)?;
            let server = idx(&row[2], i, "server")?;
            let key = idx(&row[3], i, "key")?;
            let round = uint(&row[4], i, "round")?;
            let worker = idx(&row[5], i, "worker")?;
            if tag == "as" {
                TraceEvent::AggStart {
                    server,
                    key,
                    round,
                    worker,
                }
            } else {
                TraceEvent::AggEnd {
                    server,
                    key,
                    round,
                    worker,
                }
            }
        }
        "rc" => {
            need(4)?;
            TraceEvent::RoundComplete {
                server: idx(&row[2], i, "server")?,
                key: idx(&row[3], i, "key")?,
                version: uint(&row[4], i, "version")?,
                degraded: uint(&row[5], i, "degraded")? != 0,
            }
        }
        "sc" => {
            need(3)?;
            TraceEvent::SliceConsumed {
                worker: idx(&row[2], i, "worker")?,
                key: idx(&row[3], i, "key")?,
                round: uint(&row[4], i, "round")?,
            }
        }
        "ft" => {
            need(3)?;
            TraceEvent::Fault {
                kind: decode_fault(uint(&row[2], i, "kind")?, i)?,
                machine: idx(&row[3], i, "machine")?,
                msg_id: opt_uint(&row[4], i, "msg_id")?,
            }
        }
        "sh" => {
            need(2)?;
            let hex = row[3]
                .as_str()
                .ok_or_else(|| format!("p3Events[{i}]: hash is not a string"))?;
            TraceEvent::StateHash {
                events: uint(&row[2], i, "events")?,
                hash: u64::from_str_radix(hex, 16)
                    .map_err(|_| format!("p3Events[{i}]: hash {hex:?} is not hex"))?,
            }
        }
        other => return Err(format!("p3Events[{i}]: unknown tag {other:?}")),
    };
    Ok((at, ev))
}

fn meta_from_json(v: &JsonValue) -> Result<TraceMeta, String> {
    let machines = v
        .get("machines")
        .and_then(JsonValue::as_number)
        .ok_or("p3Meta.machines missing or not a number")? as usize;
    let single_consumer = match v.get("singleConsumer") {
        Some(JsonValue::Bool(b)) => Some(*b),
        _ => None,
    };
    let window = v
        .get("window")
        .and_then(JsonValue::as_number)
        .map(|w| w as usize);
    let port_bytes_per_sec = v.get("portBytesPerSec").and_then(JsonValue::as_number);
    let strategy = v
        .get("strategy")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let model = v
        .get("model")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let collective = match v.get("collective") {
        Some(JsonValue::Bool(b)) => Some(*b),
        _ => None,
    };
    Ok(TraceMeta {
        machines,
        single_consumer,
        window,
        port_bytes_per_sec,
        strategy,
        model,
        collective,
    })
}

/// Parses a document written by [`export_trace_json`] back into the typed
/// event log and its metadata.
///
/// Fails with a description when the document is not JSON, lacks the
/// `p3Events` array (e.g. a plain Chrome trace), or contains a malformed
/// row.
pub fn import_trace_json(doc: &str) -> Result<(TraceLog, TraceMeta), String> {
    let v = json::parse(doc).map_err(|e| e.to_string())?;
    if let Some(version) = v.get("p3TraceVersion") {
        let version = version
            .as_number()
            .ok_or("p3TraceVersion is not a number")? as u64;
        if version != TRACE_FORMAT_VERSION {
            return Err(format!(
                "p3TraceVersion {version} is not the supported version {TRACE_FORMAT_VERSION} \
                 (re-export with a matching build)"
            ));
        }
    }
    let events = v
        .get("p3Events")
        .ok_or("no p3Events array: not a p3 typed trace (re-export with a current build)")?
        .as_array()
        .ok_or("p3Events is not an array")?;
    let meta = match v.get("p3Meta") {
        Some(m) => meta_from_json(m)?,
        None => TraceMeta::default(),
    };
    let mut log = TraceLog::new();
    for (i, row) in events.iter().enumerate() {
        let row = row
            .as_array()
            .ok_or_else(|| format!("p3Events[{i}] is not an array"))?;
        let (at, ev) = decode_row(row, i)?;
        log.record(at, ev);
    }
    Ok((log, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceHandle;

    fn sample_log() -> TraceLog {
        let h = TraceHandle::new();
        let mut t = 0u64;
        let mut rec = |ev: TraceEvent| {
            t += 100;
            h.record(SimTime::from_nanos(t), ev);
        };
        rec(TraceEvent::ComputeStart {
            worker: 0,
            phase: ComputePhase::Forward,
            block: 0,
        });
        rec(TraceEvent::ComputeEnd {
            worker: 0,
            phase: ComputePhase::Forward,
            block: 0,
        });
        rec(TraceEvent::StallStart {
            worker: 1,
            block: 2,
        });
        rec(TraceEvent::StallEnd {
            worker: 1,
            block: 2,
        });
        rec(TraceEvent::GradReady {
            worker: 0,
            key: 3,
            round: 1,
            priority: 7,
        });
        rec(TraceEvent::EgressEnqueue {
            machine: 0,
            role: EndpointRole::Worker,
            msg_id: 11,
            class: MsgClass::Push,
            key: 3,
            round: 1,
            priority: 7,
            queue_depth: 1,
        });
        rec(TraceEvent::WireStart {
            msg_id: 11,
            src: 0,
            dst: 1,
            bytes: 4096,
            priority: 7,
        });
        rec(TraceEvent::WireEnd {
            msg_id: 11,
            src: 0,
            dst: 1,
            bytes: 4096,
            bottleneck: Some(4),
        });
        rec(TraceEvent::AggStart {
            server: 1,
            key: 3,
            round: 1,
            worker: 0,
        });
        rec(TraceEvent::AggEnd {
            server: 1,
            key: 3,
            round: 1,
            worker: 0,
        });
        rec(TraceEvent::RoundComplete {
            server: 1,
            key: 3,
            version: 2,
            degraded: true,
        });
        rec(TraceEvent::SliceConsumed {
            worker: 0,
            key: 3,
            round: 2,
        });
        rec(TraceEvent::IterationEnd { worker: 0, iter: 2 });
        rec(TraceEvent::Fault {
            kind: FaultKind::Retransmit,
            machine: 0,
            msg_id: Some(11),
        });
        rec(TraceEvent::Fault {
            kind: FaultKind::Crash,
            machine: 1,
            msg_id: None,
        });
        rec(TraceEvent::Fault {
            kind: FaultKind::CollectiveAbort,
            machine: 1,
            msg_id: None,
        });
        rec(TraceEvent::StateHash {
            events: 1000,
            hash: 0xdead_beef_cafe_f00d,
        });
        h.drain()
    }

    #[test]
    fn round_trips_every_variant() {
        let log = sample_log();
        let meta = TraceMeta {
            machines: 2,
            single_consumer: Some(true),
            window: Some(2),
            port_bytes_per_sec: Some(3.125e8),
            strategy: Some("P3".into()),
            model: Some("resnet50".into()),
            collective: Some(false),
        };
        let doc = export_trace_json(&log, &meta);
        let (back, meta2) = import_trace_json(&doc).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(back.len(), log.len());
        for (a, b) in log.events().iter().zip(back.events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stays_a_valid_chrome_trace() {
        let log = sample_log();
        let meta = TraceMeta {
            machines: 2,
            ..TraceMeta::default()
        };
        let doc = export_trace_json(&log, &meta);
        crate::validate_chrome_trace(&doc).expect("Perfetto view still schema-valid");
    }

    #[test]
    fn rejects_plain_chrome_traces_with_guidance() {
        let log = sample_log();
        let doc = chrome_trace_json(&log, 2);
        let err = import_trace_json(&doc).unwrap_err();
        assert!(err.contains("p3Events"), "{err}");
    }

    #[test]
    fn rejects_malformed_rows() {
        let doc = r#"{"p3Events": [[1, "ws", 1]]}"#;
        assert!(import_trace_json(doc).is_err());
        let doc = r#"{"p3Events": [[1, "zz", 1, 2, 3]]}"#;
        assert!(import_trace_json(doc).unwrap_err().contains("unknown tag"));
        let doc = r#"{"p3Events": [[-5, "it", 0, 1]]}"#;
        assert!(import_trace_json(doc).is_err());
    }

    #[test]
    fn meta_defaults_when_absent() {
        let doc = r#"{"p3Events": []}"#;
        let (log, meta) = import_trace_json(doc).unwrap();
        assert!(log.is_empty());
        assert_eq!(meta, TraceMeta::default());
    }
}
