//! A minimal JSON parser used to validate exported traces.
//!
//! The workspace is offline and dependency-free by policy, so trace-schema
//! checks (CI golden-file test, unit tests) cannot lean on `serde_json`.
//! This is a small recursive-descent parser for the JSON the exporters
//! emit; it accepts standard JSON (RFC 8259) minus `\u` surrogate-pair
//! pedantics (escapes are decoded, lone surrogates are replaced).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value if it is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.get(key)
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy the whole run up to the next delimiter in one
                    // slice. The stop bytes are ASCII, so they always land
                    // on a char boundary of the (already valid) input.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input came from a &str");
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in JSON output (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way the exporters do: integral values without a
/// fractional part, everything else via shortest-roundtrip `{}`.
pub fn format_number(x: f64) -> String {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -3.5e2 ").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            parse(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"traceEvents":[{"ph":"X","ts":1.5,"args":{"k":[1,2]}},{}],"ok":true}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_number(), Some(1.5));
        assert_eq!(v.get("ok").unwrap(), &JsonValue::Bool(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}x").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JsonValue::String(nasty.to_string()));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(3.25), "3.25");
        assert_eq!(format_number(-0.0), "0");
    }
}
