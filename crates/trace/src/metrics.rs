//! A metrics registry derived from (or fed alongside) a trace.
//!
//! Counters, gauges and histograms keyed by name, built on
//! [`p3_des::Summary`] / [`p3_des::Histogram`]. The registry can be
//! populated directly by instrumented code, or — the usual path — derived
//! wholesale from a recorded [`TraceLog`] by [`MetricsRegistry::from_trace`],
//! which computes the per-stage latency breakdown of the
//! push→aggregate→pull pipeline the way Parameter Hub's analysis does.

use crate::event::{MsgClass, TraceEvent};
use crate::json::{escape, format_number};
use crate::sink::TraceLog;
use p3_des::{Histogram, SimTime, Summary};
use std::collections::BTreeMap;

/// Bucket layout used for all stage-latency histograms: 1 µs to ~1000 s in
/// decades, in seconds.
fn stage_histogram() -> Histogram {
    Histogram::exponential(1e-6, 10.0, 9)
}

/// Named counters, gauges (sampled values) and histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Summary>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn inc_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one observation of the named gauge.
    pub fn observe_gauge(&mut self, name: &str, value: f64) {
        self.gauges
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records one sample into the named stage histogram.
    pub fn observe_histogram(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(stage_histogram)
            .record(value);
    }

    /// The named counter's value, or 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's summary, if any observation was recorded.
    pub fn gauge(&self, name: &str) -> Option<&Summary> {
        self.gauges.get(name)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Records the busy fraction of one fabric link as the gauge
    /// `link_busy_<name>`. Busy fractions come from the network's per-link
    /// occupancy accounting (topology runs), not from the trace itself —
    /// the trace only carries each flow's bottleneck link — so the owner
    /// of the run feeds them in alongside [`MetricsRegistry::from_trace`].
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite.
    pub fn record_link_busy(&mut self, link: &str, fraction: f64) {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "busy fraction {fraction} outside [0, 1]"
        );
        self.observe_gauge(&format!("link_busy_{link}"), fraction);
    }

    /// Derives the full registry from a recorded trace.
    ///
    /// Computed series:
    /// - counters `enqueue_push` / `enqueue_pull` / `enqueue_notify` /
    ///   `enqueue_pullreq`, `wire_messages`, `wire_bytes_tx_m<M>` /
    ///   `wire_bytes_rx_m<M>` (per-machine port traffic),
    ///   `wire_bottleneck_l<L>` (deliveries whose rate was bound by link
    ///   `L` — topology runs only), `fault_<kind>`, `rounds_completed`,
    ///   `rounds_degraded`, `iterations`, `slices_consumed`
    /// - gauges `egress_depth_p<P>` (queue depth at each enqueue, per
    ///   priority class) and `inflight_msgs` (sampled at every wire
    ///   start/end)
    /// - stage histograms in seconds: `stage_queue_wait`
    ///   (egress-enqueue → wire start), `stage_wire` (wire start → end),
    ///   `stage_agg_wait` (push delivered → aggregation start), `stage_agg`
    ///   (aggregation), `stage_pull` (update enqueued → delivered to
    ///   worker), `stall` (worker stall intervals), `compute_fwd` /
    ///   `compute_bwd` (compute segments)
    pub fn from_trace(log: &TraceLog) -> Self {
        let mut m = MetricsRegistry::new();
        // Correlation state, all keyed by ids already in the events.
        let mut enqueue_at: BTreeMap<u64, (SimTime, MsgClass)> = BTreeMap::new();
        let mut wire_start_at: BTreeMap<u64, SimTime> = BTreeMap::new();
        let mut push_delivered_at: BTreeMap<(usize, usize, u64), SimTime> = BTreeMap::new();
        let mut push_identity: BTreeMap<u64, (usize, usize, u64)> = BTreeMap::new();
        let mut agg_start_at: BTreeMap<(usize, usize, u64, usize), SimTime> = BTreeMap::new();
        let mut compute_start: BTreeMap<(usize, usize, u8), SimTime> = BTreeMap::new();
        let mut stall_start: BTreeMap<(usize, usize), SimTime> = BTreeMap::new();
        let mut in_flight: i64 = 0;

        for te in log.events() {
            let at = te.at;
            match te.event {
                TraceEvent::EgressEnqueue {
                    msg_id,
                    class,
                    priority,
                    queue_depth,
                    machine,
                    key,
                    round,
                    ..
                } => {
                    m.inc_counter(&format!("enqueue_{}", class.label()), 1);
                    m.observe_gauge(&format!("egress_depth_p{priority}"), queue_depth as f64);
                    enqueue_at.insert(msg_id, (at, class));
                    if class == MsgClass::Push {
                        push_identity.insert(msg_id, (machine, key, round));
                    }
                }
                TraceEvent::WireStart { msg_id, .. } => {
                    in_flight += 1;
                    m.observe_gauge("inflight_msgs", in_flight as f64);
                    if let Some(&(t0, _)) = enqueue_at.get(&msg_id) {
                        m.observe_histogram("stage_queue_wait", (at - t0).as_secs_f64());
                    }
                    wire_start_at.insert(msg_id, at);
                }
                TraceEvent::WireEnd {
                    msg_id,
                    src,
                    dst,
                    bytes,
                    bottleneck,
                } => {
                    in_flight -= 1;
                    m.observe_gauge("inflight_msgs", in_flight.max(0) as f64);
                    m.inc_counter("wire_messages", 1);
                    m.inc_counter(&format!("wire_bytes_tx_m{src}"), bytes);
                    m.inc_counter(&format!("wire_bytes_rx_m{dst}"), bytes);
                    if let Some(l) = bottleneck {
                        m.inc_counter(&format!("wire_bottleneck_l{l}"), 1);
                    }
                    if let Some(t0) = wire_start_at.remove(&msg_id) {
                        m.observe_histogram("stage_wire", (at - t0).as_secs_f64());
                    }
                    match enqueue_at.get(&msg_id) {
                        Some(&(_, MsgClass::Push)) => {
                            if let Some(&id) = push_identity.get(&msg_id) {
                                push_delivered_at.insert(id, at);
                            }
                        }
                        Some(&(t0, MsgClass::Response)) => {
                            m.observe_histogram("stage_pull", (at - t0).as_secs_f64());
                        }
                        _ => {}
                    }
                }
                TraceEvent::AggStart {
                    server,
                    key,
                    round,
                    worker,
                } => {
                    if let Some(&t0) = push_delivered_at.get(&(worker, key, round)) {
                        m.observe_histogram(
                            "stage_agg_wait",
                            at.saturating_duration_since(t0).as_secs_f64(),
                        );
                    }
                    agg_start_at.insert((server, key, round, worker), at);
                }
                TraceEvent::AggEnd {
                    server,
                    key,
                    round,
                    worker,
                } => {
                    if let Some(t0) = agg_start_at.remove(&(server, key, round, worker)) {
                        m.observe_histogram("stage_agg", (at - t0).as_secs_f64());
                    }
                }
                TraceEvent::RoundComplete { degraded, .. } => {
                    m.inc_counter("rounds_completed", 1);
                    if degraded {
                        m.inc_counter("rounds_degraded", 1);
                    }
                }
                TraceEvent::ComputeStart {
                    worker,
                    phase,
                    block,
                } => {
                    compute_start.insert((worker, block, phase as u8), at);
                }
                TraceEvent::ComputeEnd {
                    worker,
                    phase,
                    block,
                } => {
                    if let Some(t0) = compute_start.remove(&(worker, block, phase as u8)) {
                        let name = match phase {
                            crate::event::ComputePhase::Forward => "compute_fwd",
                            crate::event::ComputePhase::Backward => "compute_bwd",
                        };
                        m.observe_histogram(name, (at - t0).as_secs_f64());
                    }
                }
                TraceEvent::StallStart { worker, block } => {
                    stall_start.insert((worker, block), at);
                }
                TraceEvent::StallEnd { worker, block } => {
                    if let Some(t0) = stall_start.remove(&(worker, block)) {
                        m.observe_histogram("stall", (at - t0).as_secs_f64());
                    }
                }
                TraceEvent::IterationEnd { .. } => m.inc_counter("iterations", 1),
                TraceEvent::SliceConsumed { .. } => m.inc_counter("slices_consumed", 1),
                TraceEvent::Fault { kind, .. } => {
                    m.inc_counter(&format!("fault_{}", kind.label()), 1);
                }
                TraceEvent::GradReady { .. } | TraceEvent::StateHash { .. } => {}
            }
        }
        m
    }

    /// Serializes the registry as a JSON document:
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {v}", escape(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, s) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}}}",
                escape(name),
                s.count(),
                format_number(s.mean()),
                format_number(if s.count() == 0 { 0.0 } else { s.min() }),
                format_number(if s.count() == 0 { 0.0 } else { s.max() }),
            ));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let bounds: Vec<String> = h.bounds().iter().map(|&b| format_number(b)).collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            let s = h.summary();
            out.push_str(&format!(
                "\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"overflow\": {}, \"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}}}",
                escape(name),
                bounds.join(", "),
                counts.join(", "),
                h.overflow(),
                h.count(),
                format_number(s.mean()),
                format_number(if s.count() == 0 { 0.0 } else { s.min() }),
                format_number(if s.count() == 0 { 0.0 } else { s.max() }),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EndpointRole, FaultKind, TraceEvent};
    use crate::sink::TraceSink;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn stage_latencies_from_a_minimal_chain() {
        let mut log = TraceLog::new();
        log.record(
            t(0),
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: EndpointRole::Worker,
                msg_id: 7,
                class: MsgClass::Push,
                key: 2,
                round: 0,
                priority: 5,
                queue_depth: 3,
            },
        );
        log.record(
            t(10),
            TraceEvent::WireStart {
                msg_id: 7,
                src: 0,
                dst: 1,
                bytes: 100,
                priority: 5,
            },
        );
        log.record(
            t(30),
            TraceEvent::WireEnd {
                msg_id: 7,
                src: 0,
                dst: 1,
                bytes: 100,
                bottleneck: Some(5),
            },
        );
        log.record(
            t(40),
            TraceEvent::AggStart {
                server: 1,
                key: 2,
                round: 0,
                worker: 0,
            },
        );
        log.record(
            t(55),
            TraceEvent::AggEnd {
                server: 1,
                key: 2,
                round: 0,
                worker: 0,
            },
        );
        log.record(
            t(55),
            TraceEvent::RoundComplete {
                server: 1,
                key: 2,
                version: 1,
                degraded: false,
            },
        );
        log.record(
            t(55),
            TraceEvent::Fault {
                kind: FaultKind::Loss,
                machine: 0,
                msg_id: None,
            },
        );

        let m = MetricsRegistry::from_trace(&log);
        assert_eq!(m.counter("enqueue_push"), 1);
        assert_eq!(m.counter("wire_messages"), 1);
        assert_eq!(m.counter("wire_bytes_tx_m0"), 100);
        assert_eq!(m.counter("wire_bytes_rx_m1"), 100);
        assert_eq!(m.counter("wire_bottleneck_l5"), 1);
        assert_eq!(m.counter("rounds_completed"), 1);
        assert_eq!(m.counter("fault_loss"), 1);
        let depth = m.gauge("egress_depth_p5").unwrap();
        assert_eq!(depth.max(), 3.0);
        let qw = m.histogram("stage_queue_wait").unwrap();
        assert!((qw.summary().mean() - 10e-6).abs() < 1e-12);
        let wire = m.histogram("stage_wire").unwrap();
        assert!((wire.summary().mean() - 20e-6).abs() < 1e-12);
        let aw = m.histogram("stage_agg_wait").unwrap();
        assert!((aw.summary().mean() - 10e-6).abs() < 1e-12);
        let agg = m.histogram("stage_agg").unwrap();
        assert!((agg.summary().mean() - 15e-6).abs() < 1e-12);
    }

    #[test]
    fn to_json_is_parseable() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("a", 2);
        m.observe_gauge("g", 1.5);
        m.observe_histogram("h", 0.01);
        let doc = m.to_json();
        let v = crate::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("counters").unwrap().get("a").unwrap().as_number(),
            Some(2.0)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("g")
                .unwrap()
                .get("mean")
                .unwrap()
                .as_number(),
            Some(1.5)
        );
        assert!(
            v.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("bounds")
                .unwrap()
                .as_array()
                .unwrap()
                .len()
                >= 4
        );
    }

    #[test]
    fn link_busy_gauge_round_trips() {
        let mut m = MetricsRegistry::new();
        m.record_link_busy("rack0.up", 0.75);
        m.record_link_busy("rack0.up", 0.25);
        let g = m.gauge("link_busy_rack0.up").expect("gauge recorded");
        assert_eq!(g.count(), 2);
        assert!((g.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn link_busy_gauge_rejects_bad_fraction() {
        MetricsRegistry::new().record_link_busy("x", 1.5);
    }

    #[test]
    fn empty_registry_serializes_cleanly() {
        let doc = MetricsRegistry::new().to_json();
        let v = crate::json::parse(&doc).expect("valid JSON");
        assert!(v.get("counters").unwrap().as_object().unwrap().is_empty());
    }
}
