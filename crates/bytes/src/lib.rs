//! Offline drop-in subset of the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `bytes` API that the `p3-pserver` wire
//! codec and the benches actually use: the [`Buf`]/[`BufMut`] cursor
//! traits (big-endian accessors, as in the real crate), a growable
//! [`BytesMut`], and an immutable [`Bytes`] view with cheap slicing.
//!
//! Semantics match the upstream crate for the covered surface; anything
//! outside it is intentionally absent.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use core::ops::{Deref, DerefMut, Index, IndexMut, RangeBounds};

/// Read cursor over a contiguous byte region.
///
/// All multi-byte accessors are big-endian, matching the defaults of the
/// real `bytes` crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds [`Buf::remaining`].
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write cursor appending to a byte container.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of slice");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer, written through [`BufMut`] and frozen into
/// [`Bytes`] for reading.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;

    fn index(&self, i: usize) -> &u8 {
        &self.data[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.data[i]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable byte region with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// Bytes not yet consumed.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range of the unconsumed bytes as a new `Bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use core::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds"
        );
        Bytes {
            data: self.data[self.start + lo..self.start + hi].to_vec(),
            start: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of Bytes");
        self.start += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u16(0x5033);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f32(1.5);
        assert_eq!(b.len(), 2 + 1 + 4 + 8 + 4);
        assert_eq!(b[0], 0x50); // big-endian, like the real crate
        let mut r = b.freeze();
        assert_eq!(r.get_u16(), 0x5033);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_reads_like_slices() {
        let mut data: &[u8] = &[0, 1, 2, 3];
        assert_eq!(data.get_u16(), 1);
        assert_eq!(data.remaining(), 2);
        assert_eq!(data.get_u16(), 0x0203);
    }

    #[test]
    fn bytes_slice_is_a_window() {
        let mut b = BytesMut::new();
        b.put_slice(&[10, 11, 12, 13, 14]);
        let f = b.freeze();
        let mut w = f.slice(1..4);
        assert_eq!(w.len(), 3);
        assert_eq!(w.get_u8(), 11);
        assert_eq!(w.chunk(), &[12, 13]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut short: &[u8] = &[1];
        short.get_u32();
    }
}
