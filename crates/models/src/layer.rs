//! Structural description of a DNN as the synchronization layer sees it.
//!
//! Two granularities matter in the paper:
//!
//! * **Compute blocks** — the operations the framework executes (a
//!   convolution, a dense layer, an LSTM cell). Forward propagation runs the
//!   blocks in order; backward propagation runs them in reverse. A block's
//!   gradients all materialize together when its backward op finishes.
//! * **Parameter arrays** — the key-value units the parameter server stores
//!   (a weight tensor, a bias vector, a batch-norm gamma). MXNet's KVStore
//!   keys map 1:1 to arrays, which is why Figure 5's x-axis ("layer index")
//!   counts ~160 entries for ResNet-50 and ~40 for VGG-19.
//!
//! P3's *parameter slicing* further splits arrays into slices; that lives in
//! `p3-core`, not here.

use core::fmt;

/// Bytes per parameter: gradients and parameters travel as IEEE-754 f32.
pub const BYTES_PER_PARAM: u64 = 4;

/// What kind of operation a compute block performs. Used for reporting and
/// for sanity checks (e.g. "the heaviest VGG array is a dense layer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected / dense layer.
    Dense,
    /// Batch normalization.
    BatchNorm,
    /// Embedding lookup table.
    Embedding,
    /// Recurrent cell (LSTM/GRU), covering all its gates.
    Recurrent,
    /// Attention projection.
    Attention,
    /// Pooling, activation, dropout, softmax… anything without parameters.
    Stateless,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Conv => "conv",
            BlockKind::Dense => "dense",
            BlockKind::BatchNorm => "batchnorm",
            BlockKind::Embedding => "embedding",
            BlockKind::Recurrent => "recurrent",
            BlockKind::Attention => "attention",
            BlockKind::Stateless => "stateless",
        };
        f.write_str(s)
    }
}

/// One parameter-server key: a single tensor of parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamArray {
    /// Human-readable name, e.g. `"stage3.block2.conv1.weight"`.
    pub name: String,
    /// Number of scalar parameters in the tensor.
    pub params: u64,
}

impl ParamArray {
    /// Creates an array; `params` must be positive (parameterless tensors
    /// are not keys).
    ///
    /// # Panics
    ///
    /// Panics if `params == 0`.
    pub fn new(name: impl Into<String>, params: u64) -> Self {
        let name = name.into();
        assert!(params > 0, "parameter array {name} has zero parameters");
        ParamArray { name, params }
    }

    /// Wire size of the gradient (or updated parameter) message payload.
    pub fn bytes(&self) -> u64 {
        self.params * BYTES_PER_PARAM
    }
}

/// One framework operation together with the parameter arrays it owns.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeBlock {
    /// Human-readable name, e.g. `"conv1"`.
    pub name: String,
    /// Operation category.
    pub kind: BlockKind,
    /// Forward-pass floating-point operations for a **single sample**.
    pub fwd_flops: u64,
    /// Parameter arrays owned by this block, in declaration order.
    pub arrays: Vec<ParamArray>,
}

impl ComputeBlock {
    /// Creates a block.
    pub fn new(
        name: impl Into<String>,
        kind: BlockKind,
        fwd_flops: u64,
        arrays: Vec<ParamArray>,
    ) -> Self {
        ComputeBlock {
            name: name.into(),
            kind,
            fwd_flops,
            arrays,
        }
    }

    /// Total parameters across this block's arrays.
    pub fn params(&self) -> u64 {
        self.arrays.iter().map(|a| a.params).sum()
    }
}

/// What a training sample is called, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleUnit {
    /// Image classification models.
    Images,
    /// Machine translation models.
    Sentences,
}

impl fmt::Display for SampleUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleUnit::Images => f.write_str("images"),
            SampleUnit::Sentences => f.write_str("sentences"),
        }
    }
}

/// A complete model: an ordered sequence of compute blocks.
///
/// # Examples
///
/// ```
/// use p3_models::ModelSpec;
///
/// let m = ModelSpec::vgg19();
/// assert_eq!(m.name(), "VGG-19");
/// // VGG-19 has ~143.67 M parameters, 71.5% of them in one dense array.
/// assert!((m.total_params() as f64 - 143.67e6).abs() < 0.2e6);
/// let heaviest = m.heaviest_array().unwrap();
/// assert!(heaviest.params as f64 / m.total_params() as f64 > 0.70);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    name: String,
    unit: SampleUnit,
    blocks: Vec<ComputeBlock>,
    /// Calibrated compute-bound throughput of ONE worker (samples/sec) on
    /// the paper's Nvidia P4000 testbed, used by the compute-time model.
    reference_throughput: f64,
    /// Default per-worker minibatch size used in the paper's experiments.
    default_batch: usize,
    /// Std-dev of per-iteration compute jitter (variable sequence lengths
    /// make Sockeye iterations uneven; CNNs are steady).
    iteration_jitter: f64,
}

impl ModelSpec {
    /// Assembles a model from parts. Prefer the named constructors
    /// ([`ModelSpec::resnet50`] etc.) unless you are defining a custom
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty, if no block owns any parameters, or if
    /// `reference_throughput` is not positive.
    pub fn from_blocks(
        name: impl Into<String>,
        unit: SampleUnit,
        blocks: Vec<ComputeBlock>,
        reference_throughput: f64,
        default_batch: usize,
        iteration_jitter: f64,
    ) -> Self {
        let name = name.into();
        assert!(!blocks.is_empty(), "model {name} has no blocks");
        assert!(
            blocks.iter().any(|b| !b.arrays.is_empty()),
            "model {name} has no parameters"
        );
        assert!(
            reference_throughput > 0.0 && reference_throughput.is_finite(),
            "model {name} has invalid reference throughput"
        );
        assert!(default_batch > 0, "model {name} has zero batch size");
        assert!(
            (0.0..1.0).contains(&iteration_jitter),
            "iteration jitter must be a fraction in [0, 1)"
        );
        ModelSpec {
            name,
            unit,
            blocks,
            reference_throughput,
            default_batch,
            iteration_jitter,
        }
    }

    /// Model name as reported in the paper.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit for throughput reporting (`images` or `sentences`).
    pub fn unit(&self) -> SampleUnit {
        self.unit
    }

    /// Compute blocks in forward order.
    pub fn blocks(&self) -> &[ComputeBlock] {
        &self.blocks
    }

    /// Calibrated single-worker compute-bound throughput (samples/sec).
    pub fn reference_throughput(&self) -> f64 {
        self.reference_throughput
    }

    /// Per-worker minibatch size used in the paper's experiments.
    pub fn default_batch(&self) -> usize {
        self.default_batch
    }

    /// Relative std-dev of per-iteration compute time.
    pub fn iteration_jitter(&self) -> f64 {
        self.iteration_jitter
    }

    /// Total scalar parameters.
    pub fn total_params(&self) -> u64 {
        self.blocks.iter().map(|b| b.params()).sum()
    }

    /// Total gradient bytes synchronized per iteration.
    pub fn total_bytes(&self) -> u64 {
        self.total_params() * BYTES_PER_PARAM
    }

    /// Total single-sample forward FLOPs.
    pub fn total_fwd_flops(&self) -> u64 {
        self.blocks.iter().map(|b| b.fwd_flops).sum()
    }

    /// All parameter arrays in forward order — the series plotted in
    /// Figure 5 (one point per KVStore key).
    pub fn param_arrays(&self) -> impl Iterator<Item = &ParamArray> {
        self.blocks.iter().flat_map(|b| b.arrays.iter())
    }

    /// Number of parameter-server keys.
    pub fn num_arrays(&self) -> usize {
        self.param_arrays().count()
    }

    /// The single largest parameter array, or `None` for a parameterless
    /// model (which `from_blocks` forbids, so in practice always `Some`).
    pub fn heaviest_array(&self) -> Option<&ParamArray> {
        self.param_arrays().max_by_key(|a| a.params)
    }

    /// Index (in forward order) of the block owning the heaviest array.
    /// Ties resolve to the earliest block, matching the paper's reading of
    /// Figure 5 ("the heaviest layer in Sockeye is the initial layer").
    pub fn heaviest_block_index(&self) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            let Some(m) = b.arrays.iter().map(|a| a.params).max() else {
                continue;
            };
            if best.is_none_or(|(_, bm)| m > bm) {
                best = Some((i, m));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_array_bytes() {
        let a = ParamArray::new("w", 1000);
        assert_eq!(a.bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "zero parameters")]
    fn empty_array_rejected() {
        ParamArray::new("w", 0);
    }

    #[test]
    fn block_params_sum() {
        let b = ComputeBlock::new(
            "fc",
            BlockKind::Dense,
            100,
            vec![ParamArray::new("w", 10), ParamArray::new("b", 2)],
        );
        assert_eq!(b.params(), 12);
    }

    #[test]
    fn custom_model_accounting() {
        let m = ModelSpec::from_blocks(
            "toy",
            SampleUnit::Images,
            vec![
                ComputeBlock::new("a", BlockKind::Conv, 50, vec![ParamArray::new("w", 5)]),
                ComputeBlock::new("act", BlockKind::Stateless, 1, vec![]),
                ComputeBlock::new("b", BlockKind::Dense, 100, vec![ParamArray::new("w", 7)]),
            ],
            10.0,
            4,
            0.0,
        );
        assert_eq!(m.total_params(), 12);
        assert_eq!(m.total_bytes(), 48);
        assert_eq!(m.total_fwd_flops(), 151);
        assert_eq!(m.num_arrays(), 2);
        assert_eq!(m.heaviest_array().unwrap().params, 7);
        assert_eq!(m.heaviest_block_index(), Some(2));
    }

    #[test]
    #[should_panic(expected = "no blocks")]
    fn empty_model_rejected() {
        ModelSpec::from_blocks("x", SampleUnit::Images, vec![], 1.0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "no parameters")]
    fn parameterless_model_rejected() {
        ModelSpec::from_blocks(
            "x",
            SampleUnit::Images,
            vec![ComputeBlock::new("relu", BlockKind::Stateless, 1, vec![])],
            1.0,
            1,
            0.0,
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(BlockKind::Conv.to_string(), "conv");
        assert_eq!(BlockKind::Embedding.to_string(), "embedding");
        assert_eq!(SampleUnit::Sentences.to_string(), "sentences");
    }
}
