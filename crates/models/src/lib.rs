//! # p3-models — DNN model zoo and compute-time model
//!
//! Layer-accurate structural descriptions of every model the P3 paper
//! evaluates — ResNet-50, InceptionV3, VGG-19, Sockeye, ResNet-110 (plus
//! AlexNet) — at two granularities: **compute blocks** (the ops the
//! framework executes) and **parameter arrays** (the key-value units the
//! parameter server stores, one point per array in the paper's Figure 5).
//!
//! A [`ComputeProfile`] turns a [`ModelSpec`] into per-block forward /
//! backward durations, calibrated to the paper's testbed throughput but
//! with the time *distribution* derived from per-block FLOPs.
//!
//! # Examples
//!
//! ```
//! use p3_models::ModelSpec;
//!
//! let vgg = ModelSpec::vgg19();
//! // Figure 5(b): one dense array holds 71.5% of VGG-19's parameters.
//! let heaviest = vgg.heaviest_array().unwrap();
//! assert!(heaviest.params as f64 / vgg.total_params() as f64 > 0.7);
//!
//! // Sockeye is the opposite: its heaviest array is the *first* block.
//! let sockeye = ModelSpec::sockeye();
//! assert_eq!(sockeye.heaviest_block_index(), Some(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod compute;
mod layer;
mod zoo;

pub use builder::ConvStack;
pub use compute::{BlockTiming, ComputeProfile};
pub use layer::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit, BYTES_PER_PARAM};
