//! The model zoo: layer-accurate reconstructions of every DNN the paper
//! evaluates (plus AlexNet as an extra classic-skew example).
//!
//! Parameter counts match the reference implementations (torchvision /
//! Sockeye) to within a fraction of a percent; each constructor's unit tests
//! pin the totals. `reference_throughput` values are calibrated to the
//! compute-bound plateaus of Figure 7 (per-worker samples/sec on the
//! paper's Nvidia P4000 testbed) — see DESIGN.md §6.

use crate::builder::ConvStack;
use crate::layer::{BlockKind, ComputeBlock, ModelSpec, ParamArray, SampleUnit};

impl ModelSpec {
    /// ResNet-50 (He et al. 2015) at 224×224: ~25.56 M parameters spread
    /// over ~160 arrays, none huge — the paper's example of a model whose
    /// layer sizes are already fine-grained (slicing alone does not help,
    /// Fig. 7a).
    pub fn resnet50() -> ModelSpec {
        let mut s = ConvStack::new(3, 224, 224);
        s.conv("conv1", 64, 7, 2, 3, false);
        s.batch_norm("bn1");
        s.max_pool(3, 2);

        // (blocks, mid channels, out channels, first stride)
        let stages: [(usize, u64, u64, u64); 4] = [
            (3, 64, 256, 1),
            (4, 128, 512, 2),
            (6, 256, 1024, 2),
            (3, 512, 2048, 2),
        ];
        for (si, &(blocks, mid, out, first_stride)) in stages.iter().enumerate() {
            for b in 0..blocks {
                let stride = if b == 0 { first_stride } else { 1 };
                let p = format!("layer{}.{b}", si + 1);
                // Downsample shortcut sees the block's input shape; build it
                // from a clone before the main path mutates the shape.
                let needs_down = b == 0;
                let mut short = s.clone();
                s.conv(&format!("{p}.conv1"), mid, 1, 1, 0, false);
                s.batch_norm(&format!("{p}.bn1"));
                s.conv(&format!("{p}.conv2"), mid, 3, stride, 1, false);
                s.batch_norm(&format!("{p}.bn2"));
                s.conv(&format!("{p}.conv3"), out, 1, 1, 0, false);
                s.batch_norm(&format!("{p}.bn3"));
                if needs_down {
                    short.conv(&format!("{p}.downsample.conv"), out, 1, stride, 0, false);
                    short.batch_norm(&format!("{p}.downsample.bn"));
                    // Keep only the two shortcut blocks from the clone.
                    let new: Vec<ComputeBlock> =
                        short.finish().into_iter().rev().take(2).rev().collect();
                    s.append(new);
                }
            }
        }
        s.global_avg_pool();
        s.flatten();
        s.dense("fc", 1000, true);

        ModelSpec::from_blocks("ResNet-50", SampleUnit::Images, s.finish(), 26.5, 32, 0.0)
    }

    /// VGG-19 (Simonyan & Zisserman 2014) at 224×224: 143.67 M parameters;
    /// the fc6 weight alone is 102.76 M (71.5% of the model), the paper's
    /// poster child for parameter slicing (Fig. 5b, Fig. 7c).
    pub fn vgg19() -> ModelSpec {
        let cfg: &[&[u64]] = &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256, 256],
            &[512, 512, 512, 512],
            &[512, 512, 512, 512],
        ];
        let mut s = ConvStack::new(3, 224, 224);
        let mut idx = 1;
        for group in cfg {
            for &out in *group {
                s.conv(&format!("conv{idx}"), out, 3, 1, 1, true);
                idx += 1;
            }
            s.max_pool(2, 2);
        }
        s.flatten();
        s.dense("fc6", 4096, true);
        s.dense("fc7", 4096, true);
        s.dense("fc8", 1000, true);
        ModelSpec::from_blocks("VGG-19", SampleUnit::Images, s.finish(), 15.0, 32, 0.0)
    }

    /// InceptionV3 (Szegedy et al. 2015) at 299×299 without auxiliary
    /// logits: ~23.8 M parameters over ~190 arrays, moderately sized like
    /// ResNet-50 (Fig. 7b).
    pub fn inception_v3() -> ModelSpec {
        /// conv + batch-norm pair, Inception's `BasicConv2d`.
        #[allow(clippy::too_many_arguments)]
        fn basic(
            s: &mut ConvStack,
            name: &str,
            out_c: u64,
            kh: u64,
            kw: u64,
            stride: u64,
            ph: u64,
            pw: u64,
        ) {
            s.conv2d(
                &format!("{name}.conv"),
                out_c,
                kh,
                kw,
                stride,
                ph,
                pw,
                false,
            );
            s.batch_norm(&format!("{name}.bn"));
        }
        /// Concatenation of parallel branches, each built by a closure on a
        /// fresh clone of the junction; output channels are the sum of the
        /// branch outputs.
        #[allow(clippy::type_complexity)]
        fn module(s: &mut ConvStack, branches: Vec<Box<dyn FnOnce(&mut ConvStack)>>) {
            let junction = s.clone();
            let base_len = junction.len();
            let mut out_c = 0;
            let (mut oh, mut ow) = (0, 0);
            let mut gathered: Vec<ComputeBlock> = Vec::new();
            for f in branches {
                let mut b = junction.clone();
                f(&mut b);
                let (c, h, w) = b.shape();
                out_c += c;
                oh = h;
                ow = w;
                gathered.extend(b.finish().into_iter().skip(base_len));
            }
            s.append(gathered);
            s.set_channels(out_c);
            // All branches agree on the output spatial dims; adopt them by
            // replaying a no-op reduction.
            s.force_shape(oh, ow);
        }

        let mut s = ConvStack::new(3, 299, 299);
        basic(&mut s, "stem.conv1", 32, 3, 3, 2, 0, 0);
        basic(&mut s, "stem.conv2", 32, 3, 3, 1, 0, 0);
        basic(&mut s, "stem.conv3", 64, 3, 3, 1, 1, 1);
        s.max_pool(3, 2);
        basic(&mut s, "stem.conv4", 80, 1, 1, 1, 0, 0);
        basic(&mut s, "stem.conv5", 192, 3, 3, 1, 0, 0);
        s.max_pool(3, 2);

        // Inception-A ×3 (pool features 32, 64, 64).
        for (i, pf) in [32u64, 64, 64].iter().enumerate() {
            let n = format!("mixed{}", 5 + i);
            let pf = *pf;
            let n1 = n.clone();
            let n2 = n.clone();
            let n3 = n.clone();
            let n4 = n.clone();
            module(
                &mut s,
                vec![
                    Box::new(move |b| basic(b, &format!("{n1}.b1x1"), 64, 1, 1, 1, 0, 0)),
                    Box::new(move |b| {
                        basic(b, &format!("{n2}.b5x5_1"), 48, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n2}.b5x5_2"), 64, 5, 5, 1, 2, 2);
                    }),
                    Box::new(move |b| {
                        basic(b, &format!("{n3}.b3x3dbl_1"), 64, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n3}.b3x3dbl_2"), 96, 3, 3, 1, 1, 1);
                        basic(b, &format!("{n3}.b3x3dbl_3"), 96, 3, 3, 1, 1, 1);
                    }),
                    Box::new(move |b| basic(b, &format!("{n4}.pool_proj"), pf, 1, 1, 1, 0, 0)),
                ],
            );
        }

        // Inception-B (grid reduction to 17×17).
        {
            let n = "mixed8_reduce";
            module(
                &mut s,
                vec![
                    Box::new(move |b| basic(b, &format!("{n}.b3x3"), 384, 3, 3, 2, 0, 0)),
                    Box::new(move |b| {
                        basic(b, &format!("{n}.dbl_1"), 64, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n}.dbl_2"), 96, 3, 3, 1, 1, 1);
                        basic(b, &format!("{n}.dbl_3"), 96, 3, 3, 2, 0, 0);
                    }),
                    Box::new(move |b| b.max_pool(3, 2)),
                ],
            );
        }

        // Inception-C ×4 (factorized 7×7; channels 128, 160, 160, 192).
        for (i, c7) in [128u64, 160, 160, 192].iter().enumerate() {
            let n = format!("mixed{}", 9 + i);
            let c7 = *c7;
            let n1 = n.clone();
            let n2 = n.clone();
            let n3 = n.clone();
            let n4 = n.clone();
            module(
                &mut s,
                vec![
                    Box::new(move |b| basic(b, &format!("{n1}.b1x1"), 192, 1, 1, 1, 0, 0)),
                    Box::new(move |b| {
                        basic(b, &format!("{n2}.b7x7_1"), c7, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n2}.b7x7_2"), c7, 1, 7, 1, 0, 3);
                        basic(b, &format!("{n2}.b7x7_3"), 192, 7, 1, 1, 3, 0);
                    }),
                    Box::new(move |b| {
                        basic(b, &format!("{n3}.dbl_1"), c7, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n3}.dbl_2"), c7, 7, 1, 1, 3, 0);
                        basic(b, &format!("{n3}.dbl_3"), c7, 1, 7, 1, 0, 3);
                        basic(b, &format!("{n3}.dbl_4"), c7, 7, 1, 1, 3, 0);
                        basic(b, &format!("{n3}.dbl_5"), 192, 1, 7, 1, 0, 3);
                    }),
                    Box::new(move |b| basic(b, &format!("{n4}.pool_proj"), 192, 1, 1, 1, 0, 0)),
                ],
            );
        }

        // Inception-D (grid reduction to 8×8).
        {
            let n = "mixed13_reduce";
            module(
                &mut s,
                vec![
                    Box::new(move |b| {
                        basic(b, &format!("{n}.b3x3_1"), 192, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n}.b3x3_2"), 320, 3, 3, 2, 0, 0);
                    }),
                    Box::new(move |b| {
                        basic(b, &format!("{n}.b7x7x3_1"), 192, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n}.b7x7x3_2"), 192, 1, 7, 1, 0, 3);
                        basic(b, &format!("{n}.b7x7x3_3"), 192, 7, 1, 1, 3, 0);
                        basic(b, &format!("{n}.b7x7x3_4"), 192, 3, 3, 2, 0, 0);
                    }),
                    Box::new(move |b| b.max_pool(3, 2)),
                ],
            );
        }

        // Inception-E ×2 (expanded filter banks).
        for i in 0..2 {
            let n = format!("mixed{}", 14 + i);
            let n1 = n.clone();
            let n2 = n.clone();
            let n3 = n.clone();
            let n4 = n.clone();
            module(
                &mut s,
                vec![
                    Box::new(move |b| basic(b, &format!("{n1}.b1x1"), 320, 1, 1, 1, 0, 0)),
                    Box::new(move |b| {
                        basic(b, &format!("{n2}.b3x3_1"), 384, 1, 1, 1, 0, 0);
                        // The two parallel 1×3 / 3×1 sub-branches both read
                        // the 384-channel input; model them sequentially on
                        // the clone, fixing channels in between.
                        basic(b, &format!("{n2}.b3x3_2a"), 384, 1, 3, 1, 0, 1);
                        b.set_channels(384);
                        basic(b, &format!("{n2}.b3x3_2b"), 384, 3, 1, 1, 1, 0);
                        b.set_channels(768);
                    }),
                    Box::new(move |b| {
                        basic(b, &format!("{n3}.dbl_1"), 448, 1, 1, 1, 0, 0);
                        basic(b, &format!("{n3}.dbl_2"), 384, 3, 3, 1, 1, 1);
                        basic(b, &format!("{n3}.dbl_3a"), 384, 1, 3, 1, 0, 1);
                        b.set_channels(384);
                        basic(b, &format!("{n3}.dbl_3b"), 384, 3, 1, 1, 1, 0);
                        b.set_channels(768);
                    }),
                    Box::new(move |b| basic(b, &format!("{n4}.pool_proj"), 192, 1, 1, 1, 0, 0)),
                ],
            );
        }

        s.global_avg_pool();
        s.flatten();
        s.dense("fc", 1000, true);
        ModelSpec::from_blocks("InceptionV3", SampleUnit::Images, s.finish(), 17.8, 32, 0.0)
    }

    /// Sockeye (Hieber et al. 2017): an attentional LSTM seq2seq translation
    /// model sized for IWSLT15 (512-d embeddings/hidden, 16 k vocabularies,
    /// ~25-token sequences). Unlike the CNNs, its **heaviest array is the
    /// source embedding at the very start of the forward pass** (Fig. 5c),
    /// and iteration times jitter with sequence length (§5.5).
    pub fn sockeye() -> ModelSpec {
        const V: u64 = 16_384; // vocabulary (source and target)
        const E: u64 = 512; // embedding size
        const H: u64 = 512; // hidden size
        const SEQ: u64 = 25; // average sequence length

        let mut blocks: Vec<ComputeBlock> = Vec::new();
        let lstm_flops = |input: u64| SEQ * 2 * (4 * H * (input + H));

        // Source embedding: huge parameters, negligible compute.
        blocks.push(ComputeBlock::new(
            "src_embed",
            BlockKind::Embedding,
            SEQ * 2 * E,
            vec![ParamArray::new("src_embed.weight", V * E)],
        ));

        // Encoder layer 1: bidirectional LSTM.
        for dir in ["fwd", "rev"] {
            blocks.push(ComputeBlock::new(
                format!("encoder.l1.{dir}"),
                BlockKind::Recurrent,
                lstm_flops(E),
                vec![
                    ParamArray::new(format!("encoder.l1.{dir}.w_ih"), 4 * H * E),
                    ParamArray::new(format!("encoder.l1.{dir}.w_hh"), 4 * H * H),
                    ParamArray::new(format!("encoder.l1.{dir}.b_ih"), 4 * H),
                    ParamArray::new(format!("encoder.l1.{dir}.b_hh"), 4 * H),
                ],
            ));
        }
        // Encoder layer 2: unidirectional over the concatenated states.
        blocks.push(ComputeBlock::new(
            "encoder.l2",
            BlockKind::Recurrent,
            lstm_flops(2 * H),
            vec![
                ParamArray::new("encoder.l2.w_ih", 4 * H * 2 * H),
                ParamArray::new("encoder.l2.w_hh", 4 * H * H),
                ParamArray::new("encoder.l2.b_ih", 4 * H),
                ParamArray::new("encoder.l2.b_hh", 4 * H),
            ],
        ));

        // Target embedding.
        blocks.push(ComputeBlock::new(
            "tgt_embed",
            BlockKind::Embedding,
            SEQ * 2 * E,
            vec![ParamArray::new("tgt_embed.weight", V * E)],
        ));

        // Decoder layer 1 with input feeding (embedding ⊕ context).
        blocks.push(ComputeBlock::new(
            "decoder.l1",
            BlockKind::Recurrent,
            lstm_flops(E + H),
            vec![
                ParamArray::new("decoder.l1.w_ih", 4 * H * (E + H)),
                ParamArray::new("decoder.l1.w_hh", 4 * H * H),
                ParamArray::new("decoder.l1.b_ih", 4 * H),
                ParamArray::new("decoder.l1.b_hh", 4 * H),
            ],
        ));
        // Decoder layer 2.
        blocks.push(ComputeBlock::new(
            "decoder.l2",
            BlockKind::Recurrent,
            lstm_flops(H),
            vec![
                ParamArray::new("decoder.l2.w_ih", 4 * H * H),
                ParamArray::new("decoder.l2.w_hh", 4 * H * H),
                ParamArray::new("decoder.l2.b_ih", 4 * H),
                ParamArray::new("decoder.l2.b_hh", 4 * H),
            ],
        ));

        // Luong attention: score projection + combine.
        blocks.push(ComputeBlock::new(
            "attention",
            BlockKind::Attention,
            SEQ * SEQ * 2 * H + SEQ * 2 * (2 * H) * H,
            vec![
                ParamArray::new("attention.w_score", H * H),
                ParamArray::new("attention.w_combine", 2 * H * H),
                ParamArray::new("attention.bias", H),
            ],
        ));

        // Output projection to the target vocabulary.
        blocks.push(ComputeBlock::new(
            "output",
            BlockKind::Dense,
            SEQ * 2 * H * V,
            vec![
                ParamArray::new("output.weight", H * V),
                ParamArray::new("output.bias", V),
            ],
        ));

        ModelSpec::from_blocks("Sockeye", SampleUnit::Sentences, blocks, 41.0, 64, 0.12)
    }

    /// Transformer-base (Vaswani et al. 2017), sized for translation with a
    /// 32k joint vocabulary: ~61 M parameters. Not part of the paper's
    /// evaluation (it predates widespread Transformer adoption by months),
    /// but the natural successor to Sockeye: an even heavier shared
    /// embedding at the start of the forward pass over uniform 3–4 M
    /// blocks — the extended experiments use it to test whether P3's wins
    /// transfer.
    pub fn transformer() -> ModelSpec {
        const V: u64 = 32_768;
        const D: u64 = 512;
        const FF: u64 = 2_048;
        const SEQ: u64 = 25;
        const LAYERS: usize = 6;

        let mut blocks: Vec<ComputeBlock> = Vec::new();
        // Shared source/target embedding (output projection tied).
        blocks.push(ComputeBlock::new(
            "shared_embed",
            BlockKind::Embedding,
            SEQ * 2 * D,
            vec![ParamArray::new("shared_embed.weight", V * D)],
        ));
        let attn_flops = SEQ * 2 * (4 * D * D) + SEQ * SEQ * 2 * D;
        let ff_flops = SEQ * 2 * (2 * D * FF);
        let mk_attn = |name: &str| {
            vec![
                ParamArray::new(format!("{name}.wq"), D * D),
                ParamArray::new(format!("{name}.wk"), D * D),
                ParamArray::new(format!("{name}.wv"), D * D),
                ParamArray::new(format!("{name}.wo"), D * D),
                ParamArray::new(format!("{name}.bias"), 4 * D),
            ]
        };
        let mk_ff = |name: &str| {
            vec![
                ParamArray::new(format!("{name}.w1"), D * FF),
                ParamArray::new(format!("{name}.b1"), FF),
                ParamArray::new(format!("{name}.w2"), FF * D),
                ParamArray::new(format!("{name}.b2"), D),
            ]
        };
        let mk_ln = |name: &str| {
            vec![
                ParamArray::new(format!("{name}.gamma"), D),
                ParamArray::new(format!("{name}.beta"), D),
            ]
        };
        for l in 0..LAYERS {
            let p = format!("encoder.{l}");
            blocks.push(ComputeBlock::new(
                format!("{p}.self_attn"),
                BlockKind::Attention,
                attn_flops,
                mk_attn(&format!("{p}.self_attn")),
            ));
            blocks.push(ComputeBlock::new(
                format!("{p}.ln1"),
                BlockKind::Stateless,
                SEQ * 4 * D,
                mk_ln(&format!("{p}.ln1")),
            ));
            blocks.push(ComputeBlock::new(
                format!("{p}.ff"),
                BlockKind::Dense,
                ff_flops,
                mk_ff(&format!("{p}.ff")),
            ));
            blocks.push(ComputeBlock::new(
                format!("{p}.ln2"),
                BlockKind::Stateless,
                SEQ * 4 * D,
                mk_ln(&format!("{p}.ln2")),
            ));
        }
        for l in 0..LAYERS {
            let p = format!("decoder.{l}");
            blocks.push(ComputeBlock::new(
                format!("{p}.self_attn"),
                BlockKind::Attention,
                attn_flops,
                mk_attn(&format!("{p}.self_attn")),
            ));
            blocks.push(ComputeBlock::new(
                format!("{p}.cross_attn"),
                BlockKind::Attention,
                attn_flops,
                mk_attn(&format!("{p}.cross_attn")),
            ));
            blocks.push(ComputeBlock::new(
                format!("{p}.ff"),
                BlockKind::Dense,
                ff_flops,
                mk_ff(&format!("{p}.ff")),
            ));
            blocks.push(ComputeBlock::new(
                format!("{p}.ln"),
                BlockKind::Stateless,
                SEQ * 4 * D,
                mk_ln(&format!("{p}.ln")),
            ));
        }
        // Tied output projection reuses shared_embed; the final softmax GEMM
        // still costs compute.
        blocks.push(ComputeBlock::new(
            "output_softmax",
            BlockKind::Stateless,
            SEQ * 2 * D * V,
            vec![],
        ));
        ModelSpec::from_blocks("Transformer", SampleUnit::Sentences, blocks, 48.0, 64, 0.10)
    }

    /// ResNet-110 for CIFAR-10 (He et al. 2015): 54 basic blocks of 16/32/64
    /// channels, ~1.73 M parameters. Used in the paper's accuracy
    /// comparisons against DGC and ASGD (Fig. 11, Fig. 15).
    pub fn resnet110() -> ModelSpec {
        let mut s = ConvStack::new(3, 32, 32);
        s.conv("conv1", 16, 3, 1, 1, false);
        s.batch_norm("bn1");
        let stages: [(u64, u64); 3] = [(16, 1), (32, 2), (64, 2)];
        let mut in_c = 16u64;
        for (si, &(out, first_stride)) in stages.iter().enumerate() {
            for b in 0..18 {
                let stride = if b == 0 { first_stride } else { 1 };
                let p = format!("layer{}.{b}", si + 1);
                let needs_down = stride != 1 || in_c != out;
                let mut short = s.clone();
                s.conv(&format!("{p}.conv1"), out, 3, stride, 1, false);
                s.batch_norm(&format!("{p}.bn1"));
                s.conv(&format!("{p}.conv2"), out, 3, 1, 1, false);
                s.batch_norm(&format!("{p}.bn2"));
                if needs_down {
                    short.conv(&format!("{p}.downsample.conv"), out, 1, stride, 0, false);
                    short.batch_norm(&format!("{p}.downsample.bn"));
                    let new: Vec<ComputeBlock> =
                        short.finish().into_iter().rev().take(2).rev().collect();
                    s.append(new);
                }
                in_c = out;
            }
        }
        s.global_avg_pool();
        s.flatten();
        s.dense("fc", 10, true);
        ModelSpec::from_blocks(
            "ResNet-110",
            SampleUnit::Images,
            s.finish(),
            600.0,
            128,
            0.0,
        )
    }

    /// AlexNet (torchvision variant, 61.1 M parameters): not part of the
    /// paper's evaluation, but a classic example of dense-layer skew used in
    /// the extended experiments.
    pub fn alexnet() -> ModelSpec {
        let mut s = ConvStack::new(3, 224, 224);
        s.conv("conv1", 64, 11, 4, 2, true);
        s.max_pool(3, 2);
        s.conv("conv2", 192, 5, 1, 2, true);
        s.max_pool(3, 2);
        s.conv("conv3", 384, 3, 1, 1, true);
        s.conv("conv4", 256, 3, 1, 1, true);
        s.conv("conv5", 256, 3, 1, 1, true);
        s.max_pool(3, 2);
        s.flatten();
        s.dense("fc6", 4096, true);
        s.dense("fc7", 4096, true);
        s.dense("fc8", 1000, true);
        ModelSpec::from_blocks("AlexNet", SampleUnit::Images, s.finish(), 180.0, 64, 0.0)
    }

    /// All models evaluated in the paper, in the order of Figure 7.
    pub fn paper_models() -> Vec<ModelSpec> {
        vec![
            ModelSpec::resnet50(),
            ModelSpec::inception_v3(),
            ModelSpec::vgg19(),
            ModelSpec::sockeye(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg19_exact_parameter_count() {
        // torchvision vgg19: 143,667,240 parameters.
        let m = ModelSpec::vgg19();
        assert_eq!(m.total_params(), 143_667_240);
        // fc6 weight dominates: 25088*4096 = 102,760,448 (71.5%).
        let h = m.heaviest_array().unwrap();
        assert_eq!(h.params, 102_760_448);
        assert!(h.name.contains("fc6"));
        // 16 convs + 3 fc, weight+bias each = 38 arrays.
        assert_eq!(m.num_arrays(), 38);
    }

    #[test]
    fn resnet50_parameter_count() {
        // torchvision resnet50: 25,557,032 parameters (conv+bn affine+fc).
        let m = ModelSpec::resnet50();
        assert_eq!(m.total_params(), 25_557_032);
        // ~161 arrays: 53 conv weights + 53×2 bn + fc w/b.
        assert_eq!(m.num_arrays(), 161);
        // No array above 2.36M: layer-wise granularity is already fine.
        assert_eq!(m.heaviest_array().unwrap().params, 2_359_296);
    }

    #[test]
    fn resnet50_flops_plausible() {
        // Published forward cost ≈ 4.1 GMACs = 8.2 GFLOPs at 224².
        let gf = ModelSpec::resnet50().total_fwd_flops() as f64 / 1e9;
        assert!((7.6..9.0).contains(&gf), "ResNet-50 fwd {gf} GFLOPs");
    }

    #[test]
    fn vgg19_flops_plausible() {
        // Published forward cost ≈ 19.6 GMACs = 39.2 GFLOPs at 224².
        let gf = ModelSpec::vgg19().total_fwd_flops() as f64 / 1e9;
        assert!((38.0..41.0).contains(&gf), "VGG-19 fwd {gf} GFLOPs");
    }

    #[test]
    fn inception_v3_parameter_count_in_range() {
        // torchvision inception_v3 without aux logits ≈ 23.8 M.
        let m = ModelSpec::inception_v3();
        let p = m.total_params();
        assert!(
            (23_000_000..25_000_000).contains(&p),
            "InceptionV3 params {p}"
        );
        // Like ResNet-50, arrays are modest (≤ ~2.1 M).
        assert!(m.heaviest_array().unwrap().params < 3_000_000);
    }

    #[test]
    fn inception_v3_flops_plausible() {
        // Published forward cost ≈ 5.7 GMACs = 11.4 GFLOPs at 299².
        let gf = ModelSpec::inception_v3().total_fwd_flops() as f64 / 1e9;
        assert!((10.5..12.5).contains(&gf), "InceptionV3 fwd {gf} GFLOPs");
    }

    #[test]
    fn sockeye_heaviest_layer_is_first() {
        let m = ModelSpec::sockeye();
        // The paper's key Sockeye observation: the heaviest array belongs to
        // the *initial* block of the forward pass.
        assert_eq!(m.heaviest_block_index(), Some(0));
        assert_eq!(m.heaviest_array().unwrap().params, 16_384 * 512);
        let p = m.total_params() as f64 / 1e6;
        assert!((30.0..45.0).contains(&p), "Sockeye params {p} M");
        assert_eq!(m.unit(), SampleUnit::Sentences);
        assert!(m.iteration_jitter() > 0.0);
    }

    #[test]
    fn resnet110_parameter_count() {
        // He et al. report ~1.7 M parameters for ResNet-110 on CIFAR.
        let m = ModelSpec::resnet110();
        let p = m.total_params();
        assert!((1_700_000..1_760_000).contains(&p), "ResNet-110 params {p}");
    }

    #[test]
    fn alexnet_parameter_count() {
        // torchvision alexnet: 61,100,840 parameters.
        assert_eq!(ModelSpec::alexnet().total_params(), 61_100_840);
    }

    #[test]
    fn image_models_end_with_dense_classifier() {
        for m in [
            ModelSpec::resnet50(),
            ModelSpec::vgg19(),
            ModelSpec::inception_v3(),
        ] {
            let last = m.blocks().last().unwrap();
            assert_eq!(last.kind, BlockKind::Dense, "{}", m.name());
            assert!(last.arrays[0].name.contains("fc"));
        }
    }

    #[test]
    fn cnn_heaviest_is_late_sockeye_heaviest_is_early() {
        // Image models: heaviest array in the last third of the network;
        // Sockeye: in the first block. This asymmetry drives the paper's
        // priority scheduling discussion.
        for m in [ModelSpec::vgg19(), ModelSpec::alexnet()] {
            let idx = m.heaviest_block_index().unwrap();
            assert!(
                idx * 3 > m.blocks().len(),
                "{}: heaviest at {idx}",
                m.name()
            );
        }
        assert_eq!(ModelSpec::sockeye().heaviest_block_index(), Some(0));
    }

    #[test]
    fn transformer_parameter_count() {
        let m = ModelSpec::transformer();
        let p = m.total_params() as f64 / 1e6;
        // Transformer-base without tied-proj duplication: ~55-65 M.
        assert!((50.0..70.0).contains(&p), "Transformer params {p} M");
        // Heaviest array is the shared embedding, first in forward order.
        assert_eq!(m.heaviest_block_index(), Some(0));
        assert_eq!(m.heaviest_array().unwrap().params, 32_768 * 512);
        assert_eq!(m.unit(), SampleUnit::Sentences);
    }

    #[test]
    fn paper_models_listing() {
        let names: Vec<String> = ModelSpec::paper_models()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(names, vec!["ResNet-50", "InceptionV3", "VGG-19", "Sockeye"]);
    }
}
