//! Mapping model structure to simulated compute time.
//!
//! Absolute GPU speed is a *calibration* input (see DESIGN.md §6): each
//! [`crate::ModelSpec`] carries the compute-bound per-worker throughput
//! measured on the paper's testbed, and this module distributes the implied
//! iteration time across compute blocks proportionally to their FLOPs. The
//! *shape* of the timeline — which layers are cheap, which are expensive,
//! forward vs backward ratio — comes from structure; only the total is
//! calibrated.

use crate::layer::ModelSpec;
use p3_des::SimDuration;

/// A device's speed relative to the calibration baseline (the paper's
/// Nvidia Quadro P4000), plus the forward/backward cost split.
///
/// # Examples
///
/// ```
/// use p3_models::{ComputeProfile, ModelSpec};
///
/// let model = ModelSpec::resnet50();
/// let prof = ComputeProfile::p4000();
/// let t = prof.block_times(&model, model.default_batch());
/// // Total iteration time matches the calibrated throughput.
/// let total: f64 = t.iter().map(|b| (b.fwd + b.bwd).as_secs_f64()).sum();
/// let implied = model.default_batch() as f64 / total;
/// assert!((implied - model.reference_throughput()).abs() / implied < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeProfile {
    speed: f64,
    bwd_ratio: f64,
}

/// Forward and backward duration of one compute block for a whole
/// minibatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTiming {
    /// Forward-pass duration.
    pub fwd: SimDuration,
    /// Backward-pass duration.
    pub bwd: SimDuration,
}

impl ComputeProfile {
    /// The calibration baseline: one Nvidia Quadro P4000, backward pass
    /// costing twice the forward pass (the usual 1 fwd : 2 bwd split).
    pub fn p4000() -> Self {
        ComputeProfile {
            speed: 1.0,
            bwd_ratio: 2.0,
        }
    }

    /// A device `speed`× faster than the P4000 baseline.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn scaled(speed: f64) -> Self {
        assert!(
            speed > 0.0 && speed.is_finite(),
            "invalid device speed {speed}"
        );
        ComputeProfile {
            speed,
            bwd_ratio: 2.0,
        }
    }

    /// Overrides the backward/forward cost ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    pub fn with_bwd_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio.is_finite(),
            "invalid bwd ratio {ratio}"
        );
        self.bwd_ratio = ratio;
        self
    }

    /// Relative speed vs the P4000 baseline.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Iteration wall time for a whole minibatch when compute-bound.
    pub fn iteration_time(&self, model: &ModelSpec, batch: usize) -> SimDuration {
        assert!(batch > 0, "zero batch size");
        let secs = batch as f64 / (model.reference_throughput() * self.speed);
        SimDuration::from_secs_f64(secs)
    }

    /// Per-block forward/backward durations for a minibatch, in forward
    /// order. Zero-FLOP blocks are given one FLOP so every block takes
    /// nonzero time (every real kernel launch does).
    pub fn block_times(&self, model: &ModelSpec, batch: usize) -> Vec<BlockTiming> {
        let iter = self.iteration_time(model, batch).as_secs_f64();
        let fwd_total = iter / (1.0 + self.bwd_ratio);
        let bwd_total = iter - fwd_total;
        let weights: Vec<f64> = model
            .blocks()
            .iter()
            .map(|b| (b.fwd_flops.max(1)) as f64)
            .collect();
        let sum: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| {
                let frac = w / sum;
                BlockTiming {
                    fwd: SimDuration::from_secs_f64(fwd_total * frac),
                    bwd: SimDuration::from_secs_f64(bwd_total * frac),
                }
            })
            .collect()
    }
}

impl Default for ComputeProfile {
    fn default() -> Self {
        ComputeProfile::p4000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_time_follows_calibration() {
        let m = ModelSpec::vgg19();
        let t = ComputeProfile::p4000().iteration_time(&m, 30);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9); // 30 / 15 samples/s
    }

    #[test]
    fn faster_device_scales_linearly() {
        let m = ModelSpec::resnet50();
        let base = ComputeProfile::p4000().iteration_time(&m, 32).as_secs_f64();
        let fast = ComputeProfile::scaled(2.0)
            .iteration_time(&m, 32)
            .as_secs_f64();
        assert!((base / fast - 2.0).abs() < 1e-9);
    }

    #[test]
    fn block_times_sum_to_iteration() {
        let m = ModelSpec::inception_v3();
        let prof = ComputeProfile::p4000();
        let times = prof.block_times(&m, 32);
        assert_eq!(times.len(), m.blocks().len());
        let total: f64 = times.iter().map(|b| (b.fwd + b.bwd).as_secs_f64()).sum();
        let expect = prof.iteration_time(&m, 32).as_secs_f64();
        assert!((total - expect).abs() < 1e-4 * expect);
    }

    #[test]
    fn bwd_is_twice_fwd_by_default() {
        let m = ModelSpec::resnet50();
        let times = ComputeProfile::p4000().block_times(&m, 32);
        for t in &times {
            let r = t.bwd.as_secs_f64() / t.fwd.as_secs_f64().max(1e-18);
            assert!((r - 2.0).abs() < 0.01, "ratio {r}");
        }
    }

    #[test]
    fn heavier_blocks_get_more_time() {
        let m = ModelSpec::vgg19();
        let times = ComputeProfile::p4000().block_times(&m, 32);
        // fc6 (huge GEMM) must take more time than the tiny first conv's
        // bias... i.e., find block index of fc6 and conv1.
        let fc6 = m.blocks().iter().position(|b| b.name == "fc6").unwrap();
        let conv1 = m.blocks().iter().position(|b| b.name == "conv1").unwrap();
        assert!(times[fc6].fwd > times[conv1].fwd);
    }

    #[test]
    fn every_block_takes_nonzero_time() {
        for m in ModelSpec::paper_models() {
            for t in ComputeProfile::p4000().block_times(&m, m.default_batch()) {
                assert!(!t.fwd.is_zero());
                assert!(!t.bwd.is_zero());
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid device speed")]
    fn zero_speed_rejected() {
        ComputeProfile::scaled(0.0);
    }
}
