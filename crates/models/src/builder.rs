//! A small builder for assembling convolutional networks while tracking
//! spatial dimensions, so per-block FLOP counts stay honest.

use crate::layer::{BlockKind, ComputeBlock, ParamArray};

/// Incrementally builds the block list of a CNN, tracking the activation
/// shape `(channels, height, width)` after each operation.
///
/// FLOP conventions (per sample, multiply + add = 2 FLOPs):
/// * convolution: `2 · k_h·k_w·C_in · H_out·W_out · C_out`
/// * dense: `2 · in · out`
/// * batch-norm: `4 · C·H·W`
///
/// # Examples
///
/// ```
/// use p3_models::ConvStack;
///
/// let mut net = ConvStack::new(3, 32, 32);
/// net.conv("c1", 16, 3, 1, 1, true);
/// net.max_pool(2, 2);
/// net.flatten();
/// net.dense("fc", 10, true);
/// let blocks = net.finish();
/// assert_eq!(blocks.len(), 2); // pooling is stateless and not emitted
/// ```
#[derive(Debug, Clone)]
pub struct ConvStack {
    blocks: Vec<ComputeBlock>,
    c: u64,
    h: u64,
    w: u64,
    flattened: Option<u64>,
}

impl ConvStack {
    /// Starts a network whose input activations are `c × h × w`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(c: u64, h: u64, w: u64) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0,
            "degenerate input shape {c}x{h}x{w}"
        );
        ConvStack {
            blocks: Vec::new(),
            c,
            h,
            w,
            flattened: None,
        }
    }

    /// Current activation shape `(channels, height, width)`.
    pub fn shape(&self) -> (u64, u64, u64) {
        (self.c, self.h, self.w)
    }

    /// Adds a `k×k` convolution with `out_c` output channels, given stride
    /// and symmetric padding. Emits one compute block with a weight array
    /// and, if `bias`, a bias array.
    pub fn conv(&mut self, name: &str, out_c: u64, k: u64, stride: u64, pad: u64, bias: bool) {
        self.conv2d(name, out_c, k, k, stride, pad, pad, bias);
    }

    /// Adds a possibly-asymmetric convolution (`kh×kw`, pads `(ph, pw)`),
    /// as used by InceptionV3's 1×7 / 7×1 factorized convolutions.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the current activation.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        &mut self,
        name: &str,
        out_c: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        ph: u64,
        pw: u64,
        bias: bool,
    ) {
        assert!(self.flattened.is_none(), "cannot convolve after flatten()");
        assert!(stride > 0, "zero stride in {name}");
        let h_in = self.h + 2 * ph;
        let w_in = self.w + 2 * pw;
        assert!(
            h_in >= kh && w_in >= kw,
            "kernel {kh}x{kw} does not fit {name}"
        );
        let h_out = (h_in - kh) / stride + 1;
        let w_out = (w_in - kw) / stride + 1;
        let weight = kh * kw * self.c * out_c;
        let flops = 2 * kh * kw * self.c * h_out * w_out * out_c;
        let mut arrays = vec![ParamArray::new(format!("{name}.weight"), weight)];
        if bias {
            arrays.push(ParamArray::new(format!("{name}.bias"), out_c));
        }
        self.blocks
            .push(ComputeBlock::new(name, BlockKind::Conv, flops, arrays));
        self.c = out_c;
        self.h = h_out;
        self.w = w_out;
    }

    /// Adds a batch-norm block over the current channels (two arrays:
    /// gamma and beta; running statistics are not synchronized).
    pub fn batch_norm(&mut self, name: &str) {
        assert!(
            self.flattened.is_none(),
            "cannot batch-norm after flatten()"
        );
        let flops = 4 * self.c * self.h * self.w;
        let arrays = vec![
            ParamArray::new(format!("{name}.gamma"), self.c),
            ParamArray::new(format!("{name}.beta"), self.c),
        ];
        self.blocks
            .push(ComputeBlock::new(name, BlockKind::BatchNorm, flops, arrays));
    }

    /// Applies max/avg pooling: spatial reduction only, no block emitted
    /// (pooling owns no parameters and its FLOPs are negligible).
    pub fn max_pool(&mut self, k: u64, stride: u64) {
        assert!(self.flattened.is_none(), "cannot pool after flatten()");
        assert!(stride > 0 && k > 0, "degenerate pooling");
        assert!(
            self.h >= k && self.w >= k,
            "pool {k} does not fit {}x{}",
            self.h,
            self.w
        );
        self.h = (self.h - k) / stride + 1;
        self.w = (self.w - k) / stride + 1;
    }

    /// Global average pooling: collapses spatial dims to 1×1.
    pub fn global_avg_pool(&mut self) {
        self.h = 1;
        self.w = 1;
    }

    /// Flattens activations ahead of dense layers.
    pub fn flatten(&mut self) {
        if self.flattened.is_none() {
            self.flattened = Some(self.c * self.h * self.w);
        }
    }

    /// Adds a dense (fully-connected) layer. Requires [`ConvStack::flatten`]
    /// first (or a previous dense layer).
    pub fn dense(&mut self, name: &str, out: u64, bias: bool) {
        let input = self.flattened.expect("dense() requires flatten() first");
        let weight = input * out;
        let flops = 2 * input * out;
        let mut arrays = vec![ParamArray::new(format!("{name}.weight"), weight)];
        if bias {
            arrays.push(ParamArray::new(format!("{name}.bias"), out));
        }
        self.blocks
            .push(ComputeBlock::new(name, BlockKind::Dense, flops, arrays));
        self.flattened = Some(out);
    }

    /// Number of blocks emitted so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no blocks have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Overrides the tracked spatial dimensions, for adopting the output
    /// shape of parallel branches after a concatenation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn force_shape(&mut self, h: u64, w: u64) {
        assert!(h > 0 && w > 0, "degenerate spatial shape {h}x{w}");
        self.h = h;
        self.w = w;
    }

    /// Overrides the tracked channel count, for joining parallel branches
    /// (e.g. Inception modules build each branch on a clone and then
    /// concatenate).
    pub fn set_channels(&mut self, c: u64) {
        assert!(c > 0, "degenerate channel count");
        self.c = c;
    }

    /// Appends blocks built elsewhere (e.g. a parallel branch).
    pub fn append(&mut self, blocks: Vec<ComputeBlock>) {
        self.blocks.extend(blocks);
    }

    /// Consumes the builder, returning the block list in forward order.
    pub fn finish(self) -> Vec<ComputeBlock> {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_and_flops() {
        let mut s = ConvStack::new(3, 224, 224);
        s.conv("conv1", 64, 7, 2, 3, false);
        assert_eq!(s.shape(), (64, 112, 112));
        let b = &s.finish()[0];
        assert_eq!(b.params(), 7 * 7 * 3 * 64);
        assert_eq!(b.fwd_flops, 2 * 7 * 7 * 3 * 112 * 112 * 64);
    }

    #[test]
    fn bias_adds_an_array() {
        let mut s = ConvStack::new(3, 8, 8);
        s.conv("c", 4, 3, 1, 1, true);
        let b = &s.finish()[0];
        assert_eq!(b.arrays.len(), 2);
        assert_eq!(b.arrays[1].params, 4);
    }

    #[test]
    fn pooling_halves_spatial() {
        let mut s = ConvStack::new(64, 112, 112);
        s.max_pool(3, 2);
        assert_eq!(s.shape(), (64, 55, 55));
        s.global_avg_pool();
        assert_eq!(s.shape(), (64, 1, 1));
    }

    #[test]
    fn dense_after_flatten() {
        let mut s = ConvStack::new(512, 7, 7);
        s.flatten();
        s.dense("fc6", 4096, true);
        s.dense("fc7", 4096, true);
        let blocks = s.finish();
        assert_eq!(blocks[0].arrays[0].params, 25088 * 4096);
        assert_eq!(blocks[1].arrays[0].params, 4096 * 4096);
    }

    #[test]
    #[should_panic(expected = "requires flatten")]
    fn dense_without_flatten_panics() {
        let mut s = ConvStack::new(3, 8, 8);
        s.dense("fc", 10, true);
    }

    #[test]
    fn asymmetric_conv_keeps_shape() {
        let mut s = ConvStack::new(192, 17, 17);
        s.conv2d("c17", 192, 1, 7, 1, 0, 3, false);
        assert_eq!(s.shape(), (192, 17, 17));
        s.conv2d("c71", 192, 7, 1, 1, 3, 0, false);
        assert_eq!(s.shape(), (192, 17, 17));
    }

    #[test]
    fn batch_norm_emits_two_arrays() {
        let mut s = ConvStack::new(64, 10, 10);
        s.batch_norm("bn");
        let b = &s.finish()[0];
        assert_eq!(b.arrays.len(), 2);
        assert_eq!(b.params(), 128);
        assert_eq!(b.kind, BlockKind::BatchNorm);
    }
}
