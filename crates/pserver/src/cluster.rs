//! A multi-shard parameter-server cluster: routes slice keys to their
//! shard servers per a [`ShardPlan`] and reassembles whole arrays.
//!
//! This is where P3's central correctness claim becomes checkable with
//! real numbers: because SGD aggregation is element-wise, slicing an array
//! across shards and synchronizing the slices independently produces
//! **bit-identical** parameters to synchronizing the whole array on one
//! server — regardless of slice size or placement. The test suite pins
//! exactly that invariant.

use crate::optim::OptimizerKind;
use crate::server::{KvServer, PushOutcome};
use crate::sharding::ShardPlan;
use crate::types::WorkerId;

/// A cluster of shard servers fronted by plan-based routing.
///
/// # Examples
///
/// ```
/// use p3_pserver::{KvCluster, OptimizerKind, ShardPlan, WorkerId};
///
/// let plan = ShardPlan::kvstore(&[6, 3], 2, 4, 0); // 6 splits across 2 shards
/// let mut kv = KvCluster::new(plan, 1, OptimizerKind::Sgd { lr: 1.0 });
/// kv.init_arrays(&[vec![0.0; 6], vec![0.0; 3]]);
/// kv.push_array(WorkerId(0), 0, &[1.0; 6]);
/// assert_eq!(kv.pull_array(0), vec![-1.0; 6]);
/// ```
#[derive(Debug)]
pub struct KvCluster {
    plan: ShardPlan,
    shards: Vec<KvServer>,
    /// Offset of each slice within its array, indexed by key.
    offsets: Vec<usize>,
}

impl KvCluster {
    /// Creates the cluster: one [`KvServer`] per shard in the plan.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(plan: ShardPlan, workers: usize, optimizer: OptimizerKind) -> KvCluster {
        let shards = (0..plan.servers())
            .map(|_| KvServer::new(workers, optimizer))
            .collect();
        // Slice offsets: cumulative parameter counts within each array.
        let mut offsets = vec![0usize; plan.num_keys()];
        for array in 0..plan.num_arrays() {
            let mut off = 0usize;
            for &si in plan.slices_of_array(array) {
                offsets[si] = off;
                off += plan.slices()[si].params as usize;
            }
        }
        KvCluster {
            plan,
            shards,
            offsets,
        }
    }

    /// The routing plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Registers initial values for every array (in plan array order).
    ///
    /// # Panics
    ///
    /// Panics if array count or lengths disagree with the plan.
    pub fn init_arrays(&mut self, arrays: &[Vec<f32>]) {
        assert_eq!(arrays.len(), self.plan.num_arrays(), "array count mismatch");
        for (array, values) in arrays.iter().enumerate() {
            let expect: u64 = self
                .plan
                .slices_of_array(array)
                .iter()
                .map(|&si| self.plan.slices()[si].params)
                .sum();
            assert_eq!(values.len() as u64, expect, "array {array} length mismatch");
            for &si in self.plan.slices_of_array(array) {
                let s = self.plan.slices()[si];
                let off = self.offsets[si];
                let part = values[off..off + s.params as usize].to_vec();
                self.shards[s.server.0].init(s.key, part);
            }
        }
    }

    /// Pushes one worker's gradient for a whole array; each slice routes to
    /// its shard. Returns how many slices completed their round (all
    /// complete together only with one worker; otherwise they complete when
    /// the last worker pushes).
    ///
    /// # Panics
    ///
    /// Panics if the array index or gradient length is wrong, or a worker
    /// double-pushes.
    pub fn push_array(&mut self, worker: WorkerId, array: usize, grad: &[f32]) -> usize {
        let mut updated = 0;
        for &si in self.plan.slices_of_array(array) {
            let s = self.plan.slices()[si];
            let off = self.offsets[si];
            let part = &grad[off..off + s.params as usize];
            if let PushOutcome::Updated { .. } = self.shards[s.server.0].push(worker, s.key, part) {
                updated += 1;
            }
        }
        updated
    }

    /// Reassembles an array's current values from its slices.
    ///
    /// # Panics
    ///
    /// Panics if the array index is out of range.
    pub fn pull_array(&self, array: usize) -> Vec<f32> {
        let slices = self.plan.slices_of_array(array);
        assert!(!slices.is_empty(), "unknown array {array}");
        let total: usize = slices
            .iter()
            .map(|&si| self.plan.slices()[si].params as usize)
            .sum();
        let mut out = vec![0.0; total];
        for &si in slices {
            let s = self.plan.slices()[si];
            let off = self.offsets[si];
            let (vals, _) = self.shards[s.server.0].pull(s.key);
            out[off..off + vals.len()].copy_from_slice(vals);
        }
        out
    }

    /// Minimum completed round across an array's slices (the array is
    /// usable at this version).
    pub fn array_version(&self, array: usize) -> u64 {
        self.plan
            .slices_of_array(array)
            .iter()
            .map(|&si| {
                let s = self.plan.slices()[si];
                self.shards[s.server.0].version(s.key)
            })
            .min()
            .unwrap_or(0)
    }

    /// Access to a shard server (diagnostics).
    pub fn shard(&self, server: usize) -> &KvServer {
        &self.shards[server]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharding::ShardSlice;
    use p3_des::SplitMix64;

    fn sliced_plan(array_lens: &[u64], servers: usize, max_slice: u64) -> ShardPlan {
        // Minimal reimplementation of P3 slicing for tests (p3-core depends
        // on this crate, not vice versa).
        let mut slices = Vec::new();
        let mut next = 0usize;
        for (a, &len) in array_lens.iter().enumerate() {
            let parts = len.div_ceil(max_slice);
            let base = len / parts;
            let rem = (len % parts) as usize;
            for p in 0..parts as usize {
                let sz = base + u64::from(p < rem);
                slices.push((a, p, sz, crate::types::ServerId(next)));
                next = (next + 1) % servers;
            }
        }
        ShardPlan::from_slices(slices, servers)
    }

    /// P3's central invariant: slicing does not change the math.
    #[test]
    fn sliced_training_is_bit_identical_to_unsliced() {
        let lens = [97u64, 256, 13];
        let workers = 3;
        let opt = OptimizerKind::Momentum {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        };

        let whole_plan = sliced_plan(&lens, 1, u64::MAX >> 1);
        let sliced = sliced_plan(&lens, 4, 10);

        let mut rng = SplitMix64::new(3);
        let init: Vec<Vec<f32>> = lens
            .iter()
            .map(|&l| (0..l).map(|_| rng.normal() as f32).collect())
            .collect();

        let mut a = KvCluster::new(whole_plan, workers, opt);
        let mut b = KvCluster::new(sliced, workers, opt);
        a.init_arrays(&init);
        b.init_arrays(&init);

        for _round in 0..5 {
            for w in 0..workers {
                for (array, &l) in lens.iter().enumerate() {
                    let grad: Vec<f32> = (0..l).map(|_| rng.normal() as f32).collect();
                    a.push_array(WorkerId(w), array, &grad);
                    b.push_array(WorkerId(w), array, &grad);
                }
            }
        }
        for array in 0..lens.len() {
            let va = a.pull_array(array);
            let vb = b.pull_array(array);
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(&vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "array {array} diverged");
            }
        }
    }

    #[test]
    fn versions_advance_per_array() {
        let plan = sliced_plan(&[20], 2, 8);
        let mut kv = KvCluster::new(plan, 2, OptimizerKind::Sgd { lr: 0.1 });
        kv.init_arrays(&[vec![0.0; 20]]);
        assert_eq!(kv.array_version(0), 0);
        kv.push_array(WorkerId(0), 0, &[1.0; 20]);
        assert_eq!(kv.array_version(0), 0); // waiting for worker 1
        let updated = kv.push_array(WorkerId(1), 0, &[1.0; 20]);
        assert_eq!(updated, 3); // 20 params at ≤8 → 3 slices
        assert_eq!(kv.array_version(0), 1);
    }

    #[test]
    fn pull_reassembles_slice_boundaries_correctly() {
        let plan = sliced_plan(&[10], 3, 4);
        let mut kv = KvCluster::new(plan, 1, OptimizerKind::Sgd { lr: 1.0 });
        let init: Vec<f32> = (0..10).map(|i| i as f32).collect();
        kv.init_arrays(std::slice::from_ref(&init));
        assert_eq!(kv.pull_array(0), init);
        // Gradient equal to the values themselves zeroes the array.
        kv.push_array(WorkerId(0), 0, &init);
        assert!(kv.pull_array(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn slices_land_on_their_assigned_shards() {
        let plan = sliced_plan(&[12], 4, 3);
        let kv = KvCluster::new(plan, 1, OptimizerKind::Sgd { lr: 1.0 });
        // Four slices round-robin over four shards: each shard holds one
        // key once initialized.
        let mut kv = kv;
        kv.init_arrays(&[vec![0.0; 12]]);
        for s in 0..4 {
            assert_eq!(kv.shard(s).len(), 1, "shard {s}");
        }
        let _: Vec<ShardSlice> = kv.plan().slices().to_vec();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_init_length_rejected() {
        let plan = sliced_plan(&[10], 1, 4);
        KvCluster::new(plan, 1, OptimizerKind::Sgd { lr: 1.0 }).init_arrays(&[vec![0.0; 9]]);
    }
}
