//! Wire format for worker ⇄ server messages.
//!
//! ps-lite frames every request with a small header; P3 additionally carries
//! the slice priority in the header so the receiving server can order its
//! processing queue (§4.2). The exact header layout here is our own (ps-lite
//! speaks protobuf), but the *size* is what matters to the simulation: every
//! simulated message is `HEADER_BYTES + 4·params` on the wire, which is also
//! what this codec produces.

use crate::types::{Key, WorkerId};
use bytes::{Buf, BufMut};
use core::fmt;

/// Fixed wire header size in bytes: magic(2) + type(1) + pad(1) + key(8) +
/// worker(4) + priority(4) + version(8) + payload-len(4).
pub const HEADER_BYTES: usize = 32;

/// Frame magic, for catching misframed streams early.
pub const MAGIC: u16 = 0x5033; // "P3"

/// Wire size in bytes of a gradient/parameter message carrying `params`
/// values — the quantity the cluster simulator charges to the network.
pub fn wire_bytes(params: u64) -> u64 {
    HEADER_BYTES as u64 + 4 * params
}

/// A worker ⇄ server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker sends gradients for one key.
    Push {
        /// Target key.
        key: Key,
        /// Originating worker.
        worker: WorkerId,
        /// Slice priority (P3) — `0` in baseline KVStore traffic.
        priority: u32,
        /// Gradient values.
        values: Vec<f32>,
    },
    /// Worker requests the current parameters of one key.
    PullRequest {
        /// Requested key.
        key: Key,
        /// Requesting worker.
        worker: WorkerId,
    },
    /// Server returns updated parameters.
    PullResponse {
        /// Key being answered.
        key: Key,
        /// Version of the returned parameters.
        version: u64,
        /// Slice priority (P3 broadcasts carry it too).
        priority: u32,
        /// Parameter values.
        values: Vec<f32>,
    },
    /// Server notifies workers that a key finished an update round
    /// (baseline KVStore; removed by P3 in favour of immediate broadcast).
    UpdateNotify {
        /// Updated key.
        key: Key,
        /// New version.
        version: u64,
    },
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a header.
    Truncated,
    /// Wrong magic bytes.
    BadMagic(u16),
    /// Unknown message-type tag.
    BadType(u8),
    /// Declared payload exceeds the remaining bytes.
    BadLength {
        /// Values declared in the header.
        declared: u32,
        /// Bytes actually remaining.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame shorter than header"),
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            DecodeError::BadType(t) => write!(f, "unknown message type {t}"),
            DecodeError::BadLength {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "payload of {declared} values but only {remaining} bytes remain"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Message {
    fn type_tag(&self) -> u8 {
        match self {
            Message::Push { .. } => 0,
            Message::PullRequest { .. } => 1,
            Message::PullResponse { .. } => 2,
            Message::UpdateNotify { .. } => 3,
        }
    }

    /// Total encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        let payload = match self {
            Message::Push { values, .. } | Message::PullResponse { values, .. } => values.len() * 4,
            _ => 0,
        };
        HEADER_BYTES + payload
    }

    /// Serializes the message to `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let (key, worker, priority, version, values): (u64, u32, u32, u64, &[f32]) = match self {
            Message::Push {
                key,
                worker,
                priority,
                values,
            } => (key.0, worker.0 as u32, *priority, 0, values),
            Message::PullRequest { key, worker } => (key.0, worker.0 as u32, 0, 0, &[]),
            Message::PullResponse {
                key,
                version,
                priority,
                values,
            } => (key.0, 0, *priority, *version, values),
            Message::UpdateNotify { key, version } => (key.0, 0, 0, *version, &[]),
        };
        buf.put_u16(MAGIC);
        buf.put_u8(self.type_tag());
        buf.put_u8(0);
        buf.put_u64(key);
        buf.put_u32(worker);
        buf.put_u32(priority);
        buf.put_u64(version);
        buf.put_u32(values.len() as u32);
        for v in values {
            buf.put_f32(*v);
        }
    }

    /// Deserializes one message from `buf`, consuming exactly one frame.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the buffer does not hold a complete,
    /// well-formed frame.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Message, DecodeError> {
        if buf.remaining() < HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let magic = buf.get_u16();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let tag = buf.get_u8();
        let _pad = buf.get_u8();
        let key = Key(buf.get_u64());
        let worker = WorkerId(buf.get_u32() as usize);
        let priority = buf.get_u32();
        let version = buf.get_u64();
        let len = buf.get_u32();
        let need = len as usize * 4;
        if buf.remaining() < need {
            return Err(DecodeError::BadLength {
                declared: len,
                remaining: buf.remaining(),
            });
        }
        let mut values = Vec::with_capacity(len as usize);
        for _ in 0..len {
            values.push(buf.get_f32());
        }
        match tag {
            0 => Ok(Message::Push {
                key,
                worker,
                priority,
                values,
            }),
            1 => Ok(Message::PullRequest { key, worker }),
            2 => Ok(Message::PullResponse {
                key,
                version,
                priority,
                values,
            }),
            3 => Ok(Message::UpdateNotify { key, version }),
            t => Err(DecodeError::BadType(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(msg: Message) {
        let mut buf = BytesMut::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), msg.wire_size());
        let mut r = buf.freeze();
        let back = Message::decode(&mut r).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(r.remaining(), 0, "frame fully consumed");
    }

    #[test]
    fn push_roundtrip() {
        roundtrip(Message::Push {
            key: Key(42),
            worker: WorkerId(3),
            priority: 7,
            values: vec![1.0, -2.5, 3.25],
        });
    }

    #[test]
    fn pull_request_roundtrip() {
        roundtrip(Message::PullRequest {
            key: Key(0),
            worker: WorkerId(0),
        });
    }

    #[test]
    fn pull_response_roundtrip() {
        roundtrip(Message::PullResponse {
            key: Key(u64::MAX),
            version: 99,
            priority: 2,
            values: vec![0.0; 128],
        });
    }

    #[test]
    fn notify_roundtrip() {
        roundtrip(Message::UpdateNotify {
            key: Key(5),
            version: 12,
        });
    }

    #[test]
    fn wire_bytes_matches_codec() {
        let msg = Message::Push {
            key: Key(1),
            worker: WorkerId(0),
            priority: 0,
            values: vec![0.0; 50_000],
        };
        assert_eq!(msg.wire_size() as u64, wire_bytes(50_000));
    }

    #[test]
    fn truncated_header_rejected() {
        let mut short = &[0u8; 8][..];
        assert_eq!(Message::decode(&mut short), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        Message::UpdateNotify {
            key: Key(0),
            version: 0,
        }
        .encode(&mut buf);
        buf[0] = 0xFF;
        let err = Message::decode(&mut buf.freeze()).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic(_)));
    }

    #[test]
    fn bad_type_rejected() {
        let mut buf = BytesMut::new();
        Message::UpdateNotify {
            key: Key(0),
            version: 0,
        }
        .encode(&mut buf);
        buf[2] = 200;
        let err = Message::decode(&mut buf.freeze()).unwrap_err();
        assert_eq!(err, DecodeError::BadType(200));
    }

    #[test]
    fn short_payload_rejected() {
        let mut buf = BytesMut::new();
        Message::Push {
            key: Key(0),
            worker: WorkerId(0),
            priority: 0,
            values: vec![1.0; 10],
        }
        .encode(&mut buf);
        let mut truncated = buf.freeze().slice(0..HEADER_BYTES + 8);
        let err = Message::decode(&mut truncated).unwrap_err();
        assert!(matches!(err, DecodeError::BadLength { declared: 10, .. }));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DecodeError::Truncated.to_string(),
            "frame shorter than header"
        );
        assert!(DecodeError::BadMagic(1).to_string().contains("magic"));
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn arb_message() -> impl Strategy<Value = Message> {
        let vals = prop::collection::vec(
            prop::num::f32::NORMAL | prop::num::f32::ZERO | prop::num::f32::NEGATIVE,
            0..64,
        );
        prop_oneof![
            (any::<u64>(), 0usize..64, any::<u32>(), vals.clone()).prop_map(|(k, w, p, values)| {
                Message::Push {
                    key: Key(k),
                    worker: WorkerId(w),
                    priority: p,
                    values,
                }
            }),
            (any::<u64>(), 0usize..64).prop_map(|(k, w)| Message::PullRequest {
                key: Key(k),
                worker: WorkerId(w)
            }),
            (any::<u64>(), any::<u64>(), any::<u32>(), vals).prop_map(|(k, v, p, values)| {
                Message::PullResponse {
                    key: Key(k),
                    version: v,
                    priority: p,
                    values,
                }
            }),
            (any::<u64>(), any::<u64>()).prop_map(|(k, v)| Message::UpdateNotify {
                key: Key(k),
                version: v
            }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrips(msg in arb_message()) {
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            prop_assert_eq!(buf.len(), msg.wire_size());
            let mut frozen = buf.freeze();
            let back = Message::decode(&mut frozen).unwrap();
            prop_assert_eq!(back, msg);
            prop_assert_eq!(frozen.remaining(), 0);
        }

        #[test]
        fn back_to_back_frames_decode(a in arb_message(), b in arb_message()) {
            let mut buf = BytesMut::new();
            a.encode(&mut buf);
            b.encode(&mut buf);
            let mut frozen = buf.freeze();
            prop_assert_eq!(Message::decode(&mut frozen).unwrap(), a);
            prop_assert_eq!(Message::decode(&mut frozen).unwrap(), b);
        }
    }
}
