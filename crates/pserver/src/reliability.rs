//! Timeout/retransmit policy for the push/pull protocol.
//!
//! The baseline protocol assumes a perfect transport: every message sent is
//! eventually delivered. Under injected faults (lossy links, worker
//! crashes) that assumption breaks, so the cluster simulator arms a retry
//! timer per in-flight message. [`RetryPolicy`] is the pure policy half of
//! that mechanism: given an attempt number it answers "how long do we wait
//! before retransmitting?", with exponential backoff and a bounded retry
//! budget. Keeping it here — beside the wire protocol it protects — lets
//! both the simulator and any future real transport share one policy.

use p3_des::{SimDuration, SimTime};
use p3_trace::{FaultKind, TraceEvent, TraceSink};

/// What the retry machinery does with a timed-out message.
///
/// Produced by [`RetryPolicy::decide`]; the simulator acts on the decision
/// and [`RetryDecision::record`] emits the matching fault event so the
/// trace mirrors exactly what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryDecision {
    /// Send the message again and arm a timer with this timeout.
    Retransmit {
        /// Timeout for the retransmitted attempt.
        timeout: SimDuration,
    },
    /// The retry budget is spent; abandon the message.
    GiveUp,
}

impl RetryDecision {
    /// Records this decision as a trace fault event (`Retransmit` or
    /// `GiveUp`) attributed to `machine` and `msg_id`. Pass a
    /// [`p3_trace::NullSink`] when tracing is off.
    pub fn record(&self, sink: &mut dyn TraceSink, at: SimTime, machine: usize, msg_id: u64) {
        if !sink.is_enabled() {
            return;
        }
        let kind = match self {
            RetryDecision::Retransmit { .. } => FaultKind::Retransmit,
            RetryDecision::GiveUp => FaultKind::GiveUp,
        };
        sink.record(
            at,
            TraceEvent::Fault {
                kind,
                machine,
                msg_id: Some(msg_id),
            },
        );
    }
}

/// Exponential-backoff retransmission policy for unacknowledged messages.
///
/// Attempt `n` (0-based) times out after `base_timeout * backoff^n`,
/// saturating at [`RetryPolicy::MAX_TIMEOUT`]. After `max_retries`
/// retransmissions the sender gives up on the message.
///
/// # Examples
///
/// ```
/// use p3_des::SimDuration;
/// use p3_pserver::RetryPolicy;
///
/// let p = RetryPolicy::new(SimDuration::from_millis(10), 2.0, 8);
/// assert_eq!(p.timeout_for(0), SimDuration::from_millis(10));
/// assert_eq!(p.timeout_for(2), SimDuration::from_millis(40));
/// assert!(p.exhausted(8));
/// assert!(!p.exhausted(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Timeout before the first retransmission.
    pub base_timeout: SimDuration,
    /// Multiplicative backoff factor per attempt (>= 1).
    pub backoff: f64,
    /// Retransmissions allowed before giving up on a message.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// Ceiling on any single timeout: 60 simulated seconds.
    pub const MAX_TIMEOUT: SimDuration = SimDuration::from_secs(60);

    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `base_timeout` is zero or `backoff < 1`.
    pub fn new(base_timeout: SimDuration, backoff: f64, max_retries: u32) -> Self {
        assert!(base_timeout.as_nanos() > 0, "base timeout must be positive");
        assert!(backoff >= 1.0, "backoff must be >= 1, got {backoff}");
        RetryPolicy {
            base_timeout,
            backoff,
            max_retries,
        }
    }

    /// Timeout armed for the given 0-based attempt:
    /// `base_timeout * backoff^attempt`, capped at [`Self::MAX_TIMEOUT`].
    pub fn timeout_for(&self, attempt: u32) -> SimDuration {
        let cap = Self::MAX_TIMEOUT.as_nanos() as f64;
        let scaled = self.base_timeout.as_nanos() as f64 * self.backoff.powi(attempt as i32);
        SimDuration::from_nanos(scaled.min(cap) as u64)
    }

    /// True once `attempt` exceeds the retry budget: the message is
    /// abandoned rather than retransmitted again.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_retries
    }

    /// The policy's verdict when attempt `attempt` (0-based) times out:
    /// retransmit with the next attempt's timeout, or give up once the
    /// budget is spent. Equivalent to [`RetryPolicy::exhausted`] +
    /// [`RetryPolicy::timeout_for`], packaged so callers cannot pair the
    /// wrong timeout with the wrong attempt.
    pub fn decide(&self, attempt: u32) -> RetryDecision {
        if self.exhausted(attempt) {
            RetryDecision::GiveUp
        } else {
            RetryDecision::Retransmit {
                timeout: self.timeout_for(attempt + 1),
            }
        }
    }
}

impl Default for RetryPolicy {
    /// 50 ms base, doubling per attempt, 16 retransmissions — generous
    /// enough that a message survives p=0.5 loss with probability
    /// 1 − 2⁻¹⁷.
    fn default() -> Self {
        RetryPolicy::new(SimDuration::from_millis(50), 2.0, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles() {
        let p = RetryPolicy::new(SimDuration::from_millis(5), 2.0, 4);
        assert_eq!(p.timeout_for(0).as_millis_f64(), 5.0);
        assert_eq!(p.timeout_for(1).as_millis_f64(), 10.0);
        assert_eq!(p.timeout_for(3).as_millis_f64(), 40.0);
    }

    #[test]
    fn timeout_saturates_at_cap() {
        let p = RetryPolicy::new(SimDuration::from_secs(1), 10.0, 32);
        assert_eq!(p.timeout_for(30), RetryPolicy::MAX_TIMEOUT);
    }

    #[test]
    fn unit_backoff_is_constant() {
        let p = RetryPolicy::new(SimDuration::from_millis(7), 1.0, 3);
        for a in 0..10 {
            assert_eq!(p.timeout_for(a), SimDuration::from_millis(7));
        }
    }

    #[test]
    fn exhaustion_boundary() {
        let p = RetryPolicy::new(SimDuration::from_millis(1), 2.0, 3);
        assert!(!p.exhausted(0));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert!(p.exhausted(100));
    }

    #[test]
    fn zero_retries_gives_up_immediately() {
        let p = RetryPolicy::new(SimDuration::from_millis(1), 2.0, 0);
        assert!(p.exhausted(0));
    }

    #[test]
    fn decide_matches_exhausted_and_timeout() {
        let p = RetryPolicy::new(SimDuration::from_millis(10), 2.0, 2);
        assert_eq!(
            p.decide(0),
            RetryDecision::Retransmit {
                timeout: SimDuration::from_millis(20)
            }
        );
        assert_eq!(
            p.decide(1),
            RetryDecision::Retransmit {
                timeout: SimDuration::from_millis(40)
            }
        );
        assert_eq!(p.decide(2), RetryDecision::GiveUp);
    }

    #[test]
    fn decisions_record_matching_fault_events() {
        use p3_trace::{NullSink, TraceLog};

        let p = RetryPolicy::new(SimDuration::from_millis(1), 2.0, 1);
        let mut log = TraceLog::new();
        let at = SimTime::from_millis(3);
        p.decide(0).record(&mut log, at, 2, 99);
        p.decide(1).record(&mut log, at, 2, 99);
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.events()[0].event,
            TraceEvent::Fault {
                kind: FaultKind::Retransmit,
                machine: 2,
                msg_id: Some(99)
            }
        );
        assert_eq!(
            log.events()[1].event,
            TraceEvent::Fault {
                kind: FaultKind::GiveUp,
                machine: 2,
                msg_id: Some(99)
            }
        );

        // The no-op sink swallows everything without being consulted for
        // event payloads.
        p.decide(0).record(&mut NullSink, at, 2, 99);
    }

    #[test]
    #[should_panic(expected = "backoff must be >= 1")]
    fn shrinking_backoff_rejected() {
        RetryPolicy::new(SimDuration::from_millis(1), 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "base timeout must be positive")]
    fn zero_base_rejected() {
        RetryPolicy::new(SimDuration::from_nanos(0), 2.0, 1);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Timeouts never decrease with the attempt number and never exceed
        /// the cap — the invariants that make retransmission converge
        /// instead of hammering a congested link.
        #[test]
        fn timeouts_monotone_and_bounded(
            base_ms in 1u64..5_000,
            backoff in 1.0f64..8.0,
            retries in 0u32..64,
        ) {
            let p = RetryPolicy::new(SimDuration::from_millis(base_ms), backoff, retries);
            let mut last = SimDuration::from_nanos(0);
            for a in 0..retries.saturating_add(2) {
                let t = p.timeout_for(a);
                prop_assert!(t >= last, "timeout shrank at attempt {}", a);
                prop_assert!(t <= RetryPolicy::MAX_TIMEOUT);
                last = t;
            }
        }
    }
}
