//! Server-side optimizers.
//!
//! In the parameter-server architecture the *server* applies the update
//! rule once it has aggregated gradients from every worker; these are the
//! update rules used by the paper's experiments. `p3-train` reuses them for
//! its real data-parallel training runs, so simulated and real training
//! share one implementation.

use core::fmt;

/// Configuration for a per-key optimizer instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent: `w ← w − lr·g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with (heavy-ball) momentum and optional L2 weight decay:
    /// `v ← m·v + g + wd·w`, `w ← w − lr·v`.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient `m` in `[0, 1)`.
        momentum: f32,
        /// L2 weight-decay coefficient.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    /// Instantiates optimizer state for a parameter vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if hyper-parameters are invalid (non-finite, negative lr,
    /// momentum outside `[0, 1)`).
    pub fn build(self, len: usize) -> Optimizer {
        match self {
            OptimizerKind::Sgd { lr } => {
                assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
                Optimizer {
                    kind: self,
                    velocity: Vec::new(),
                    _len: len,
                }
            }
            OptimizerKind::Momentum {
                lr,
                momentum,
                weight_decay,
            } => {
                assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
                assert!(
                    (0.0..1.0).contains(&momentum),
                    "momentum {momentum} outside [0, 1)"
                );
                assert!(
                    weight_decay.is_finite() && weight_decay >= 0.0,
                    "invalid weight decay {weight_decay}"
                );
                Optimizer {
                    kind: self,
                    velocity: vec![0.0; len],
                    _len: len,
                }
            }
        }
    }
}

/// Per-key optimizer state. Created by [`OptimizerKind::build`].
pub struct Optimizer {
    kind: OptimizerKind,
    velocity: Vec<f32>,
    _len: usize,
}

impl fmt::Debug for Optimizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Optimizer")
            .field("kind", &self.kind)
            .finish()
    }
}

impl Optimizer {
    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grad` lengths differ, or differ from the
    /// length the optimizer was built for (momentum state would silently
    /// misalign otherwise).
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "params/grad length mismatch");
        match self.kind {
            OptimizerKind::Sgd { lr } => {
                for (w, &g) in params.iter_mut().zip(grad) {
                    *w -= lr * g;
                }
            }
            OptimizerKind::Momentum {
                lr,
                momentum,
                weight_decay,
            } => {
                assert_eq!(
                    params.len(),
                    self.velocity.len(),
                    "optimizer built for a different parameter length"
                );
                for ((w, &g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
                    *v = momentum * *v + g + weight_decay * *w;
                    *w -= lr * *v;
                }
            }
        }
    }

    /// The configuration this optimizer was built from.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Changes the learning rate in place (step-decay schedules), keeping
    /// all other state (momentum velocity) intact.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate {lr}");
        self.kind = match self.kind {
            OptimizerKind::Sgd { .. } => OptimizerKind::Sgd { lr },
            OptimizerKind::Momentum {
                momentum,
                weight_decay,
                ..
            } => OptimizerKind::Momentum {
                lr,
                momentum,
                weight_decay,
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step() {
        let mut opt = OptimizerKind::Sgd { lr: 0.1 }.build(2);
        let mut w = vec![1.0, -1.0];
        opt.step(&mut w, &[10.0, -10.0]);
        assert_eq!(w, vec![0.0, 0.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = OptimizerKind::Momentum {
            lr: 1.0,
            momentum: 0.5,
            weight_decay: 0.0,
        }
        .build(1);
        let mut w = vec![0.0];
        opt.step(&mut w, &[1.0]); // v=1, w=-1
        assert_eq!(w, vec![-1.0]);
        opt.step(&mut w, &[1.0]); // v=1.5, w=-2.5
        assert_eq!(w, vec![-2.5]);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut opt = OptimizerKind::Momentum {
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 1.0,
        }
        .build(1);
        let mut w = vec![10.0];
        opt.step(&mut w, &[0.0]); // v = 10, w = 9
        assert_eq!(w, vec![9.0]);
    }

    #[test]
    fn momentum_matches_manual_unroll() {
        let (lr, m) = (0.01, 0.9);
        let mut opt = OptimizerKind::Momentum {
            lr,
            momentum: m,
            weight_decay: 0.0,
        }
        .build(1);
        let mut w = vec![0.5f32];
        let mut v = 0.0f32;
        let mut wm = 0.5f32;
        for g in [0.3f32, -0.2, 0.7, 0.1] {
            opt.step(&mut w, &[g]);
            v = m * v + g;
            wm -= lr * v;
        }
        assert!((w[0] - wm).abs() < 1e-6);
    }

    #[test]
    fn set_lr_keeps_velocity() {
        let mut opt = OptimizerKind::Momentum {
            lr: 1.0,
            momentum: 0.5,
            weight_decay: 0.0,
        }
        .build(1);
        let mut w = vec![0.0];
        opt.step(&mut w, &[1.0]); // v = 1, w = -1
        opt.set_lr(0.5);
        opt.step(&mut w, &[0.0]); // v = 0.5, w = -1.25
        assert_eq!(w, vec![-1.25]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = OptimizerKind::Sgd { lr: 0.1 }.build(1);
        opt.step(&mut [0.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn bad_momentum_rejected() {
        OptimizerKind::Momentum {
            lr: 0.1,
            momentum: 1.0,
            weight_decay: 0.0,
        }
        .build(1);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn bad_lr_rejected() {
        OptimizerKind::Sgd { lr: f32::NAN }.build(1);
    }
}
