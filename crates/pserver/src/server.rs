//! The key-value server: gradient aggregation and parameter updates.
//!
//! Semantics follow MXNet's KVServer (§4.1): for every key the server waits
//! for a gradient push from **every** worker, averages them, applies the
//! optimizer, bumps the key's version, and serves pulls of the updated
//! values. The state machine is deliberately independent of any transport —
//! the cluster simulator drives it with simulated messages, `p3-train`
//! drives it with real in-process gradients, and both get identical
//! semantics.

use crate::optim::{Optimizer, OptimizerKind};
use crate::types::{Key, WorkerId};
use std::collections::BTreeMap;

/// Result of accepting one gradient push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Gradient recorded; the server is still waiting for more workers.
    Accumulated {
        /// How many workers have pushed this key so far this round.
        received: usize,
        /// How many pushes are required in total.
        required: usize,
    },
    /// This push completed the round: parameters were updated.
    Updated {
        /// The key's new version (rounds completed).
        version: u64,
    },
}

#[derive(Debug)]
struct Entry {
    params: Vec<f32>,
    agg: Vec<f32>,
    received: Vec<bool>,
    n_received: usize,
    version: u64,
    opt: Optimizer,
}

/// One parameter-server shard holding the keys assigned to it.
///
/// # Examples
///
/// ```
/// use p3_pserver::{Key, KvServer, OptimizerKind, PushOutcome, WorkerId};
///
/// let mut s = KvServer::new(2, OptimizerKind::Sgd { lr: 0.5 });
/// s.init(Key(0), vec![1.0, 1.0]);
/// s.push(WorkerId(0), Key(0), &[1.0, 0.0]);
/// let out = s.push(WorkerId(1), Key(0), &[0.0, 1.0]);
/// assert_eq!(out, PushOutcome::Updated { version: 1 });
/// // Mean gradient is [0.5, 0.5]; lr 0.5 moves params to [0.75, 0.75].
/// assert_eq!(s.pull(Key(0)).0, &[0.75, 0.75]);
/// ```
#[derive(Debug)]
pub struct KvServer {
    entries: BTreeMap<Key, Entry>,
    num_workers: usize,
    optimizer: OptimizerKind,
}

impl KvServer {
    /// Creates a shard expecting pushes from `num_workers` workers per
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(num_workers: usize, optimizer: OptimizerKind) -> Self {
        assert!(num_workers > 0, "a cluster needs at least one worker");
        KvServer {
            entries: BTreeMap::new(),
            num_workers,
            optimizer,
        }
    }

    /// Registers a key with its initial parameter values.
    ///
    /// # Panics
    ///
    /// Panics if the key is already initialized or `initial` is empty.
    pub fn init(&mut self, key: Key, initial: Vec<f32>) {
        assert!(!initial.is_empty(), "key {key} initialized empty");
        let len = initial.len();
        let prev = self.entries.insert(
            key,
            Entry {
                params: initial,
                agg: vec![0.0; len],
                received: vec![false; self.num_workers],
                n_received: 0,
                version: 0,
                opt: self.optimizer.build(len),
            },
        );
        assert!(prev.is_none(), "key {key} initialized twice");
    }

    /// Accepts a gradient push from `worker` for `key`. When the last
    /// missing worker pushes, the mean gradient is applied by the optimizer
    /// and the key's version increments.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown, the gradient length mismatches, the
    /// worker id is out of range, or the worker pushes the same key twice
    /// in one round (a protocol violation in synchronous SGD).
    pub fn push(&mut self, worker: WorkerId, key: Key, grad: &[f32]) -> PushOutcome {
        let nw = self.num_workers;
        let e = self
            .entries
            .get_mut(&key)
            .unwrap_or_else(|| panic!("unknown key {key}"));
        assert_eq!(
            e.params.len(),
            grad.len(),
            "gradient length mismatch for {key}"
        );
        assert!(worker.0 < nw, "worker {worker} out of range");
        assert!(
            !e.received[worker.0],
            "{worker} pushed {key} twice in one round"
        );
        e.received[worker.0] = true;
        e.n_received += 1;
        for (a, &g) in e.agg.iter_mut().zip(grad) {
            *a += g;
        }
        if e.n_received == nw {
            // Average, update, reset the round.
            let inv = 1.0 / nw as f32;
            for a in &mut e.agg {
                *a *= inv;
            }
            let agg = std::mem::take(&mut e.agg);
            e.opt.step(&mut e.params, &agg);
            e.agg = agg;
            e.agg.iter_mut().for_each(|a| *a = 0.0);
            e.received.iter_mut().for_each(|r| *r = false);
            e.n_received = 0;
            e.version += 1;
            PushOutcome::Updated { version: e.version }
        } else {
            PushOutcome::Accumulated {
                received: e.n_received,
                required: nw,
            }
        }
    }

    /// Current parameter values and version of a key.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown.
    pub fn pull(&self, key: Key) -> (&[f32], u64) {
        let e = self
            .entries
            .get(&key)
            .unwrap_or_else(|| panic!("unknown key {key}"));
        (&e.params, e.version)
    }

    /// Version (completed update rounds) of a key.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown.
    pub fn version(&self, key: Key) -> u64 {
        self.entries[&key].version
    }

    /// Number of keys hosted by this shard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the shard hosts no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Workers expected per aggregation round.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Iterates over hosted keys in arbitrary order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.entries.keys().copied()
    }

    /// Applies a new learning rate to every hosted key (step-decay
    /// schedules), preserving momentum state.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_learning_rate(&mut self, lr: f32) {
        for e in self.entries.values_mut() {
            e.opt.set_lr(lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(workers: usize) -> KvServer {
        KvServer::new(workers, OptimizerKind::Sgd { lr: 1.0 })
    }

    #[test]
    fn aggregation_is_mean_of_workers() {
        let mut s = server(4);
        s.init(Key(0), vec![0.0]);
        for w in 0..3 {
            let out = s.push(WorkerId(w), Key(0), &[4.0]);
            assert_eq!(
                out,
                PushOutcome::Accumulated {
                    received: w + 1,
                    required: 4
                }
            );
        }
        assert_eq!(
            s.push(WorkerId(3), Key(0), &[4.0]),
            PushOutcome::Updated { version: 1 }
        );
        assert_eq!(s.pull(Key(0)).0, &[-4.0]); // w -= lr * mean(4) = -4
    }

    #[test]
    fn rounds_are_independent() {
        let mut s = server(2);
        s.init(Key(0), vec![0.0]);
        s.push(WorkerId(0), Key(0), &[2.0]);
        s.push(WorkerId(1), Key(0), &[0.0]);
        assert_eq!(s.version(Key(0)), 1);
        // Second round: aggregation buffer was reset.
        s.push(WorkerId(0), Key(0), &[0.0]);
        s.push(WorkerId(1), Key(0), &[2.0]);
        let (p, v) = s.pull(Key(0));
        assert_eq!(v, 2);
        assert_eq!(p, &[-2.0]); // −1 each round
    }

    #[test]
    fn keys_update_independently() {
        let mut s = server(2);
        s.init(Key(0), vec![0.0]);
        s.init(Key(1), vec![0.0]);
        s.push(WorkerId(0), Key(0), &[1.0]);
        s.push(WorkerId(0), Key(1), &[1.0]);
        s.push(WorkerId(1), Key(1), &[1.0]);
        assert_eq!(s.version(Key(0)), 0);
        assert_eq!(s.version(Key(1)), 1);
    }

    #[test]
    #[should_panic(expected = "twice in one round")]
    fn double_push_rejected() {
        let mut s = server(2);
        s.init(Key(0), vec![0.0]);
        s.push(WorkerId(0), Key(0), &[1.0]);
        s.push(WorkerId(0), Key(0), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "unknown key")]
    fn push_unknown_key_rejected() {
        server(1).push(WorkerId(0), Key(9), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "initialized twice")]
    fn double_init_rejected() {
        let mut s = server(1);
        s.init(Key(0), vec![0.0]);
        s.init(Key(0), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        let mut s = server(1);
        s.init(Key(0), vec![0.0, 0.0]);
        s.push(WorkerId(0), Key(0), &[1.0]);
    }

    #[test]
    fn single_worker_updates_immediately() {
        let mut s = server(1);
        s.init(Key(0), vec![1.0]);
        assert_eq!(
            s.push(WorkerId(0), Key(0), &[1.0]),
            PushOutcome::Updated { version: 1 }
        );
        assert_eq!(s.pull(Key(0)).0, &[0.0]);
    }

    #[test]
    fn learning_rate_decay_applies_to_all_keys() {
        let mut s = KvServer::new(1, OptimizerKind::Sgd { lr: 1.0 });
        s.init(Key(0), vec![0.0]);
        s.init(Key(1), vec![0.0]);
        s.push(WorkerId(0), Key(0), &[1.0]);
        s.set_learning_rate(0.5);
        s.push(WorkerId(0), Key(0), &[1.0]);
        s.push(WorkerId(0), Key(1), &[1.0]);
        assert_eq!(s.pull(Key(0)).0, &[-1.5]);
        assert_eq!(s.pull(Key(1)).0, &[-0.5]);
    }

    #[test]
    fn momentum_server_matches_sequential_sgd() {
        // A PS with one worker and momentum must equal local momentum SGD.
        let kind = OptimizerKind::Momentum {
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let mut s = KvServer::new(1, kind);
        s.init(Key(0), vec![1.0]);
        let mut local = kind.build(1);
        let mut w = vec![1.0f32];
        for g in [0.5f32, -0.25, 0.1] {
            s.push(WorkerId(0), Key(0), &[g]);
            local.step(&mut w, &[g]);
        }
        assert!((s.pull(Key(0)).0[0] - w[0]).abs() < 1e-7);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Synchronous PS training with W workers equals sequential SGD on
        /// the mean gradient — the invariant that makes P3 "not affect model
        /// convergence".
        #[test]
        fn ps_equals_sequential_on_mean(
            grads in prop::collection::vec(
                prop::collection::vec(-1.0f32..1.0, 4), 1..20),
            workers in 1usize..6,
        ) {
            let mut s = KvServer::new(workers, OptimizerKind::Sgd { lr: 0.05 });
            s.init(Key(0), vec![0.5; 4]);
            let mut w_ref = vec![0.5f32; 4];
            for g in &grads {
                // Each worker perturbs the base gradient deterministically.
                let mut mean = vec![0.0f32; 4];
                for wk in 0..workers {
                    let gw: Vec<f32> = g.iter().map(|x| x * (1.0 + wk as f32)).collect();
                    for (m, v) in mean.iter_mut().zip(&gw) {
                        *m += v / workers as f32;
                    }
                    s.push(WorkerId(wk), Key(0), &gw);
                }
                for (w, m) in w_ref.iter_mut().zip(&mean) {
                    *w -= 0.05 * m;
                }
            }
            let (p, v) = s.pull(Key(0));
            prop_assert_eq!(v, grads.len() as u64);
            for (a, b) in p.iter().zip(&w_ref) {
                prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }
    }
}
