//! Placement of parameter arrays onto server shards.
//!
//! Reproduces MXNet KVStore's load-balancing heuristic (§4.1 of the paper):
//! arrays smaller than a threshold (10⁶ parameters by default) are assigned
//! whole to a pseudo-randomly chosen server; larger arrays are split into
//! equal parts, one per server. P3 builds *different* plans (fixed-size
//! slices, round-robin placement) via [`ShardPlan::from_slices`]; the plan
//! representation is shared so every synchronization strategy drives the
//! same server machinery.

use crate::types::{Key, ServerId};
use p3_des::SplitMix64;

/// Default KVStore split threshold: arrays above 10⁶ parameters are split
/// across all servers.
pub const KVSTORE_SPLIT_THRESHOLD: u64 = 1_000_000;

/// One independently synchronized unit of one parameter array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// Store key under which this slice is pushed and pulled.
    pub key: Key,
    /// Index of the parameter array this slice belongs to (forward order).
    pub array: usize,
    /// Slice index within the array (0 for unsplit arrays).
    pub part: usize,
    /// Number of parameters in this slice.
    pub params: u64,
    /// Server shard responsible for this slice.
    pub server: ServerId,
}

/// A complete placement of a model's parameter arrays onto servers.
///
/// # Examples
///
/// ```
/// use p3_pserver::ShardPlan;
///
/// // Two small arrays and one 3M-param array on 4 servers.
/// let plan = ShardPlan::kvstore(&[1000, 2000, 3_000_000], 4, 1_000_000, 42);
/// // The large array was split into one part per server.
/// assert_eq!(plan.slices_of_array(2).len(), 4);
/// assert_eq!(plan.num_keys(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    slices: Vec<ShardSlice>,
    by_array: Vec<Vec<usize>>,
    servers: usize,
}

impl ShardPlan {
    /// Builds the MXNet KVStore placement: arrays with fewer than
    /// `split_threshold` parameters go whole to a seeded-random server,
    /// larger arrays are split equally across all servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`, any array is empty, or `split_threshold`
    /// is zero.
    pub fn kvstore(
        array_params: &[u64],
        servers: usize,
        split_threshold: u64,
        seed: u64,
    ) -> ShardPlan {
        assert!(servers > 0, "at least one server required");
        assert!(split_threshold > 0, "zero split threshold");
        let mut rng = SplitMix64::new(seed);
        let mut slices = Vec::new();
        for (array, &params) in array_params.iter().enumerate() {
            assert!(params > 0, "array {array} has zero parameters");
            if params < split_threshold {
                slices.push((
                    array,
                    0,
                    params,
                    ServerId(rng.next_below(servers as u64) as usize),
                ));
            } else {
                // Split as evenly as possible; the first `rem` parts carry
                // one extra parameter.
                let base = params / servers as u64;
                let rem = (params % servers as u64) as usize;
                for part in 0..servers {
                    let p = base + u64::from(part < rem);
                    if p > 0 {
                        slices.push((array, part, p, ServerId(part)));
                    }
                }
            }
        }
        Self::assemble(slices, servers)
    }

    /// Builds a plan from explicit slices `(array, part, params, server)`.
    /// This is how P3's slicing-and-round-robin placement constructs plans.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`, a slice is empty, a slice references a
    /// server out of range, or parts of an array are not contiguous from 0.
    pub fn from_slices(slices: Vec<(usize, usize, u64, ServerId)>, servers: usize) -> ShardPlan {
        assert!(servers > 0, "at least one server required");
        for &(array, _, params, server) in &slices {
            assert!(params > 0, "array {array} has an empty slice");
            assert!(
                server.0 < servers,
                "slice of array {array} on unknown server {server}"
            );
        }
        Self::assemble(slices, servers)
    }

    fn assemble(raw: Vec<(usize, usize, u64, ServerId)>, servers: usize) -> ShardPlan {
        let arrays = raw.iter().map(|&(a, ..)| a + 1).max().unwrap_or(0);
        let mut by_array: Vec<Vec<usize>> = vec![Vec::new(); arrays];
        let mut slices = Vec::with_capacity(raw.len());
        for (i, (array, part, params, server)) in raw.into_iter().enumerate() {
            slices.push(ShardSlice {
                key: Key(i as u64),
                array,
                part,
                params,
                server,
            });
            by_array[array].push(i);
        }
        for (array, parts) in by_array.iter().enumerate() {
            for (expect, &si) in parts.iter().enumerate() {
                assert_eq!(
                    slices[si].part, expect,
                    "array {array} has non-contiguous parts"
                );
            }
        }
        ShardPlan {
            slices,
            by_array,
            servers,
        }
    }

    /// All slices, in key order (key `k` is `slices()[k]`).
    pub fn slices(&self) -> &[ShardSlice] {
        &self.slices
    }

    /// The slice for a key.
    ///
    /// # Panics
    ///
    /// Panics if the key is not in this plan.
    pub fn slice(&self, key: Key) -> &ShardSlice {
        &self.slices[key.0 as usize]
    }

    /// Indices (into [`ShardPlan::slices`]) of the slices of one array, in
    /// part order.
    pub fn slices_of_array(&self, array: usize) -> &[usize] {
        self.by_array.get(array).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of arrays covered by the plan.
    pub fn num_arrays(&self) -> usize {
        self.by_array.len()
    }

    /// Total number of store keys.
    pub fn num_keys(&self) -> usize {
        self.slices.len()
    }

    /// Number of server shards.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Reassigns every slice's home server through `f` — how
    /// topology-aware placement policies (packed PS racks, rack-local
    /// aggregation) remap a plan built by the flat heuristics.
    ///
    /// # Panics
    ///
    /// Panics if `f` maps any server out of range.
    pub fn map_servers(&mut self, f: impl Fn(usize) -> usize) {
        for s in &mut self.slices {
            let moved = f(s.server.0);
            assert!(
                moved < self.servers,
                "placement moved a slice to unknown server {moved}"
            );
            s.server = ServerId(moved);
        }
    }

    /// Total parameters assigned to each server (load-balance diagnostics).
    pub fn server_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.servers];
        for s in &self.slices {
            loads[s.server.0] += s.params;
        }
        loads
    }

    /// Total parameters across all slices.
    pub fn total_params(&self) -> u64 {
        self.slices.iter().map(|s| s.params).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arrays_stay_whole() {
        let plan = ShardPlan::kvstore(&[100, 200, 999_999], 4, KVSTORE_SPLIT_THRESHOLD, 1);
        assert_eq!(plan.num_keys(), 3);
        for s in plan.slices() {
            assert_eq!(s.part, 0);
        }
    }

    #[test]
    fn large_arrays_split_across_all_servers() {
        let plan = ShardPlan::kvstore(&[5_000_000], 4, KVSTORE_SPLIT_THRESHOLD, 1);
        assert_eq!(plan.num_keys(), 4);
        let total: u64 = plan.slices().iter().map(|s| s.params).sum();
        assert_eq!(total, 5_000_000);
        // Parts land on distinct servers 0..4.
        let servers: Vec<usize> = plan.slices().iter().map(|s| s.server.0).collect();
        assert_eq!(servers, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uneven_split_distributes_remainder() {
        let plan = ShardPlan::kvstore(&[1_000_003], 4, KVSTORE_SPLIT_THRESHOLD, 1);
        let parts: Vec<u64> = plan.slices().iter().map(|s| s.params).collect();
        assert_eq!(parts, vec![250_001, 250_001, 250_001, 250_000]);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = ShardPlan::kvstore(&[10, 20, 30], 8, 1_000_000, 7);
        let b = ShardPlan::kvstore(&[10, 20, 30], 8, 1_000_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn random_assignment_spreads_load() {
        // 1000 equal small arrays over 4 servers: no server should hold
        // more than 40% of the weight.
        let arrays = vec![1000u64; 1000];
        let plan = ShardPlan::kvstore(&arrays, 4, 1_000_000, 3);
        for load in plan.server_loads() {
            assert!(load < 400_000, "unbalanced load {load}");
        }
    }

    #[test]
    fn from_slices_round_robin() {
        let slices = vec![
            (0, 0, 50_000, ServerId(0)),
            (0, 1, 50_000, ServerId(1)),
            (0, 2, 20_000, ServerId(2)),
            (1, 0, 10_000, ServerId(0)),
        ];
        let plan = ShardPlan::from_slices(slices, 3);
        assert_eq!(plan.num_arrays(), 2);
        assert_eq!(plan.slices_of_array(0).len(), 3);
        assert_eq!(plan.slice(Key(3)).array, 1);
        assert_eq!(plan.total_params(), 130_000);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn gaps_in_parts_rejected() {
        ShardPlan::from_slices(vec![(0, 1, 10, ServerId(0))], 1);
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn out_of_range_server_rejected() {
        ShardPlan::from_slices(vec![(0, 0, 10, ServerId(5))], 2);
    }

    #[test]
    fn map_servers_remaps_every_slice() {
        let mut plan = ShardPlan::kvstore(&[5_000_000], 4, KVSTORE_SPLIT_THRESHOLD, 1);
        plan.map_servers(|s| s % 2);
        let servers: Vec<usize> = plan.slices().iter().map(|s| s.server.0).collect();
        assert_eq!(servers, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn map_servers_rejects_out_of_range() {
        let mut plan = ShardPlan::kvstore(&[10], 2, 100, 0);
        plan.map_servers(|_| 9);
    }

    #[test]
    fn slices_of_unknown_array_is_empty() {
        let plan = ShardPlan::kvstore(&[10], 1, 100, 0);
        assert!(plan.slices_of_array(9).is_empty());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every parameter of every array appears in exactly one slice.
        #[test]
        fn plans_conserve_parameters(
            arrays in prop::collection::vec(1u64..4_000_000, 1..40),
            servers in 1usize..9,
            seed in 0u64..1000,
        ) {
            let plan = ShardPlan::kvstore(&arrays, servers, KVSTORE_SPLIT_THRESHOLD, seed);
            prop_assert_eq!(plan.total_params(), arrays.iter().sum::<u64>());
            // Per-array conservation too.
            for (a, &p) in arrays.iter().enumerate() {
                let got: u64 = plan.slices_of_array(a).iter()
                    .map(|&i| plan.slices()[i].params).sum();
                prop_assert_eq!(got, p);
            }
        }

        /// Split parts are balanced within one parameter.
        #[test]
        fn split_parts_balanced(params in 1_000_000u64..50_000_000, servers in 1usize..17) {
            let plan = ShardPlan::kvstore(&[params], servers, KVSTORE_SPLIT_THRESHOLD, 0);
            let sizes: Vec<u64> = plan.slices().iter().map(|s| s.params).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
