//! # p3-pserver — parameter-server substrate
//!
//! A from-scratch reimplementation of the pieces of MXNet KVStore / ps-lite
//! that the paper builds on (§4.1):
//!
//! * [`ShardPlan`] — placement of parameter arrays onto server shards,
//!   including KVStore's split-large/randomize-small heuristic;
//! * [`KvServer`] — the aggregation state machine: wait for all workers'
//!   pushes, average, apply the optimizer, bump the version, serve pulls;
//! * [`Message`] — the wire format (header + f32 payload) that gives every
//!   simulated transfer its size;
//! * [`OptimizerKind`] — server-side SGD / momentum update rules, shared
//!   with the real training harness in `p3-train`.
//!
//! The P3 strategy itself (slicing, priorities) lives in `p3-core` and
//! drives these same components.
//!
//! # Examples
//!
//! ```
//! use p3_pserver::{Key, KvServer, OptimizerKind, WorkerId};
//!
//! let mut server = KvServer::new(2, OptimizerKind::Sgd { lr: 0.1 });
//! server.init(Key(0), vec![0.0; 4]);
//! server.push(WorkerId(0), Key(0), &[1.0, 1.0, 1.0, 1.0]);
//! server.push(WorkerId(1), Key(0), &[3.0, 3.0, 3.0, 3.0]);
//! // mean grad = 2.0, lr = 0.1 → params = −0.2
//! assert_eq!(server.pull(Key(0)).0[0], -0.2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod optim;
mod protocol;
mod reliability;
mod server;
mod sharding;
mod types;

pub use cluster::KvCluster;
pub use optim::{Optimizer, OptimizerKind};
pub use protocol::{wire_bytes, DecodeError, Message, HEADER_BYTES, MAGIC};
pub use reliability::{RetryDecision, RetryPolicy};
pub use server::{KvServer, PushOutcome};
pub use sharding::{ShardPlan, ShardSlice, KVSTORE_SPLIT_THRESHOLD};
pub use types::{Key, ServerId, WorkerId};
