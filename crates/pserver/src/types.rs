//! Identifier newtypes shared across the parameter-server stack.

use core::fmt;

/// Index of a worker process (one per machine in the paper's deployments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Index of a parameter-server process. The common deployment colocates
/// server `i` with worker `i` on machine `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub usize);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A key in the key-value store: one independently synchronized unit (a
/// whole parameter array in baseline KVStore, or one slice of an array
/// under P3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(WorkerId(2).to_string(), "w2");
        assert_eq!(ServerId(0).to_string(), "s0");
        assert_eq!(Key(17).to_string(), "k17");
    }

    #[test]
    fn ordering_and_hash_derive() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Key(1));
        s.insert(Key(1));
        assert_eq!(s.len(), 1);
        assert!(Key(1) < Key(2));
    }
}
