//! Synchronization strategies: the baseline, P3 itself, the framework
//! variants the paper measures against (TensorFlow-style, Poseidon WFBP),
//! and ablations of P3's design choices.
//!
//! A strategy is pure configuration — five orthogonal knobs — executed by
//! the cluster simulator in `p3-cluster`. Keeping strategies declarative
//! makes the ablations in the paper (slicing without priority, priority
//! without immediate broadcast, …) one-liners, and guarantees every
//! strategy drives the identical server/network machinery.

use crate::slicing::{p3_plan, DEFAULT_SLICE_PARAMS};
use p3_des::SplitMix64;
use p3_models::ModelSpec;
use p3_pserver::{ShardPlan, KVSTORE_SPLIT_THRESHOLD};

/// How parameter arrays map to store keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slicing {
    /// MXNet KVStore: split arrays above a threshold into one part per
    /// server, place small arrays randomly (§4.1).
    KvstoreLayerwise {
        /// Parameter-count threshold above which an array is split.
        split_threshold: u64,
    },
    /// Strictly one key per array, never split (Poseidon's layer-granular
    /// wait-free backprop).
    LayerwiseNoSplit,
    /// P3: bounded-size slices placed round-robin (§4.2).
    MaxParams(
        /// Maximum parameters per slice.
        u64,
    ),
}

/// How a worker's outbound traffic is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Egress {
    /// One FIFO connection per server; connections transmit concurrently
    /// (baseline frameworks over TCP).
    PerServerFifo,
    /// P3Worker: a single consumer thread drains one priority queue with
    /// blocking sends — exactly one message in flight per worker.
    SingleConsumer,
}

/// How a server orders gradient processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerProcessing {
    /// Arrival order.
    Fifo,
    /// P3Server: a priority queue keyed by the header priority.
    Priority,
}

/// How updated parameters return to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseMode {
    /// KVStore: notify all workers, each issues a pull request, server
    /// answers (two extra half-round-trips, and MXNet only pulls once all
    /// parts of a layer updated).
    NotifyThenPull,
    /// P3: broadcast the updated slice to every worker immediately (§4.2).
    ImmediateBroadcast,
}

/// When workers issue pulls for updated parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullTiming {
    /// As soon as the update notification arrives (MXNet).
    Eager,
    /// Not before the next iteration's graph execution starts (TensorFlow's
    /// per-iteration graph boundary, §2 and Fig. 13).
    NextIterationStart,
}

/// How slice priorities are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityMode {
    /// P3: priority = forward-pass consumption order; the first layer is
    /// the most urgent.
    Consumption,
    /// Generation order: the last layer (whose gradients appear first) is
    /// the most urgent — what plain FIFO achieves; used as an ablation.
    Generation,
    /// All slices equal; FIFO tie-breaking decides (slicing-only variant).
    Uniform,
    /// Random per-array priorities (ablation).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

/// A complete synchronization strategy.
///
/// # Examples
///
/// ```
/// use p3_core::SyncStrategy;
/// use p3_models::ModelSpec;
///
/// let p3 = SyncStrategy::p3();
/// let model = ModelSpec::vgg19();
/// let plan = p3.plan(&model, 4, 0);
/// let prios = p3.priorities(&plan);
/// // The first array's slices are the most urgent.
/// assert_eq!(prios[0], 0);
/// // Slices inherit the priority of their parent array.
/// let fc6_slices = plan.slices_of_array(32);
/// assert!(fc6_slices.iter().all(|&i| prios[i] == prios[fc6_slices[0]]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyncStrategy {
    name: String,
    /// Key granularity and placement.
    pub slicing: Slicing,
    /// Worker egress discipline.
    pub egress: Egress,
    /// Server gradient-processing order.
    pub server_processing: ServerProcessing,
    /// Parameter return path.
    pub response: ResponseMode,
    /// Pull timing.
    pub pull_timing: PullTiming,
    /// Priority assignment.
    pub priority_mode: PriorityMode,
}

impl SyncStrategy {
    /// MXNet KVStore, the paper's baseline: layer-wise keys (split only by
    /// the 10⁶-parameter heuristic), parallel FIFO connections, FIFO server,
    /// notify-then-pull.
    pub fn baseline() -> SyncStrategy {
        SyncStrategy {
            name: "Baseline".into(),
            slicing: Slicing::KvstoreLayerwise {
                split_threshold: KVSTORE_SPLIT_THRESHOLD,
            },
            egress: Egress::PerServerFifo,
            server_processing: ServerProcessing::Fifo,
            response: ResponseMode::NotifyThenPull,
            pull_timing: PullTiming::Eager,
            priority_mode: PriorityMode::Uniform,
        }
    }

    /// P3's slicing optimization alone (the "Slicing" series of Fig. 7):
    /// 50k-parameter slices with P3's transport machinery but no
    /// priorities — transmission order is generation order.
    pub fn slicing_only() -> SyncStrategy {
        SyncStrategy {
            name: "Slicing".into(),
            slicing: Slicing::MaxParams(DEFAULT_SLICE_PARAMS),
            egress: Egress::SingleConsumer,
            server_processing: ServerProcessing::Fifo,
            response: ResponseMode::ImmediateBroadcast,
            pull_timing: PullTiming::Eager,
            priority_mode: PriorityMode::Uniform,
        }
    }

    /// Full P3 (§4.2): 50k slices, single-consumer priority egress,
    /// priority processing at the server, immediate broadcast.
    pub fn p3() -> SyncStrategy {
        SyncStrategy {
            name: "P3".into(),
            slicing: Slicing::MaxParams(DEFAULT_SLICE_PARAMS),
            egress: Egress::SingleConsumer,
            server_processing: ServerProcessing::Priority,
            response: ResponseMode::ImmediateBroadcast,
            pull_timing: PullTiming::Eager,
            priority_mode: PriorityMode::Consumption,
        }
    }

    /// P3 with a non-default slice size (the Fig. 12 sweep).
    pub fn p3_with_slice_params(max_slice: u64) -> SyncStrategy {
        let mut s = SyncStrategy::p3();
        s.name = format!("P3-{}k", max_slice / 1000);
        s.slicing = Slicing::MaxParams(max_slice);
        s
    }

    /// P3 with an explicit slice size *and* priority assignment — the
    /// point the `p3 tune` search harness enumerates. The name encodes
    /// both dimensions so tuner tables stay self-describing.
    pub fn p3_custom(max_slice: u64, priority_mode: PriorityMode) -> SyncStrategy {
        let mut s = SyncStrategy::p3_with_slice_params(max_slice);
        let policy = match priority_mode {
            PriorityMode::Consumption => "consumption",
            PriorityMode::Generation => "generation",
            PriorityMode::Uniform => "uniform",
            PriorityMode::Random { .. } => "random",
        };
        s.name = format!("P3-{}k-{policy}", max_slice / 1000);
        s.priority_mode = priority_mode;
        s
    }

    /// TensorFlow-style synchronization (§2, Fig. 13): like the baseline
    /// but pulls wait for the next iteration's graph execution, so inbound
    /// and outbound transfers never overlap.
    pub fn tf_style() -> SyncStrategy {
        SyncStrategy {
            name: "TensorFlow-style".into(),
            slicing: Slicing::KvstoreLayerwise {
                split_threshold: KVSTORE_SPLIT_THRESHOLD,
            },
            egress: Egress::PerServerFifo,
            server_processing: ServerProcessing::Fifo,
            response: ResponseMode::NotifyThenPull,
            pull_timing: PullTiming::NextIterationStart,
            priority_mode: PriorityMode::Uniform,
        }
    }

    /// Poseidon's wait-free backpropagation (Zhang et al. 2017, Fig. 14):
    /// strictly layer-granular keys synchronized as soon as their gradients
    /// appear; no slicing, no priorities.
    pub fn poseidon_wfbp() -> SyncStrategy {
        SyncStrategy {
            name: "Poseidon-WFBP".into(),
            slicing: Slicing::LayerwiseNoSplit,
            egress: Egress::PerServerFifo,
            server_processing: ServerProcessing::Fifo,
            response: ResponseMode::NotifyThenPull,
            pull_timing: PullTiming::Eager,
            priority_mode: PriorityMode::Uniform,
        }
    }

    /// Ablation: P3 with priorities in *generation* order (what a plain
    /// FIFO would do) — isolates the value of consumption-order priorities.
    pub fn p3_generation_order() -> SyncStrategy {
        let mut s = SyncStrategy::p3();
        s.name = "P3-generation-order".into();
        s.priority_mode = PriorityMode::Generation;
        s
    }

    /// Ablation: P3 with random priorities.
    pub fn p3_random_order(seed: u64) -> SyncStrategy {
        let mut s = SyncStrategy::p3();
        s.name = "P3-random-order".into();
        s.priority_mode = PriorityMode::Random { seed };
        s
    }

    /// Ablation: P3 without the immediate-broadcast change (keeps KVStore's
    /// notify-then-pull response path).
    pub fn p3_notify_pull() -> SyncStrategy {
        let mut s = SyncStrategy::p3();
        s.name = "P3-notify-pull".into();
        s.response = ResponseMode::NotifyThenPull;
        s
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds this strategy's shard plan for `model` on `servers` shards.
    /// `seed` feeds KVStore's random small-array placement.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn plan(&self, model: &ModelSpec, servers: usize, seed: u64) -> ShardPlan {
        let arrays: Vec<u64> = model.param_arrays().map(|a| a.params).collect();
        match self.slicing {
            Slicing::KvstoreLayerwise { split_threshold } => {
                ShardPlan::kvstore(&arrays, servers, split_threshold, seed)
            }
            Slicing::LayerwiseNoSplit => ShardPlan::kvstore(&arrays, servers, u64::MAX, seed),
            Slicing::MaxParams(max) => p3_plan(&arrays, servers, max),
        }
    }

    /// Per-key priorities for a plan built by this strategy (lower = more
    /// urgent). Slices inherit their parent array's priority.
    pub fn priorities(&self, plan: &ShardPlan) -> Vec<u32> {
        let num_arrays = plan.num_arrays();
        let array_prio: Vec<u32> = match self.priority_mode {
            PriorityMode::Consumption => (0..num_arrays as u32).collect(),
            PriorityMode::Generation => (0..num_arrays as u32).rev().collect(),
            PriorityMode::Uniform => vec![0; num_arrays],
            PriorityMode::Random { seed } => {
                let mut order: Vec<u32> = (0..num_arrays as u32).collect();
                let mut rng = SplitMix64::new(seed);
                // Fisher–Yates.
                for i in (1..order.len()).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    order.swap(i, j);
                }
                order
            }
        };
        plan.slices().iter().map(|s| array_prio[s.array]).collect()
    }

    /// All strategies compared in Figure 7, in plot order.
    pub fn fig7_series() -> Vec<SyncStrategy> {
        vec![
            SyncStrategy::baseline(),
            SyncStrategy::slicing_only(),
            SyncStrategy::p3(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_description() {
        let b = SyncStrategy::baseline();
        assert_eq!(b.name(), "Baseline");
        assert_eq!(
            b.slicing,
            Slicing::KvstoreLayerwise {
                split_threshold: 1_000_000
            }
        );
        assert_eq!(b.response, ResponseMode::NotifyThenPull);
    }

    #[test]
    fn p3_matches_paper_description() {
        let p = SyncStrategy::p3();
        assert_eq!(p.slicing, Slicing::MaxParams(50_000));
        assert_eq!(p.egress, Egress::SingleConsumer);
        assert_eq!(p.server_processing, ServerProcessing::Priority);
        assert_eq!(p.response, ResponseMode::ImmediateBroadcast);
        assert_eq!(p.priority_mode, PriorityMode::Consumption);
    }

    #[test]
    fn consumption_priorities_ascend_with_depth() {
        let model = ModelSpec::resnet50();
        let strat = SyncStrategy::p3();
        let plan = strat.plan(&model, 4, 0);
        let prios = strat.priorities(&plan);
        // First array most urgent, last array least urgent.
        let first = plan.slices_of_array(0)[0];
        let last_array = plan.num_arrays() - 1;
        let last = plan.slices_of_array(last_array)[0];
        assert_eq!(prios[first], 0);
        assert_eq!(prios[last], last_array as u32);
    }

    #[test]
    fn generation_order_reverses() {
        let model = ModelSpec::vgg19();
        let strat = SyncStrategy::p3_generation_order();
        let plan = strat.plan(&model, 2, 0);
        let prios = strat.priorities(&plan);
        let first = plan.slices_of_array(0)[0];
        assert_eq!(prios[first], (plan.num_arrays() - 1) as u32);
    }

    #[test]
    fn uniform_is_all_zero() {
        let model = ModelSpec::sockeye();
        let strat = SyncStrategy::slicing_only();
        let plan = strat.plan(&model, 4, 0);
        assert!(strat.priorities(&plan).iter().all(|&p| p == 0));
    }

    #[test]
    fn random_is_a_permutation_and_deterministic() {
        let model = ModelSpec::sockeye();
        let strat = SyncStrategy::p3_random_order(9);
        let plan = strat.plan(&model, 4, 0);
        let p1 = strat.priorities(&plan);
        let p2 = strat.priorities(&plan);
        assert_eq!(p1, p2);
        // Distinct arrays' priorities form a permutation of 0..n.
        let mut per_array: Vec<u32> = (0..plan.num_arrays())
            .map(|a| p1[plan.slices_of_array(a)[0]])
            .collect();
        per_array.sort_unstable();
        assert_eq!(per_array, (0..plan.num_arrays() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn poseidon_never_splits() {
        let model = ModelSpec::vgg19();
        let plan = SyncStrategy::poseidon_wfbp().plan(&model, 4, 0);
        assert_eq!(plan.num_keys(), model.num_arrays());
    }

    #[test]
    fn baseline_splits_only_large_arrays() {
        let model = ModelSpec::vgg19();
        let plan = SyncStrategy::baseline().plan(&model, 4, 0);
        // VGG-19 has 5 arrays above 1M params (conv weights ≥ 1.18M ×3? —
        // fc6.w, fc7.w, fc8.w(4.1M), conv weights 2.36M ×...). At minimum,
        // more keys than arrays but far fewer than P3's plan.
        assert!(plan.num_keys() > model.num_arrays());
        let p3_keys = SyncStrategy::p3().plan(&model, 4, 0).num_keys();
        assert!(plan.num_keys() < p3_keys / 10);
    }

    #[test]
    fn fig7_series_names() {
        let series = SyncStrategy::fig7_series();
        let names: Vec<&str> = series.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Baseline", "Slicing", "P3"]);
    }

    #[test]
    fn slice_size_variant() {
        let s = SyncStrategy::p3_with_slice_params(10_000);
        assert_eq!(s.slicing, Slicing::MaxParams(10_000));
        assert_eq!(s.name(), "P3-10k");
    }
}
