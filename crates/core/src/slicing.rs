//! Parameter slicing (§4.2): splitting layers into bounded-size slices that
//! synchronize independently, placed round-robin across servers.
//!
//! This differs from KVStore's sharding in two ways the paper calls out:
//! the threshold bounds the **maximum slice size** (KVStore's threshold
//! decides *whether* to split, into exactly one part per server), and
//! placement is round-robin over slices rather than equal-split per array,
//! which load-balances even when one array dominates the model.

use p3_models::ModelSpec;
use p3_pserver::{ServerId, ShardPlan};

/// The slice-size threshold found optimal in the paper's sweep (§5.7,
/// Fig. 12): 50,000 parameters (200 kB of f32 payload).
pub const DEFAULT_SLICE_PARAMS: u64 = 50_000;

/// Builds P3's shard plan: every parameter array is split into slices of at
/// most `max_slice_params` parameters (balanced within one parameter), and
/// slices are assigned to servers round-robin in forward order.
///
/// # Panics
///
/// Panics if `servers == 0`, `max_slice_params == 0`, or any array is
/// empty.
///
/// # Examples
///
/// ```
/// use p3_core::p3_plan;
///
/// // A 120k array and a 30k array on 2 servers with 50k slices.
/// let plan = p3_plan(&[120_000, 30_000], 2, 50_000);
/// // 120k -> 3 slices of 40k; 30k -> 1 slice.
/// assert_eq!(plan.num_keys(), 4);
/// assert_eq!(plan.slices()[0].params, 40_000);
/// // Round-robin placement: servers 0,1,0,1.
/// let servers: Vec<usize> = plan.slices().iter().map(|s| s.server.0).collect();
/// assert_eq!(servers, vec![0, 1, 0, 1]);
/// ```
pub fn p3_plan(array_params: &[u64], servers: usize, max_slice_params: u64) -> ShardPlan {
    assert!(servers > 0, "at least one server required");
    assert!(max_slice_params > 0, "zero slice size");
    let mut slices = Vec::new();
    let mut next_server = 0usize;
    for (array, &params) in array_params.iter().enumerate() {
        assert!(params > 0, "array {array} has zero parameters");
        let parts = params.div_ceil(max_slice_params);
        let base = params / parts;
        let rem = (params % parts) as usize;
        for part in 0..parts as usize {
            let p = base + u64::from(part < rem);
            slices.push((array, part, p, ServerId(next_server)));
            next_server = (next_server + 1) % servers;
        }
    }
    ShardPlan::from_slices(slices, servers)
}

/// Convenience: the P3 plan for a model with the paper's default slice
/// size.
pub fn p3_plan_for_model(model: &ModelSpec, servers: usize) -> ShardPlan {
    let arrays: Vec<u64> = model.param_arrays().map(|a| a.params).collect();
    p3_plan(&arrays, servers, DEFAULT_SLICE_PARAMS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_array_is_one_slice() {
        let plan = p3_plan(&[10_000], 4, 50_000);
        assert_eq!(plan.num_keys(), 1);
        assert_eq!(plan.slices()[0].params, 10_000);
    }

    #[test]
    fn exact_multiple_splits_evenly() {
        let plan = p3_plan(&[150_000], 4, 50_000);
        let sizes: Vec<u64> = plan.slices().iter().map(|s| s.params).collect();
        assert_eq!(sizes, vec![50_000, 50_000, 50_000]);
    }

    #[test]
    fn no_slice_exceeds_threshold() {
        let plan = p3_plan(&[102_760_448], 4, 50_000); // VGG fc6
        assert!(plan.slices().iter().all(|s| s.params <= 50_000));
        assert_eq!(plan.total_params(), 102_760_448);
        // ceil(102760448 / 50000) = 2056 slices.
        assert_eq!(plan.num_keys(), 2056);
    }

    #[test]
    fn round_robin_balances_heavy_arrays() {
        // One dominant array: KVStore-style equal split would also balance,
        // but round-robin must balance across *arrays* too.
        let plan = p3_plan(&[500_000, 30_000, 30_000, 30_000], 4, 50_000);
        let loads = plan.server_loads();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "unbalanced {loads:?}");
    }

    #[test]
    fn vgg19_plan_statistics() {
        let model = p3_models::ModelSpec::vgg19();
        let plan = p3_plan_for_model(&model, 4);
        assert_eq!(plan.total_params(), model.total_params());
        // VGG-19 at 50k slices: roughly 143.7M / 50k ≈ 2900+ keys.
        assert!(plan.num_keys() > 2_800, "got {}", plan.num_keys());
        // Perfectly reasonable balance.
        let loads = plan.server_loads();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min < 1.1, "unbalanced {loads:?}");
    }

    #[test]
    #[should_panic(expected = "zero slice size")]
    fn zero_slice_rejected() {
        p3_plan(&[10], 1, 0);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Slicing conserves parameters, respects the size bound, and keeps
        /// slices balanced within one parameter per array.
        #[test]
        fn slicing_invariants(
            arrays in prop::collection::vec(1u64..3_000_000, 1..30),
            servers in 1usize..9,
            max_slice in 1_000u64..200_000,
        ) {
            let plan = p3_plan(&arrays, servers, max_slice);
            prop_assert_eq!(plan.total_params(), arrays.iter().sum::<u64>());
            for s in plan.slices() {
                prop_assert!(s.params <= max_slice);
            }
            for (a, _) in arrays.iter().enumerate() {
                let sizes: Vec<u64> = plan.slices_of_array(a).iter()
                    .map(|&i| plan.slices()[i].params).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                prop_assert!(max - min <= 1, "array {} sizes {:?}", a, sizes);
            }
        }

        /// Round-robin placement never loads one server with more than a
        /// slice-size above the ideal share... within tolerance for small
        /// inputs: assert max load ≤ ideal + max_slice.
        #[test]
        fn round_robin_balance(
            arrays in prop::collection::vec(50_000u64..5_000_000, 1..12),
            servers in 1usize..9,
        ) {
            let max_slice = 50_000u64;
            let plan = p3_plan(&arrays, servers, max_slice);
            let loads = plan.server_loads();
            let ideal = plan.total_params() as f64 / servers as f64;
            for &l in &loads {
                prop_assert!((l as f64) <= ideal + max_slice as f64,
                    "load {} vs ideal {}", l, ideal);
            }
        }
    }
}
