//! # p3-core — Priority-based Parameter Propagation
//!
//! The paper's contribution (Jayarajan et al., MLSys 2019), as three
//! composable pieces:
//!
//! 1. **Parameter slicing** ([`p3_plan`]): split every layer into slices of
//!    at most 50,000 parameters and place them round-robin across server
//!    shards, so the push → aggregate/update → pull pipeline stays busy
//!    even when one layer holds 71.5% of the model (VGG-19's fc6).
//! 2. **Priority queues** ([`PrioQueue`]): the producer–consumer structure
//!    at the worker egress and the server ingress/egress; a single consumer
//!    transmits exactly one message at a time, always the most urgent.
//! 3. **Priority assignment** ([`SyncStrategy::priorities`]): a slice's
//!    urgency is *when the next forward pass consumes it* — layer 0 first —
//!    not when backprop produced it.
//!
//! [`SyncStrategy`] packages these into declarative configurations for the
//! baseline (MXNet KVStore), slicing-only, full P3, TensorFlow-style and
//! Poseidon-WFBP variants, plus the ablations, all executed by the cluster
//! simulator in `p3-cluster`.
//!
//! # Examples
//!
//! ```
//! use p3_core::{PrioQueue, SyncStrategy};
//! use p3_models::ModelSpec;
//!
//! // Build P3's plan for VGG-19 on four servers.
//! let strat = SyncStrategy::p3();
//! let model = ModelSpec::vgg19();
//! let plan = strat.plan(&model, 4, 0);
//! assert!(plan.slices().iter().all(|s| s.params <= 50_000));
//!
//! // Backprop enqueues final-layer slices first, but the first layer wins.
//! let mut q = PrioQueue::new();
//! q.push(37, "fc8.slice0");
//! q.push(0, "conv1.slice0");
//! assert_eq!(q.pop(), Some("conv1.slice0"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod queue;
mod slicing;
mod strategy;

pub use queue::PrioQueue;
pub use slicing::{p3_plan, p3_plan_for_model, DEFAULT_SLICE_PARAMS};
pub use strategy::{
    Egress, PriorityMode, PullTiming, ResponseMode, ServerProcessing, Slicing, SyncStrategy,
};
