//! The producer–consumer priority queue at the heart of P3 (§4.2).
//!
//! P3Worker's producer pushes all slices of a layer at once; a single
//! consumer repeatedly polls the **highest-priority** slice and transmits it
//! with a blocking send. The same structure sits in front of the P3Server's
//! processing loop. Lower numeric priority = more urgent (layer 0 first),
//! and FIFO order breaks ties so equal-priority slices of one layer keep
//! their part order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Item<T> {
    priority: u32,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: invert so (lowest priority value, lowest seq) pops
        // first.
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}

/// A strict priority queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use p3_core::PrioQueue;
///
/// let mut q = PrioQueue::new();
/// q.push(3, "layer3.slice0"); // backprop finishes the last layer first…
/// q.push(3, "layer3.slice1");
/// q.push(0, "layer1.slice0"); // …but layer 1 preempts it in the queue.
/// assert_eq!(q.pop(), Some("layer1.slice0"));
/// assert_eq!(q.pop(), Some("layer3.slice0"));
/// assert_eq!(q.pop(), Some("layer3.slice1"));
/// ```
#[derive(Debug, Clone)]
pub struct PrioQueue<T> {
    heap: BinaryHeap<Item<T>>,
    next_seq: u64,
}

impl<T> Default for PrioQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrioQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PrioQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `value` with `priority` (lower = more urgent).
    pub fn push(&mut self, priority: u32, value: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Item {
            priority,
            seq,
            value,
        });
    }

    /// Removes and returns the most urgent value (FIFO among equals).
    pub fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|i| i.value)
    }

    /// Most urgent value without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|i| &i.value)
    }

    /// Priority of the most urgent value.
    pub fn peek_priority(&self) -> Option<u32> {
        self.heap.peek().map(|i| i.priority)
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all queued values.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Keeps only the values for which `keep` returns true, preserving
    /// the relative pop order (priority, then FIFO) of the survivors.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.heap.retain(|i| keep(&i.value));
    }
}

impl<T: Clone> PrioQueue<T> {
    /// Every queued `(priority, value)` in pop order, without disturbing
    /// the queue. This is the serialization view for snapshots: re-pushing
    /// the returned pairs in order onto a fresh queue reproduces the exact
    /// pop sequence (fresh sequence numbers assigned in pop order preserve
    /// the FIFO tie-break).
    pub fn snapshot_sorted(&self) -> Vec<(u32, T)> {
        let mut items: Vec<&Item<T>> = self.heap.iter().collect();
        items.sort_by_key(|i| (i.priority, i.seq));
        items
            .into_iter()
            .map(|i| (i.priority, i.value.clone()))
            .collect()
    }
}

impl<T> Extend<(u32, T)> for PrioQueue<T> {
    fn extend<I: IntoIterator<Item = (u32, T)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.push(p, v);
        }
    }
}

impl<T> FromIterator<(u32, T)> for PrioQueue<T> {
    fn from_iter<I: IntoIterator<Item = (u32, T)>>(iter: I) -> Self {
        let mut q = PrioQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority() {
        let mut q = PrioQueue::new();
        q.push(5, "e");
        q.push(1, "b");
        q.push(0, "a");
        q.push(3, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["a", "b", "c", "e"]);
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = PrioQueue::new();
        for i in 0..50 {
            q.push(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn preemption_mid_stream() {
        // The paper's scenario: layer 3's slices are queued, then layer 1
        // finishes backprop; its slices jump the queue.
        let mut q = PrioQueue::new();
        q.push(3, "l3.s0");
        q.push(3, "l3.s1");
        assert_eq!(q.pop(), Some("l3.s0")); // one slice already sent
        q.push(1, "l1.s0");
        q.push(1, "l1.s1");
        assert_eq!(q.pop(), Some("l1.s0"));
        assert_eq!(q.pop(), Some("l1.s1"));
        assert_eq!(q.pop(), Some("l3.s1"));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = PrioQueue::new();
        q.push(2, 'x');
        assert_eq!(q.peek(), Some(&'x'));
        assert_eq!(q.peek_priority(), Some(2));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some('x'));
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn collect_and_clear() {
        let mut q: PrioQueue<&str> = [(2, "b"), (1, "a")].into_iter().collect();
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping yields a sequence sorted by (priority, insertion order).
        #[test]
        fn pop_order_is_stable_sort(items in prop::collection::vec(0u32..6, 0..100)) {
            let mut q = PrioQueue::new();
            for (i, &p) in items.iter().enumerate() {
                q.push(p, (p, i));
            }
            let mut expected: Vec<(u32, usize)> =
                items.iter().copied().enumerate().map(|(i, p)| (p, i)).collect();
            expected.sort_by_key(|&(p, i)| (p, i));
            let got: Vec<(u32, usize)> = std::iter::from_fn(|| q.pop()).collect();
            prop_assert_eq!(got, expected);
        }

        /// Interleaved push/pop never violates the priority invariant: a
        /// popped element is at least as urgent as everything remaining.
        #[test]
        fn interleaved_invariant(ops in prop::collection::vec((any::<bool>(), 0u32..6), 1..200)) {
            let mut q = PrioQueue::new();
            for (i, &(push, p)) in ops.iter().enumerate() {
                if push || q.is_empty() {
                    q.push(p, (p, i));
                } else {
                    let popped = q.pop().unwrap();
                    if let Some(next) = q.peek_priority() {
                        prop_assert!(popped.0 <= next);
                    }
                }
            }
        }
    }
}
