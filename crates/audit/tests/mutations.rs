//! Negative tests: hand-built valid traces, each mutated to break exactly
//! one invariant, asserting the auditor flags that invariant and no other.
//!
//! This is the auditor's own audit — if a mutation slips through, the
//! checker is not actually enforcing what it claims.

use p3_audit::{check_with, AuditOptions};
use p3_des::SimTime;
use p3_trace::{ComputePhase, EndpointRole, MsgClass, TraceEvent, TraceHandle, TraceLog};

fn build(events: &[(u64, TraceEvent)]) -> TraceLog {
    let h = TraceHandle::new();
    for &(t, e) in events {
        h.record(SimTime::from_nanos(t), e);
    }
    h.drain()
}

fn opts(machines: usize, window: usize) -> AuditOptions {
    AuditOptions {
        machines: Some(machines),
        single_consumer: Some(true),
        window: Some(window),
        port_bytes_per_sec: Some(2e11),
        collective: None,
    }
}

/// A complete, legal round: two workers compute, push key 0 to server 0,
/// the server aggregates both and answers, both workers consume v1.
fn base_round() -> Vec<(u64, TraceEvent)> {
    use ComputePhase::{Backward, Forward};
    use EndpointRole::{Server, Worker};
    vec![
        (
            0,
            TraceEvent::ComputeStart {
                worker: 0,
                phase: Forward,
                block: 0,
            },
        ),
        (
            0,
            TraceEvent::ComputeStart {
                worker: 1,
                phase: Forward,
                block: 0,
            },
        ),
        (
            10_000,
            TraceEvent::ComputeEnd {
                worker: 0,
                phase: Forward,
                block: 0,
            },
        ),
        (
            10_000,
            TraceEvent::ComputeStart {
                worker: 0,
                phase: Backward,
                block: 0,
            },
        ),
        (
            10_000,
            TraceEvent::ComputeEnd {
                worker: 1,
                phase: Forward,
                block: 0,
            },
        ),
        (
            10_000,
            TraceEvent::ComputeStart {
                worker: 1,
                phase: Backward,
                block: 0,
            },
        ),
        (
            20_000,
            TraceEvent::ComputeEnd {
                worker: 0,
                phase: Backward,
                block: 0,
            },
        ),
        (
            20_000,
            TraceEvent::GradReady {
                worker: 0,
                key: 0,
                round: 0,
                priority: 0,
            },
        ),
        (
            20_000,
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: Worker,
                msg_id: 0,
                class: MsgClass::Push,
                key: 0,
                round: 0,
                priority: 0,
                queue_depth: 1,
            },
        ),
        (
            20_000,
            TraceEvent::WireStart {
                msg_id: 0,
                src: 0,
                dst: 0,
                bytes: 1_000_000,
                priority: 0,
            },
        ),
        (20_000, TraceEvent::IterationEnd { worker: 0, iter: 1 }),
        (
            21_000,
            TraceEvent::WireEnd {
                msg_id: 0,
                src: 0,
                dst: 0,
                bytes: 1_000_000,
                bottleneck: None,
            },
        ),
        (
            21_000,
            TraceEvent::AggStart {
                server: 0,
                key: 0,
                round: 0,
                worker: 0,
            },
        ),
        (
            22_000,
            TraceEvent::ComputeEnd {
                worker: 1,
                phase: Backward,
                block: 0,
            },
        ),
        (
            22_000,
            TraceEvent::GradReady {
                worker: 1,
                key: 0,
                round: 0,
                priority: 0,
            },
        ),
        (
            22_000,
            TraceEvent::EgressEnqueue {
                machine: 1,
                role: Worker,
                msg_id: 1,
                class: MsgClass::Push,
                key: 0,
                round: 0,
                priority: 0,
                queue_depth: 1,
            },
        ),
        (
            22_000,
            TraceEvent::WireStart {
                msg_id: 1,
                src: 1,
                dst: 0,
                bytes: 1_000_000,
                priority: 0,
            },
        ),
        (22_000, TraceEvent::IterationEnd { worker: 1, iter: 1 }),
        (
            25_000,
            TraceEvent::AggEnd {
                server: 0,
                key: 0,
                round: 0,
                worker: 0,
            },
        ),
        (
            30_000,
            TraceEvent::WireEnd {
                msg_id: 1,
                src: 1,
                dst: 0,
                bytes: 1_000_000,
                bottleneck: None,
            },
        ),
        (
            30_000,
            TraceEvent::AggStart {
                server: 0,
                key: 0,
                round: 0,
                worker: 1,
            },
        ),
        (
            34_000,
            TraceEvent::AggEnd {
                server: 0,
                key: 0,
                round: 0,
                worker: 1,
            },
        ),
        (
            34_000,
            TraceEvent::RoundComplete {
                server: 0,
                key: 0,
                version: 1,
                degraded: false,
            },
        ),
        (
            34_000,
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: Server,
                msg_id: 2,
                class: MsgClass::Response,
                key: 0,
                round: 1,
                priority: 0,
                queue_depth: 1,
            },
        ),
        (
            34_000,
            TraceEvent::WireStart {
                msg_id: 2,
                src: 0,
                dst: 0,
                bytes: 2_000_000,
                priority: 0,
            },
        ),
        (
            34_000,
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: Server,
                msg_id: 3,
                class: MsgClass::Response,
                key: 0,
                round: 1,
                priority: 0,
                queue_depth: 1,
            },
        ),
        (
            35_000,
            TraceEvent::WireEnd {
                msg_id: 2,
                src: 0,
                dst: 0,
                bytes: 2_000_000,
                bottleneck: None,
            },
        ),
        (
            35_000,
            TraceEvent::WireStart {
                msg_id: 3,
                src: 0,
                dst: 1,
                bytes: 2_000_000,
                priority: 0,
            },
        ),
        (
            46_000,
            TraceEvent::WireEnd {
                msg_id: 3,
                src: 0,
                dst: 1,
                bytes: 2_000_000,
                bottleneck: None,
            },
        ),
        (
            46_000,
            TraceEvent::SliceConsumed {
                worker: 0,
                key: 0,
                round: 1,
            },
        ),
        (
            46_000,
            TraceEvent::SliceConsumed {
                worker: 1,
                key: 0,
                round: 1,
            },
        ),
    ]
}

fn assert_only(log: &TraceLog, o: &AuditOptions, invariant: &str) {
    let report = check_with(log, o);
    assert!(
        !report.is_clean(),
        "mutation for {invariant} was not caught"
    );
    assert_eq!(
        report.violated_invariants(),
        vec![invariant],
        "expected only {invariant}, got:\n{report}"
    );
}

#[test]
fn base_round_is_clean() {
    let report = check_with(&build(&base_round()), &opts(2, 2));
    assert!(report.is_clean(), "valid trace flagged:\n{report}");
    assert_eq!(report.events, base_round().len());
}

#[test]
fn base_round_without_metadata_is_clean_with_notes() {
    let report = p3_audit::check(&build(&base_round()));
    assert!(report.is_clean(), "valid trace flagged:\n{report}");
    assert!(!report.skipped.is_empty(), "gated checks should be noted");
}

#[test]
fn clock_regression_is_monotone_violation() {
    let mut evs = base_round();
    // The first WireEnd recorded at 19µs after the 20µs events around it.
    let idx = evs
        .iter()
        .position(|(_, e)| matches!(e, TraceEvent::WireEnd { msg_id: 0, .. }))
        .unwrap();
    evs[idx].0 = 19_000;
    // Keep the paired AggStart legal relative to the new delivery time.
    assert_only(&build(&evs), &opts(2, 2), "monotone-clock");
}

#[test]
fn swapped_wire_events_are_causal_violation() {
    let mut evs = base_round();
    let start = evs
        .iter()
        .position(|(_, e)| matches!(e, TraceEvent::WireStart { msg_id: 1, .. }))
        .unwrap();
    let end = evs
        .iter()
        .position(|(_, e)| matches!(e, TraceEvent::WireEnd { msg_id: 1, .. }))
        .unwrap();
    // Deliver msg 1 before it ever started transmitting.
    let (t_start, t_end) = (evs[start].0, evs[end].0);
    evs.swap(start, end);
    evs[start].0 = t_start;
    evs[end].0 = t_end;
    assert_only(&build(&evs), &opts(2, 2), "causal-order");
}

#[test]
fn inflated_byte_count_is_conservation_violation() {
    let mut evs = base_round();
    for (_, e) in &mut evs {
        if let TraceEvent::WireEnd {
            msg_id: 1, bytes, ..
        } = e
        {
            *bytes += 500_000;
        }
    }
    assert_only(&build(&evs), &opts(2, 2), "byte-conservation");
}

#[test]
fn missing_aggregation_is_conservation_violation() {
    // Drop worker 1's aggregation but still complete the round at full
    // membership: the server claims a gradient it never folded in.
    let evs: Vec<_> = base_round()
        .into_iter()
        .filter(|(_, e)| {
            !matches!(
                e,
                TraceEvent::AggStart { worker: 1, .. } | TraceEvent::AggEnd { worker: 1, .. }
            )
        })
        .collect();
    assert_only(&build(&evs), &opts(2, 2), "byte-conservation");
}

#[test]
fn stretched_iteration_is_stall_accounting_violation() {
    let mut evs = base_round();
    // Worker 0's iteration boundary drifts 1µs past its accounted time.
    let idx = evs
        .iter()
        .position(|(_, e)| matches!(e, TraceEvent::IterationEnd { worker: 0, .. }))
        .unwrap();
    evs[idx].0 = 21_000;
    assert_only(&build(&evs), &opts(2, 2), "stall-accounting");
}

/// A worker with three ready gradients for distinct keys, draining its
/// queue one message at a time in priority order.
fn priority_drain(order: &[u64]) -> Vec<(u64, TraceEvent)> {
    use EndpointRole::Worker;
    // msg 0 -> key 0 priority 5, msg 1 -> key 1 priority 1, msg 2 -> key 2
    // priority 3. Strict priority drains 1, 2, 0.
    let prio = [5u32, 1, 3];
    let mut evs = vec![
        (
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: 0,
                round: 0,
                priority: 5,
            },
        ),
        (
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: 1,
                round: 0,
                priority: 1,
            },
        ),
        (
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: 2,
                round: 0,
                priority: 3,
            },
        ),
    ];
    for id in 0..3u64 {
        evs.push((
            0,
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: Worker,
                msg_id: id,
                class: MsgClass::Push,
                key: id as usize,
                round: 0,
                priority: prio[id as usize],
                queue_depth: id as usize + 1,
            },
        ));
    }
    let mut t = 1_000;
    for &id in order {
        evs.push((
            t,
            TraceEvent::WireStart {
                msg_id: id,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                priority: prio[id as usize],
            },
        ));
        evs.push((
            t + 8_000,
            TraceEvent::WireEnd {
                msg_id: id,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                bottleneck: None,
            },
        ));
        t += 10_000;
    }
    evs
}

#[test]
fn priority_order_drain_is_clean() {
    let report = check_with(&build(&priority_drain(&[1, 2, 0])), &opts(2, 1));
    assert!(
        report.is_clean(),
        "strict-priority drain flagged:\n{report}"
    );
}

#[test]
fn reordered_drain_is_priority_inversion() {
    // Least-urgent message 0 jumps the queue ahead of messages 1 and 2.
    assert_only(
        &build(&priority_drain(&[0, 1, 2])),
        &opts(2, 1),
        "priority-inversion",
    );
}

#[test]
fn window_overrun_is_inflight_violation() {
    use EndpointRole::Worker;
    // Three equal-priority pushes all on the wire at once under window 2.
    let mut evs = vec![
        (
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: 0,
                round: 0,
                priority: 0,
            },
        ),
        (
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: 1,
                round: 0,
                priority: 0,
            },
        ),
        (
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: 2,
                round: 0,
                priority: 0,
            },
        ),
    ];
    for id in 0..3u64 {
        evs.push((
            0,
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: Worker,
                msg_id: id,
                class: MsgClass::Push,
                key: id as usize,
                round: 0,
                priority: 0,
                queue_depth: id as usize + 1,
            },
        ));
    }
    for id in 0..3u64 {
        evs.push((
            1_000,
            TraceEvent::WireStart {
                msg_id: id,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                priority: 0,
            },
        ));
    }
    for id in 0..3u64 {
        evs.push((
            40_000 + id,
            TraceEvent::WireEnd {
                msg_id: id,
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                bottleneck: None,
            },
        ));
    }
    assert_only(&build(&evs), &opts(2, 2), "in-flight-window");
}

#[test]
fn overcommitted_port_is_capacity_violation() {
    use EndpointRole::Worker;
    // Four 1MB transfers leave machine 0's port in the same 8µs window:
    // 4MB / 8µs = 5e11 B/s against a 2e11 B/s port. Each flow alone fits.
    let mut evs = Vec::new();
    for id in 0..4u64 {
        evs.push((
            0,
            TraceEvent::GradReady {
                worker: 0,
                key: id as usize,
                round: 0,
                priority: 0,
            },
        ));
        evs.push((
            0,
            TraceEvent::EgressEnqueue {
                machine: 0,
                role: Worker,
                msg_id: id,
                class: MsgClass::Push,
                key: id as usize,
                round: 0,
                priority: 0,
                queue_depth: id as usize + 1,
            },
        ));
    }
    for id in 0..4u64 {
        evs.push((
            1_000,
            TraceEvent::WireStart {
                msg_id: id,
                src: 0,
                dst: 1 + id as usize,
                bytes: 1_000_000,
                priority: 0,
            },
        ));
    }
    for id in 0..4u64 {
        evs.push((
            9_000,
            TraceEvent::WireEnd {
                msg_id: id,
                src: 0,
                dst: 1 + id as usize,
                bytes: 1_000_000,
                bottleneck: None,
            },
        ));
    }
    let o = AuditOptions {
        machines: Some(5),
        single_consumer: Some(true),
        window: Some(5),
        port_bytes_per_sec: Some(2e11),
        collective: None,
    };
    assert_only(&build(&evs), &o, "capacity-feasibility");
    // The same schedule on a fat enough port is clean.
    let fat = AuditOptions {
        port_bytes_per_sec: Some(6e11),
        ..o
    };
    assert!(check_with(&build(&evs), &fat).is_clean());
}

#[test]
fn phantom_aggregation_is_causal_violation() {
    // An AggStart for a worker whose push never arrived.
    let mut evs = base_round();
    for (_, e) in &mut evs {
        if let TraceEvent::AggStart { worker, .. } = e {
            if *worker == 1 {
                *worker = 0; // claims worker 0's push twice
            }
        }
        if let TraceEvent::AggEnd { worker, .. } = e {
            if *worker == 1 {
                *worker = 0;
            }
        }
    }
    // Double-claiming w0 leaves w1's gradient out of the full-membership
    // round as well, so both the claim and the membership check fire.
    let report = check_with(&build(&evs), &opts(2, 2));
    assert!(!report.is_clean());
    assert!(
        report.violated_invariants().contains(&"causal-order"),
        "{report}"
    );
}

#[test]
fn skipped_version_is_causal_violation() {
    let mut evs = base_round();
    for (_, e) in &mut evs {
        if let TraceEvent::RoundComplete { version, .. } = e {
            *version = 2; // versions must advance by exactly one
        }
    }
    // Downstream responses/consumes reference v1 which now never existed;
    // the version jump itself must be among the causal findings.
    let report = check_with(&build(&evs), &opts(2, 2));
    assert!(!report.is_clean());
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("advance by exactly one")),
        "{report}"
    );
}

#[test]
fn premature_consume_is_causal_violation() {
    // Worker 1 consumes version 1 before its response is delivered.
    let mut evs = base_round();
    let end = evs
        .iter()
        .position(|(_, e)| matches!(e, TraceEvent::WireEnd { msg_id: 3, .. }))
        .unwrap();
    evs.insert(
        end,
        (
            40_000,
            TraceEvent::SliceConsumed {
                worker: 1,
                key: 0,
                round: 1,
            },
        ),
    );
    assert_only(&build(&evs), &opts(2, 2), "causal-order");
}

#[test]
fn queue_depth_lie_is_causal_violation() {
    let mut evs = base_round();
    for (_, e) in &mut evs {
        if let TraceEvent::EgressEnqueue {
            msg_id: 1,
            queue_depth,
            ..
        } = e
        {
            *queue_depth = 7;
        }
    }
    assert_only(&build(&evs), &opts(2, 2), "causal-order");
}
