//! Server-side checkers: the serial processing unit, push claiming,
//! version advancement, full-membership conservation, and slice
//! consumption ordering.

use super::{Checker, MsgState};
use crate::report::Invariant;

impl Checker {
    pub(super) fn on_agg_start(
        &mut self,
        i: usize,
        t: u64,
        server: usize,
        key: usize,
        round: u64,
        worker: usize,
    ) {
        if let Some(&(k, r, w)) = self.open_agg.get(&server) {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} starts aggregating k{key} r{round} while still processing \
                     k{k} r{r} from w{w} — the processing unit is serial"
                ),
            );
        }
        let version = self.versions.get(&(server, key)).copied().unwrap_or(0);
        if round != version {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} aggregates k{key} at round {round} while the key is at \
                     version {version}"
                ),
            );
        }
        let claimed = self
            .delivered_pushes
            .get_mut(&(server, key, round, worker))
            .and_then(|ids| {
                let pos = ids.iter().position(|id| {
                    self.msgs
                        .get(id)
                        .is_some_and(|m| m.state == MsgState::Delivered)
                });
                pos.map(|p| ids.remove(p))
            });
        if claimed.is_none() {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} aggregates k{key} r{round} from w{worker} but no matching \
                     push was delivered"
                ),
            );
        }
        self.open_agg.insert(server, (key, round, worker));
    }

    pub(super) fn on_agg_end(
        &mut self,
        i: usize,
        t: u64,
        server: usize,
        key: usize,
        round: u64,
        worker: usize,
    ) {
        match self.open_agg.remove(&server) {
            Some((k, r, w)) if (k, r, w) == (key, round, worker) => {
                if self.conservation_enabled() {
                    self.agg_members
                        .entry((server, key, round))
                        .or_default()
                        .insert(worker);
                }
            }
            other => {
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!(
                        "server {server} finishes aggregating k{key} r{round} from w{worker} but \
                         its processing unit held {other:?}"
                    ),
                );
            }
        }
    }

    pub(super) fn on_round_complete(
        &mut self,
        i: usize,
        t: u64,
        server: usize,
        key: usize,
        version: u64,
        degraded: bool,
    ) {
        let prev = self.versions.get(&(server, key)).copied().unwrap_or(0);
        if version != prev + 1 {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} completes k{key} at version {version} after version {prev} \
                     — versions must advance by exactly one"
                ),
            );
        }
        self.versions.insert((server, key), version);
        let members = self
            .agg_members
            .remove(&(server, key, version.saturating_sub(1)));
        if !degraded && self.conservation_enabled() {
            let machines = self.opts.machines.unwrap_or(0);
            let unique = members.map(|m| m.len()).unwrap_or(0);
            if unique != machines {
                self.rep.violate(
                    Invariant::ByteConservation,
                    Some(i),
                    t,
                    format!(
                        "server {server} completes k{key} v{version} with full membership but \
                         only {unique}/{machines} workers' pushes were aggregated"
                    ),
                );
            }
        }
    }

    pub(super) fn on_slice_consumed(
        &mut self,
        i: usize,
        t: u64,
        worker: usize,
        key: usize,
        round: u64,
    ) {
        let mut have = self.received.get(&(worker, key)).copied().unwrap_or(0);
        if self.opts.collective == Some(true) {
            // Collective completion syncs every live member in place — no
            // per-machine delivery crosses the wire for a worker that was
            // excluded from a reformed survivor group (e.g. a rank that
            // rejoined while the group ran degraded). Per-machine delivery
            // tracking therefore under-approximates held versions; bound
            // the check by the key's allgather high-water mark instead.
            // This is deliberately loose — the final AllGather chunk of a
            // collective always precedes any consume of its result, so the
            // mark never runs ahead of a legal consume.
            let high = self.allgather_high.get(&key).copied().unwrap_or(0);
            have = have.max(high);
        }
        if have < round {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "worker {worker} consumes k{key} at round {round} while holding version {have}"
                ),
            );
        }
    }
}
