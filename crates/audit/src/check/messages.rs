//! Message-lifecycle checkers: egress enqueue/dequeue accounting, wire
//! transfers, byte conservation between attempts, priority inversions,
//! and in-flight windows.

use super::{is_push_class, Checker, ROLE_WORKER};
use crate::report::Invariant;
use p3_trace::MsgClass;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MsgState {
    /// Enqueued on an egress queue, not yet transmitting.
    Queued,
    /// Occupying the fabric.
    InFlight,
    /// Last byte delivered (and, for pushes, claimable by an aggregation).
    Delivered,
    /// Died in the fabric; retry timer pending.
    Lost,
    /// Retransmit decided; the re-enqueue is due.
    RetryPending,
    /// Abandoned, cancelled, or destroyed by a crash.
    Dead,
}

#[derive(Debug, Clone)]
pub(crate) struct MsgInfo {
    pub(crate) endpoint: (usize, u8),
    pub(crate) class: MsgClass,
    pub(crate) key: usize,
    pub(crate) round: u64,
    pub(crate) priority: u32,
    pub(crate) bytes: Option<u64>,
    pub(crate) dst: Option<usize>,
    pub(crate) state: MsgState,
    pub(crate) open_start: Option<u64>,
}

impl Checker {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_enqueue(
        &mut self,
        i: usize,
        t: u64,
        endpoint: (usize, u8),
        msg_id: u64,
        class: MsgClass,
        key: usize,
        round: u64,
        priority: u32,
        queue_depth: usize,
    ) {
        if matches!(class, MsgClass::RackPush | MsgClass::CombinedPush) && !self.rack_seen {
            // Rack-local aggregation folds several workers into one wire
            // message; per-worker aggregation accounting no longer applies.
            self.rack_seen = true;
            self.agg_members.clear();
        }
        if endpoint.1 == ROLE_WORKER
            && matches!(
                class,
                MsgClass::Push | MsgClass::RackPush | MsgClass::ReduceScatter
            )
            && !self.grad_ready.contains(&(endpoint.0, key, round))
        {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "worker {} enqueues a push for k{key} r{round} before its gradient is ready",
                    endpoint.0
                ),
            );
        }
        match self.msgs.get_mut(&msg_id) {
            None => {
                self.msgs.insert(
                    msg_id,
                    MsgInfo {
                        endpoint,
                        class,
                        key,
                        round,
                        priority,
                        bytes: None,
                        dst: None,
                        state: MsgState::Queued,
                        open_start: None,
                    },
                );
            }
            Some(info) => {
                if info.state != MsgState::RetryPending {
                    let state = info.state;
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("msg {msg_id} re-enqueued while {state:?} (no retransmit decided)"),
                    );
                }
                if info.endpoint != endpoint || info.priority != priority {
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("msg {msg_id} retransmitted from a different endpoint or priority"),
                    );
                }
                info.state = MsgState::Queued;
            }
        }
        let q = self.queued.entry(endpoint).or_default();
        q.insert(msg_id, priority);
        let depth = q.len();
        if depth != queue_depth {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "endpoint m{}/{} reports queue depth {queue_depth} but {depth} messages are \
                     queued",
                    endpoint.0,
                    if endpoint.1 == ROLE_WORKER {
                        "worker"
                    } else {
                        "server"
                    }
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_wire_start(
        &mut self,
        i: usize,
        t: u64,
        msg_id: u64,
        src: usize,
        dst: usize,
        bytes: u64,
        priority: u32,
    ) {
        let Some(info) = self.msgs.get_mut(&msg_id) else {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} starts transmitting without ever being enqueued"),
            );
            return;
        };
        if info.state != MsgState::Queued {
            let state = info.state;
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} starts transmitting while {state:?}"),
            );
        }
        if info.endpoint.0 != src {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "msg {msg_id} transmits from machine {src} but was enqueued on machine {}",
                    info.endpoint.0
                ),
            );
        }
        if info.priority != priority {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "msg {msg_id} transmits at priority {priority} but was enqueued at {}",
                    info.priority
                ),
            );
        }
        match info.bytes {
            None => info.bytes = Some(bytes),
            Some(b) if b != bytes => {
                self.rep.violate(
                    Invariant::ByteConservation,
                    Some(i),
                    t,
                    format!("msg {msg_id} changed size between attempts: {b} -> {bytes} bytes"),
                );
            }
            _ => {}
        }
        if let Some(d) = info.dst {
            if d != dst {
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!("msg {msg_id} changed destination between attempts: {d} -> {dst}"),
                );
            }
        }
        info.dst = Some(dst);
        info.state = MsgState::InFlight;
        info.open_start = Some(t);
        let endpoint = info.endpoint;
        let msg_prio = priority;

        if let Some(q) = self.queued.get_mut(&endpoint) {
            q.remove(&msg_id);
        }
        if self.opts.single_consumer == Some(true) {
            let inversion = self
                .queued
                .get(&endpoint)
                .into_iter()
                .flatten()
                .filter(|&(_, &p)| p < msg_prio)
                .map(|(&id, &p)| (id, p))
                .next();
            if let Some((qid, qp)) = inversion {
                self.rep.violate(
                    Invariant::PriorityInversion,
                    Some(i),
                    t,
                    format!(
                        "msg {msg_id} (priority {msg_prio}) starts while more urgent msg {qid} \
                         (priority {qp}) waits in the same queue"
                    ),
                );
            }
        }

        let n = self.inflight.entry(endpoint).or_insert(0);
        *n += 1;
        let n = *n;
        match self.opts.single_consumer {
            Some(true) => {
                if let Some(w) = self.opts.window {
                    if n > w {
                        self.rep.violate(
                            Invariant::InFlightWindow,
                            Some(i),
                            t,
                            format!(
                                "endpoint m{}/{} has {n} messages in flight (window {w})",
                                endpoint.0, endpoint.1
                            ),
                        );
                    }
                }
            }
            Some(false) => {
                let lane = (endpoint.0, endpoint.1, dst);
                if let Some(&other) = self.lane_busy.get(&lane) {
                    self.rep.violate(
                        Invariant::InFlightWindow,
                        Some(i),
                        t,
                        format!(
                            "msg {msg_id} starts on FIFO lane m{}->m{dst} while msg {other} is \
                             still in flight",
                            endpoint.0
                        ),
                    );
                }
                self.lane_busy.insert(lane, msg_id);
            }
            None => {}
        }
    }

    pub(super) fn on_wire_end(
        &mut self,
        i: usize,
        t: u64,
        msg_id: u64,
        src: usize,
        dst: usize,
        bytes: u64,
    ) {
        let Some(info) = self.msgs.get_mut(&msg_id) else {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} delivered without ever being enqueued"),
            );
            return;
        };
        if info.state != MsgState::InFlight {
            let state = info.state;
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} delivered while {state:?}"),
            );
        }
        if info.bytes.is_some_and(|b| b != bytes) || info.dst.is_some_and(|d| d != dst) {
            self.rep.violate(
                Invariant::ByteConservation,
                Some(i),
                t,
                format!(
                    "msg {msg_id} delivered as {bytes} bytes to m{dst} but started as {:?} bytes \
                     to m{:?}",
                    info.bytes, info.dst
                ),
            );
        }
        info.state = MsgState::Delivered;
        let endpoint = info.endpoint;
        let class = info.class;
        let key = info.key;
        let round = info.round;
        if let Some(t0) = info.open_start.take() {
            if src != dst {
                self.attempts.push(super::Attempt {
                    src,
                    dst,
                    start: t0,
                    end: t,
                    bytes,
                });
            }
        }
        if let Some(n) = self.inflight.get_mut(&endpoint) {
            *n = n.saturating_sub(1);
        }
        self.lane_busy.remove(&(endpoint.0, endpoint.1, dst));

        if is_push_class(class) {
            // `worker` on the matching AggStart is the pushing machine
            // (the rack aggregator, for combined pushes).
            self.delivered_pushes
                .entry((dst, key, round, src))
                .or_default()
                .push(msg_id);
        }
        // Allgather chunks are the collective backends' parameter
        // deliveries: like a PS response, they advance the receiving
        // worker's slice version (the chunk's `round` is the
        // post-collective version).
        if matches!(class, MsgClass::Response | MsgClass::AllGather) && !self.crashed.contains(&dst)
        {
            let have = self.received.entry((dst, key)).or_insert(0);
            *have = (*have).max(round);
        }
        if class == MsgClass::AllGather {
            // Per-key high-water mark, crashed receivers included: a
            // collective rejoin later adopts these versions in place.
            let high = self.allgather_high.entry(key).or_insert(0);
            *high = (*high).max(round);
        }
    }

    pub(super) fn msg_transition(
        &mut self,
        i: usize,
        t: u64,
        msg_id: Option<u64>,
        from: MsgState,
        to: MsgState,
        what: &str,
    ) {
        let Some(id) = msg_id else { return };
        match self.msgs.get_mut(&id) {
            Some(info) => {
                if info.state != from {
                    let state = info.state;
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("msg {id} {what} while {state:?} (expected {from:?})"),
                    );
                }
                info.state = to;
            }
            None => {
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!("msg {id} {what} but was never enqueued"),
                );
            }
        }
    }
}
