//! The replay checker: one forward pass over the event log driving a small
//! model of every entity the simulator traces, flagging any transition the
//! real system could not have produced.
//!
//! The checker families live one per module: [`messages`] (egress queues,
//! wire transfers, retransmit state machines), [`compute`] (worker
//! compute/stall accounting), [`aggregation`] (server processing units and
//! round versions), [`faults`] (crash/rejoin/loss/abort transitions), and
//! [`capacity`] (Hall-style port-feasibility windows). This module owns
//! the shared replay state ([`Checker`]), the event dispatch, and the
//! report assembly.

mod aggregation;
mod capacity;
mod compute;
mod faults;
mod messages;

use crate::report::{AuditReport, Invariant, Violation};
use capacity::Attempt;
use compute::WorkerState;
use messages::{MsgInfo, MsgState};
use p3_trace::{EndpointRole, MsgClass, TraceEvent, TraceLog, TraceMeta};
use std::collections::{BTreeMap, BTreeSet};

/// Violations reported per invariant before the rest are counted as
/// suppressed: enough to diagnose, bounded on pathological traces.
const MAX_PER_INVARIANT: usize = 20;

/// What the auditor may assume about the run beyond the events themselves.
///
/// Every field is optional; `None` skips the checks that need it (the
/// report's `skipped` notes say so). Build one from exported metadata with
/// [`AuditOptions::from_meta`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditOptions {
    /// Number of machines (workers == server shards) in the run.
    pub machines: Option<usize>,
    /// Whether endpoints use single-consumer strict-priority egress
    /// (`true`, P3) or per-destination FIFO lanes (`false`, baseline).
    pub single_consumer: Option<bool>,
    /// In-flight window per single-consumer endpoint.
    pub window: Option<usize>,
    /// Effective per-direction NIC capacity in bytes/sec on a uniform
    /// fabric.
    pub port_bytes_per_sec: Option<f64>,
    /// Whether aggregation ran over a collective backend (ring /
    /// halving–doubling). Collective rejoins adopt the completed versions
    /// in place — no resync messages cross the wire — so the version
    /// model syncs the rejoiner from the allgather high-water marks.
    pub collective: Option<bool>,
}

impl AuditOptions {
    /// Adopts whatever an exported trace's metadata pins down.
    pub fn from_meta(meta: &TraceMeta) -> AuditOptions {
        AuditOptions {
            machines: (meta.machines > 0).then_some(meta.machines),
            single_consumer: meta.single_consumer,
            window: meta.window,
            port_bytes_per_sec: meta.port_bytes_per_sec,
            collective: meta.collective,
        }
    }
}

/// Audits a trace using only what the event stream itself implies
/// (configuration-dependent checks are skipped). See [`check_with`].
pub fn check(log: &TraceLog) -> AuditReport {
    check_with(log, &AuditOptions::default())
}

/// Audits a trace against the full invariant catalog
/// ([`Invariant`](crate::Invariant)), enabling the configuration-dependent
/// checks `opts` provides facts for.
pub fn check_with(log: &TraceLog, opts: &AuditOptions) -> AuditReport {
    let mut c = Checker::new(opts.clone());
    for (i, e) in log.events().iter().enumerate() {
        c.step(i, e.at.as_nanos(), &e.event);
    }
    c.finish(log.len())
}

/// Violation bookkeeping, split out so handlers can report while holding
/// mutable borrows of the replay state.
#[derive(Debug, Default)]
pub(crate) struct Reporter {
    violations: Vec<Violation>,
    per_invariant: BTreeMap<Invariant, usize>,
    suppressed: usize,
}

impl Reporter {
    pub(crate) fn violate(
        &mut self,
        inv: Invariant,
        index: Option<usize>,
        at: u64,
        message: String,
    ) {
        let n = self.per_invariant.entry(inv).or_insert(0);
        *n += 1;
        if *n > MAX_PER_INVARIANT {
            self.suppressed += 1;
            return;
        }
        self.violations.push(Violation {
            invariant: inv,
            index,
            at_nanos: at,
            message,
        });
    }
}

pub(crate) struct Checker {
    opts: AuditOptions,
    rep: Reporter,

    prev_t: u64,
    msgs: BTreeMap<u64, MsgInfo>,
    queued: BTreeMap<(usize, u8), BTreeMap<u64, u32>>,
    inflight: BTreeMap<(usize, u8), usize>,
    lane_busy: BTreeMap<(usize, u8, usize), u64>,
    attempts: Vec<Attempt>,
    grad_ready: BTreeSet<(usize, usize, u64)>,
    delivered_pushes: BTreeMap<(usize, usize, u64, usize), Vec<u64>>,
    received: BTreeMap<(usize, usize), u64>,
    allgather_high: BTreeMap<usize, u64>,
    crashed: BTreeSet<usize>,
    versions: BTreeMap<(usize, usize), u64>,
    open_agg: BTreeMap<usize, (usize, u64, usize)>,
    agg_members: BTreeMap<(usize, usize, u64), BTreeSet<usize>>,
    rack_seen: bool,
    workers: BTreeMap<usize, WorkerState>,
}

pub(crate) const ROLE_WORKER: u8 = 0;
pub(crate) const ROLE_SERVER: u8 = 1;

fn role_code(r: EndpointRole) -> u8 {
    match r {
        EndpointRole::Worker => ROLE_WORKER,
        EndpointRole::Server => ROLE_SERVER,
    }
}

fn is_push_class(c: MsgClass) -> bool {
    matches!(c, MsgClass::Push | MsgClass::CombinedPush)
}

impl Checker {
    fn new(opts: AuditOptions) -> Checker {
        Checker {
            opts,
            rep: Reporter::default(),
            prev_t: 0,
            msgs: BTreeMap::new(),
            queued: BTreeMap::new(),
            inflight: BTreeMap::new(),
            lane_busy: BTreeMap::new(),
            attempts: Vec::new(),
            grad_ready: BTreeSet::new(),
            delivered_pushes: BTreeMap::new(),
            received: BTreeMap::new(),
            allgather_high: BTreeMap::new(),
            crashed: BTreeSet::new(),
            versions: BTreeMap::new(),
            open_agg: BTreeMap::new(),
            agg_members: BTreeMap::new(),
            rack_seen: false,
            workers: BTreeMap::new(),
        }
    }

    fn worker(&mut self, w: usize) -> &mut WorkerState {
        self.workers.entry(w).or_insert_with(|| WorkerState {
            window_valid: true,
            ..WorkerState::default()
        })
    }

    fn step(&mut self, i: usize, t: u64, ev: &TraceEvent) {
        if t < self.prev_t {
            self.rep.violate(
                Invariant::MonotoneClock,
                Some(i),
                t,
                format!(
                    "recorded at {t}ns after an event at {}ns — the DES clock ran backwards",
                    self.prev_t
                ),
            );
        }
        self.prev_t = self.prev_t.max(t);

        match *ev {
            TraceEvent::ComputeStart {
                worker,
                phase,
                block,
            } => self.on_compute_start(i, t, worker, phase as u8, block),
            TraceEvent::ComputeEnd {
                worker,
                phase,
                block,
            } => self.on_compute_end(i, t, worker, phase as u8, block),
            TraceEvent::StallStart { worker, block } => self.on_stall_start(i, t, worker, block),
            TraceEvent::StallEnd { worker, block } => self.on_stall_end(i, t, worker, block),
            TraceEvent::IterationEnd { worker, .. } => self.on_iteration_end(i, t, worker),
            TraceEvent::GradReady {
                worker, key, round, ..
            } => {
                self.grad_ready.insert((worker, key, round));
            }
            TraceEvent::EgressEnqueue {
                machine,
                role,
                msg_id,
                class,
                key,
                round,
                priority,
                queue_depth,
            } => {
                self.on_enqueue(
                    i,
                    t,
                    (machine, role_code(role)),
                    msg_id,
                    class,
                    key,
                    round,
                    priority,
                    queue_depth,
                );
            }
            TraceEvent::WireStart {
                msg_id,
                src,
                dst,
                bytes,
                priority,
            } => {
                self.on_wire_start(i, t, msg_id, src, dst, bytes, priority);
            }
            TraceEvent::WireEnd {
                msg_id,
                src,
                dst,
                bytes,
                ..
            } => {
                self.on_wire_end(i, t, msg_id, src, dst, bytes);
            }
            TraceEvent::AggStart {
                server,
                key,
                round,
                worker,
            } => {
                self.on_agg_start(i, t, server, key, round, worker);
            }
            TraceEvent::AggEnd {
                server,
                key,
                round,
                worker,
            } => {
                self.on_agg_end(i, t, server, key, round, worker);
            }
            TraceEvent::RoundComplete {
                server,
                key,
                version,
                degraded,
            } => {
                self.on_round_complete(i, t, server, key, version, degraded);
            }
            TraceEvent::SliceConsumed { worker, key, round } => {
                self.on_slice_consumed(i, t, worker, key, round);
            }
            TraceEvent::Fault {
                kind,
                machine,
                msg_id,
            } => {
                self.on_fault(i, t, kind, machine, msg_id);
            }
            // A state-hash row is a pure digest of the run so far; it
            // drives no entity model (resume-equivalence compares them
            // across runs instead).
            TraceEvent::StateHash { .. } => {}
        }
    }

    fn conservation_enabled(&self) -> bool {
        self.opts.machines.is_some() && !self.rack_seen
    }

    fn finish(mut self, events: usize) -> AuditReport {
        let mut skipped = Vec::new();
        match self.opts.port_bytes_per_sec {
            Some(cap) if cap > 0.0 => self.check_capacity(cap),
            _ => skipped.push(
                "capacity-feasibility: no uniform port capacity in the trace metadata \
                 (topology fabrics carry per-link limits the flat check cannot express)"
                    .to_string(),
            ),
        }
        if self.opts.single_consumer.is_none() {
            skipped.push(
                "priority-inversion / in-flight-window: egress discipline unknown (no metadata)"
                    .to_string(),
            );
        }
        if !self.conservation_enabled() {
            skipped.push(if self.rack_seen {
                "per-round aggregation accounting: rack-local aggregation combines workers"
                    .to_string()
            } else {
                "per-round aggregation accounting: machine count unknown (no metadata)".to_string()
            });
        }
        AuditReport {
            events,
            violations: self.rep.violations,
            suppressed: self.rep.suppressed,
            skipped,
        }
    }
}
