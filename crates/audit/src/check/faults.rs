//! Fault-transition checkers: loss/retransmit/give-up state machines,
//! flow cancellation, crash/rejoin teardown, and collective aborts.

use super::{is_push_class, Checker, MsgState, ROLE_WORKER};
use crate::report::Invariant;
use p3_trace::{FaultKind, MsgClass};

impl Checker {
    pub(super) fn on_fault(
        &mut self,
        i: usize,
        t: u64,
        kind: FaultKind,
        machine: usize,
        msg_id: Option<u64>,
    ) {
        match kind {
            FaultKind::Loss => {
                self.msg_transition(i, t, msg_id, MsgState::Delivered, MsgState::Lost, "lost");
                if let Some(id) = msg_id {
                    if let Some(info) = self.msgs.get(&id) {
                        if is_push_class(info.class) {
                            if let (Some(dst), key, round) = (info.dst, info.key, info.round) {
                                if let Some(ids) = self.delivered_pushes.get_mut(&(
                                    dst,
                                    key,
                                    round,
                                    info.endpoint.0,
                                )) {
                                    ids.retain(|&x| x != id);
                                }
                            }
                        }
                    }
                }
            }
            FaultKind::Retransmit => {
                self.msg_transition(
                    i,
                    t,
                    msg_id,
                    MsgState::Lost,
                    MsgState::RetryPending,
                    "retransmitted",
                );
            }
            FaultKind::GiveUp => {
                self.msg_transition(i, t, msg_id, MsgState::Lost, MsgState::Dead, "abandoned");
            }
            FaultKind::FlowCancelled => {
                if let Some(id) = msg_id {
                    if let Some(info) = self.msgs.get_mut(&id) {
                        if info.state != MsgState::InFlight {
                            let state = info.state;
                            self.rep.violate(
                                Invariant::CausalOrder,
                                Some(i),
                                t,
                                format!("msg {id} cancelled while {state:?} (not in flight)"),
                            );
                        }
                        info.state = MsgState::Dead;
                        info.open_start = None;
                        let endpoint = info.endpoint;
                        let dst = info.dst;
                        if let Some(n) = self.inflight.get_mut(&endpoint) {
                            *n = n.saturating_sub(1);
                        }
                        if let Some(d) = dst {
                            self.lane_busy.remove(&(endpoint.0, endpoint.1, d));
                        }
                    }
                }
            }
            FaultKind::Crash => {
                self.crashed.insert(machine);
                // The dead process's queued (and retry-pending) messages
                // are destroyed with it; in-flight ones are cancelled by
                // the FlowCancelled events that follow.
                let endpoint = (machine, ROLE_WORKER);
                if let Some(q) = self.queued.get_mut(&endpoint) {
                    for (id, _) in std::mem::take(q) {
                        if let Some(info) = self.msgs.get_mut(&id) {
                            info.state = MsgState::Dead;
                        }
                    }
                }
                for info in self.msgs.values_mut() {
                    if info.endpoint == endpoint
                        && matches!(info.state, MsgState::Lost | MsgState::RetryPending)
                    {
                        info.state = MsgState::Dead;
                    }
                }
                let st = self.worker(machine);
                st.open_compute = None;
                st.window_valid = false;
                st.window_start = None;
                st.compute_ns = 0;
                st.stall_ns = 0;
                // An open stall is closed by the StallEnd the crash emits.
            }
            FaultKind::Rejoin => {
                self.crashed.remove(&machine);
                // Collective rejoin resyncs in place (no pull/response
                // messages cross the wire): the restarted process adopts
                // every collectively-completed version. The consume check
                // models this with the allgather high-water marks — see
                // `on_slice_consumed` — which also covers versions the
                // group completes after the rejoin while the rank is still
                // excluded from a reformed survivor group.
                let st = self.worker(machine);
                st.window_valid = false;
                st.window_start = None;
            }
            FaultKind::CollectiveAbort => {
                // The in-flight collective was torn down: every surviving
                // chunk that was not individually cancelled (queued on a
                // live sender's egress, or lost/awaiting retransmit) is
                // silently purged by the engine, so the replay must retire
                // it too — and forget it in the per-endpoint queue model,
                // or the next enqueue's reported depth would mismatch.
                // Only one collective is in flight at a time, so every
                // live chunk message belongs to the aborted one.
                let chunk_ids: Vec<u64> = self
                    .msgs
                    .iter()
                    .filter(|(_, info)| {
                        matches!(info.class, MsgClass::ReduceScatter | MsgClass::AllGather)
                            && matches!(
                                info.state,
                                MsgState::Queued | MsgState::Lost | MsgState::RetryPending
                            )
                    })
                    .map(|(&id, _)| id)
                    .collect();
                for id in chunk_ids {
                    if let Some(info) = self.msgs.get_mut(&id) {
                        if info.state == MsgState::Queued {
                            if let Some(q) = self.queued.get_mut(&info.endpoint) {
                                q.remove(&id);
                            }
                        }
                        info.state = MsgState::Dead;
                    }
                }
            }
            FaultKind::Eviction
            | FaultKind::DegradedRound
            | FaultKind::StalePush
            | FaultKind::DuplicatePush => {}
        }
    }
}
