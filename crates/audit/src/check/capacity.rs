//! Port-capacity feasibility: Hall-style windows over every busy period
//! of every NIC port, in both directions.

use super::Checker;
use crate::report::Invariant;
use std::collections::BTreeMap;

/// Work cap for the quadratic capacity-window scan of one busy period;
/// beyond it window anchors are strided (the check stays sound, just
/// coarser).
const CAPACITY_WORK_CAP: u64 = 4_000_000;

/// Relative tolerance on capacity windows, covering the fluid allocator's
/// floating-point drains.
const CAPACITY_REL_TOL: f64 = 1e-6;
/// Absolute byte slack per capacity window.
const CAPACITY_ABS_SLACK: f64 = 2048.0;

/// One completed wire transfer, kept for the offline capacity scan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Attempt {
    pub(crate) src: usize,
    pub(crate) dst: usize,
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) bytes: u64,
}

impl Checker {
    /// Hall-style feasibility: for any window `[a, b]`, flows fully inside
    /// it cannot deliver more than `cap * (b - a)` bytes through one port.
    /// Delivery spans include the propagation latency, which only loosens
    /// the bound, so a violation is a genuine over-commitment.
    pub(super) fn check_capacity(&mut self, cap: f64) {
        let attempts = std::mem::take(&mut self.attempts);
        let mut tx: BTreeMap<usize, Vec<Attempt>> = BTreeMap::new();
        let mut rx: BTreeMap<usize, Vec<Attempt>> = BTreeMap::new();
        for a in attempts {
            tx.entry(a.src).or_default().push(a);
            rx.entry(a.dst).or_default().push(a);
        }
        for (port, mut list, dir) in tx
            .into_iter()
            .map(|(p, l)| (p, l, "tx"))
            .chain(rx.into_iter().map(|(p, l)| (p, l, "rx")))
        {
            list.sort_by_key(|a| (a.start, a.end));
            let mut period: Vec<Attempt> = Vec::new();
            let mut max_end = 0u64;
            let mut done = false;
            for a in list.into_iter().chain(std::iter::once(Attempt {
                src: 0,
                dst: 0,
                start: u64::MAX,
                end: u64::MAX,
                bytes: 0,
            })) {
                if a.start >= max_end && !period.is_empty() {
                    if self.check_busy_period(cap, port, dir, &period) {
                        done = true;
                    }
                    period.clear();
                }
                if done {
                    break;
                }
                if a.start != u64::MAX {
                    max_end = max_end.max(a.end);
                    period.push(a);
                }
            }
        }
    }

    /// Checks one maximal busy period of a port; returns true once a
    /// violation is recorded (one per port is enough to act on).
    fn check_busy_period(&mut self, cap: f64, port: usize, dir: &str, period: &[Attempt]) -> bool {
        let mut by_end: Vec<&Attempt> = period.iter().collect();
        by_end.sort_by_key(|a| (a.end, a.start));
        let k = period.len() as u64;
        let stride = ((k * k) / CAPACITY_WORK_CAP + 1) as usize;
        for anchor in period.iter().step_by(stride) {
            let a = anchor.start;
            let mut sum = 0u64;
            for iv in &by_end {
                if iv.start < a || iv.end <= a {
                    continue;
                }
                sum += iv.bytes;
                let span_secs = (iv.end - a) as f64 / 1e9;
                if sum as f64 > cap * span_secs * (1.0 + CAPACITY_REL_TOL) + CAPACITY_ABS_SLACK {
                    self.rep.violate(
                        Invariant::CapacityFeasibility,
                        None,
                        a,
                        format!(
                            "port m{port} ({dir}): {sum} bytes delivered in a {:.3}ms window — \
                             exceeds capacity {:.0} bytes/sec",
                            (iv.end - a) as f64 / 1e6,
                            cap
                        ),
                    );
                    return true;
                }
            }
        }
        false
    }
}
