//! Worker-side checkers: serial compute/stall segments and exact
//! iteration-window time accounting.

use super::Checker;
use crate::report::Invariant;

#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerState {
    pub(crate) open_compute: Option<(u64, u8, usize)>,
    pub(crate) open_stall: Option<(u64, usize)>,
    pub(crate) window_start: Option<u64>,
    pub(crate) window_valid: bool,
    pub(crate) compute_ns: u64,
    pub(crate) stall_ns: u64,
}

impl Checker {
    pub(super) fn on_compute_start(
        &mut self,
        i: usize,
        t: u64,
        worker: usize,
        ph: u8,
        block: usize,
    ) {
        let st = self.worker(worker);
        if st.window_start.is_none() {
            st.window_start = Some(t);
        }
        let busy = st.open_compute.is_some() || st.open_stall.is_some();
        st.open_compute = Some((t, ph, block));
        if busy {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("worker {worker} starts compute while already busy"),
            );
        }
    }

    pub(super) fn on_compute_end(&mut self, i: usize, t: u64, worker: usize, ph: u8, block: usize) {
        let st = self.worker(worker);
        match st.open_compute.take() {
            Some((t0, p0, b0)) if p0 == ph && b0 == block => {
                st.compute_ns += t - t0;
            }
            other => {
                st.open_compute = None;
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!(
                        "worker {worker} ends compute segment {ph}/{block} but {other:?} was open"
                    ),
                );
            }
        }
    }

    pub(super) fn on_stall_start(&mut self, i: usize, t: u64, worker: usize, block: usize) {
        let st = self.worker(worker);
        if st.window_start.is_none() {
            st.window_start = Some(t);
        }
        let busy = st.open_compute.is_some() || st.open_stall.is_some();
        st.open_stall = Some((t, block));
        if busy {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("worker {worker} stalls while already busy"),
            );
        }
    }

    pub(super) fn on_stall_end(&mut self, i: usize, t: u64, worker: usize, block: usize) {
        let st = self.worker(worker);
        match st.open_stall.take() {
            Some((t0, b0)) if b0 == block => {
                st.stall_ns += t - t0;
            }
            other => {
                st.open_stall = None;
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!("worker {worker} ends a stall on block {block} but {other:?} was open"),
                );
            }
        }
    }

    pub(super) fn on_iteration_end(&mut self, i: usize, t: u64, worker: usize) {
        let st = self.worker(worker);
        let mut mismatch = None;
        if st.window_valid {
            if let Some(t0) = st.window_start {
                let span = t.saturating_sub(t0);
                let accounted = st.compute_ns + st.stall_ns;
                if accounted != span {
                    mismatch = Some((span, st.compute_ns, st.stall_ns));
                }
            }
        }
        st.window_valid = true;
        st.window_start = Some(t);
        st.compute_ns = 0;
        st.stall_ns = 0;
        if let Some((span, compute, stall)) = mismatch {
            self.rep.violate(
                Invariant::StallAccounting,
                Some(i),
                t,
                format!(
                    "worker {worker}: iteration span {span}ns != compute {compute}ns + stall \
                     {stall}ns (unaccounted {}ns)",
                    span as i128 - (compute + stall) as i128
                ),
            );
        }
    }
}
