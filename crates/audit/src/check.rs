//! The replay checker: one forward pass over the event log driving a small
//! model of every entity the simulator traces (messages, egress queues,
//! NIC ports, server processing units, worker compute), flagging any
//! transition the real system could not have produced.

// p3-lint: allow(file-length): pre-existing; the per-entity checker split
// is tracked in ROADMAP.md "Open items".

use crate::report::{AuditReport, Invariant, Violation};
use p3_trace::{EndpointRole, FaultKind, MsgClass, TraceEvent, TraceLog, TraceMeta};
use std::collections::{BTreeMap, BTreeSet};

/// Violations reported per invariant before the rest are counted as
/// suppressed: enough to diagnose, bounded on pathological traces.
const MAX_PER_INVARIANT: usize = 20;

/// Work cap for the quadratic capacity-window scan of one busy period;
/// beyond it window anchors are strided (the check stays sound, just
/// coarser).
const CAPACITY_WORK_CAP: u64 = 4_000_000;

/// Relative tolerance on capacity windows, covering the fluid allocator's
/// floating-point drains.
const CAPACITY_REL_TOL: f64 = 1e-6;
/// Absolute byte slack per capacity window.
const CAPACITY_ABS_SLACK: f64 = 2048.0;

/// What the auditor may assume about the run beyond the events themselves.
///
/// Every field is optional; `None` skips the checks that need it (the
/// report's `skipped` notes say so). Build one from exported metadata with
/// [`AuditOptions::from_meta`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditOptions {
    /// Number of machines (workers == server shards) in the run.
    pub machines: Option<usize>,
    /// Whether endpoints use single-consumer strict-priority egress
    /// (`true`, P3) or per-destination FIFO lanes (`false`, baseline).
    pub single_consumer: Option<bool>,
    /// In-flight window per single-consumer endpoint.
    pub window: Option<usize>,
    /// Effective per-direction NIC capacity in bytes/sec on a uniform
    /// fabric.
    pub port_bytes_per_sec: Option<f64>,
}

impl AuditOptions {
    /// Adopts whatever an exported trace's metadata pins down.
    pub fn from_meta(meta: &TraceMeta) -> AuditOptions {
        AuditOptions {
            machines: (meta.machines > 0).then_some(meta.machines),
            single_consumer: meta.single_consumer,
            window: meta.window,
            port_bytes_per_sec: meta.port_bytes_per_sec,
        }
    }
}

/// Audits a trace using only what the event stream itself implies
/// (configuration-dependent checks are skipped). See [`check_with`].
pub fn check(log: &TraceLog) -> AuditReport {
    check_with(log, &AuditOptions::default())
}

/// Audits a trace against the full invariant catalog
/// ([`Invariant`](crate::Invariant)), enabling the configuration-dependent
/// checks `opts` provides facts for.
pub fn check_with(log: &TraceLog, opts: &AuditOptions) -> AuditReport {
    let mut c = Checker::new(opts.clone());
    for (i, e) in log.events().iter().enumerate() {
        c.step(i, e.at.as_nanos(), &e.event);
    }
    c.finish(log.len())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgState {
    /// Enqueued on an egress queue, not yet transmitting.
    Queued,
    /// Occupying the fabric.
    InFlight,
    /// Last byte delivered (and, for pushes, claimable by an aggregation).
    Delivered,
    /// Died in the fabric; retry timer pending.
    Lost,
    /// Retransmit decided; the re-enqueue is due.
    RetryPending,
    /// Abandoned, cancelled, or destroyed by a crash.
    Dead,
}

#[derive(Debug, Clone)]
struct MsgInfo {
    endpoint: (usize, u8),
    class: MsgClass,
    key: usize,
    round: u64,
    priority: u32,
    bytes: Option<u64>,
    dst: Option<usize>,
    state: MsgState,
    open_start: Option<u64>,
}

#[derive(Debug, Clone, Default)]
struct WorkerState {
    open_compute: Option<(u64, u8, usize)>,
    open_stall: Option<(u64, usize)>,
    window_start: Option<u64>,
    window_valid: bool,
    compute_ns: u64,
    stall_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct Attempt {
    src: usize,
    dst: usize,
    start: u64,
    end: u64,
    bytes: u64,
}

/// Violation bookkeeping, split out so handlers can report while holding
/// mutable borrows of the replay state.
#[derive(Debug, Default)]
struct Reporter {
    violations: Vec<Violation>,
    per_invariant: BTreeMap<Invariant, usize>,
    suppressed: usize,
}

impl Reporter {
    fn violate(&mut self, inv: Invariant, index: Option<usize>, at: u64, message: String) {
        let n = self.per_invariant.entry(inv).or_insert(0);
        *n += 1;
        if *n > MAX_PER_INVARIANT {
            self.suppressed += 1;
            return;
        }
        self.violations.push(Violation {
            invariant: inv,
            index,
            at_nanos: at,
            message,
        });
    }
}

struct Checker {
    opts: AuditOptions,
    rep: Reporter,

    prev_t: u64,
    msgs: BTreeMap<u64, MsgInfo>,
    queued: BTreeMap<(usize, u8), BTreeMap<u64, u32>>,
    inflight: BTreeMap<(usize, u8), usize>,
    lane_busy: BTreeMap<(usize, u8, usize), u64>,
    attempts: Vec<Attempt>,
    grad_ready: BTreeSet<(usize, usize, u64)>,
    delivered_pushes: BTreeMap<(usize, usize, u64, usize), Vec<u64>>,
    received: BTreeMap<(usize, usize), u64>,
    crashed: BTreeSet<usize>,
    versions: BTreeMap<(usize, usize), u64>,
    open_agg: BTreeMap<usize, (usize, u64, usize)>,
    agg_members: BTreeMap<(usize, usize, u64), BTreeSet<usize>>,
    rack_seen: bool,
    workers: BTreeMap<usize, WorkerState>,
}

const ROLE_WORKER: u8 = 0;
const ROLE_SERVER: u8 = 1;

fn role_code(r: EndpointRole) -> u8 {
    match r {
        EndpointRole::Worker => ROLE_WORKER,
        EndpointRole::Server => ROLE_SERVER,
    }
}

fn is_push_class(c: MsgClass) -> bool {
    matches!(c, MsgClass::Push | MsgClass::CombinedPush)
}

impl Checker {
    fn new(opts: AuditOptions) -> Checker {
        Checker {
            opts,
            rep: Reporter::default(),
            prev_t: 0,
            msgs: BTreeMap::new(),
            queued: BTreeMap::new(),
            inflight: BTreeMap::new(),
            lane_busy: BTreeMap::new(),
            attempts: Vec::new(),
            grad_ready: BTreeSet::new(),
            delivered_pushes: BTreeMap::new(),
            received: BTreeMap::new(),
            crashed: BTreeSet::new(),
            versions: BTreeMap::new(),
            open_agg: BTreeMap::new(),
            agg_members: BTreeMap::new(),
            rack_seen: false,
            workers: BTreeMap::new(),
        }
    }

    fn worker(&mut self, w: usize) -> &mut WorkerState {
        self.workers.entry(w).or_insert_with(|| WorkerState {
            window_valid: true,
            ..WorkerState::default()
        })
    }

    fn step(&mut self, i: usize, t: u64, ev: &TraceEvent) {
        if t < self.prev_t {
            self.rep.violate(
                Invariant::MonotoneClock,
                Some(i),
                t,
                format!(
                    "recorded at {t}ns after an event at {}ns — the DES clock ran backwards",
                    self.prev_t
                ),
            );
        }
        self.prev_t = self.prev_t.max(t);

        match *ev {
            TraceEvent::ComputeStart {
                worker,
                phase,
                block,
            } => {
                let ph = phase as u8;
                let st = self.worker(worker);
                if st.window_start.is_none() {
                    st.window_start = Some(t);
                }
                let busy = st.open_compute.is_some() || st.open_stall.is_some();
                st.open_compute = Some((t, ph, block));
                if busy {
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("worker {worker} starts compute while already busy"),
                    );
                }
            }
            TraceEvent::ComputeEnd {
                worker,
                phase,
                block,
            } => {
                let ph = phase as u8;
                let st = self.worker(worker);
                match st.open_compute.take() {
                    Some((t0, p0, b0)) if p0 == ph && b0 == block => {
                        st.compute_ns += t - t0;
                    }
                    other => {
                        st.open_compute = None;
                        self.rep.violate(
                            Invariant::CausalOrder,
                            Some(i),
                            t,
                            format!(
                                "worker {worker} ends compute segment {ph}/{block} but {other:?} \
                                 was open"
                            ),
                        );
                    }
                }
            }
            TraceEvent::StallStart { worker, block } => {
                let st = self.worker(worker);
                if st.window_start.is_none() {
                    st.window_start = Some(t);
                }
                let busy = st.open_compute.is_some() || st.open_stall.is_some();
                st.open_stall = Some((t, block));
                if busy {
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("worker {worker} stalls while already busy"),
                    );
                }
            }
            TraceEvent::StallEnd { worker, block } => {
                let st = self.worker(worker);
                match st.open_stall.take() {
                    Some((t0, b0)) if b0 == block => {
                        st.stall_ns += t - t0;
                    }
                    other => {
                        st.open_stall = None;
                        self.rep.violate(
                            Invariant::CausalOrder,
                            Some(i),
                            t,
                            format!(
                                "worker {worker} ends a stall on block {block} but {other:?} was \
                                 open"
                            ),
                        );
                    }
                }
            }
            TraceEvent::IterationEnd { worker, .. } => {
                let st = self.worker(worker);
                let mut mismatch = None;
                if st.window_valid {
                    if let Some(t0) = st.window_start {
                        let span = t.saturating_sub(t0);
                        let accounted = st.compute_ns + st.stall_ns;
                        if accounted != span {
                            mismatch = Some((span, st.compute_ns, st.stall_ns));
                        }
                    }
                }
                st.window_valid = true;
                st.window_start = Some(t);
                st.compute_ns = 0;
                st.stall_ns = 0;
                if let Some((span, compute, stall)) = mismatch {
                    self.rep.violate(
                        Invariant::StallAccounting,
                        Some(i),
                        t,
                        format!(
                            "worker {worker}: iteration span {span}ns != compute {compute}ns + \
                             stall {stall}ns (unaccounted {}ns)",
                            span as i128 - (compute + stall) as i128
                        ),
                    );
                }
            }
            TraceEvent::GradReady {
                worker, key, round, ..
            } => {
                self.grad_ready.insert((worker, key, round));
            }
            TraceEvent::EgressEnqueue {
                machine,
                role,
                msg_id,
                class,
                key,
                round,
                priority,
                queue_depth,
            } => {
                self.on_enqueue(
                    i,
                    t,
                    (machine, role_code(role)),
                    msg_id,
                    class,
                    key,
                    round,
                    priority,
                    queue_depth,
                );
            }
            TraceEvent::WireStart {
                msg_id,
                src,
                dst,
                bytes,
                priority,
            } => {
                self.on_wire_start(i, t, msg_id, src, dst, bytes, priority);
            }
            TraceEvent::WireEnd {
                msg_id,
                src,
                dst,
                bytes,
                ..
            } => {
                self.on_wire_end(i, t, msg_id, src, dst, bytes);
            }
            TraceEvent::AggStart {
                server,
                key,
                round,
                worker,
            } => {
                self.on_agg_start(i, t, server, key, round, worker);
            }
            TraceEvent::AggEnd {
                server,
                key,
                round,
                worker,
            } => match self.open_agg.remove(&server) {
                Some((k, r, w)) if (k, r, w) == (key, round, worker) => {
                    if self.conservation_enabled() {
                        self.agg_members
                            .entry((server, key, round))
                            .or_default()
                            .insert(worker);
                    }
                }
                other => {
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!(
                            "server {server} finishes aggregating k{key} r{round} from \
                                 w{worker} but its processing unit held {other:?}"
                        ),
                    );
                }
            },
            TraceEvent::RoundComplete {
                server,
                key,
                version,
                degraded,
            } => {
                self.on_round_complete(i, t, server, key, version, degraded);
            }
            TraceEvent::SliceConsumed { worker, key, round } => {
                let have = self.received.get(&(worker, key)).copied().unwrap_or(0);
                if have < round {
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!(
                            "worker {worker} consumes k{key} at round {round} while holding \
                             version {have}"
                        ),
                    );
                }
            }
            TraceEvent::Fault {
                kind,
                machine,
                msg_id,
            } => {
                self.on_fault(i, t, kind, machine, msg_id);
            }
        }
    }

    fn conservation_enabled(&self) -> bool {
        self.opts.machines.is_some() && !self.rack_seen
    }

    #[allow(clippy::too_many_arguments)]
    fn on_enqueue(
        &mut self,
        i: usize,
        t: u64,
        endpoint: (usize, u8),
        msg_id: u64,
        class: MsgClass,
        key: usize,
        round: u64,
        priority: u32,
        queue_depth: usize,
    ) {
        if matches!(class, MsgClass::RackPush | MsgClass::CombinedPush) && !self.rack_seen {
            // Rack-local aggregation folds several workers into one wire
            // message; per-worker aggregation accounting no longer applies.
            self.rack_seen = true;
            self.agg_members.clear();
        }
        if endpoint.1 == ROLE_WORKER
            && matches!(
                class,
                MsgClass::Push | MsgClass::RackPush | MsgClass::ReduceScatter
            )
            && !self.grad_ready.contains(&(endpoint.0, key, round))
        {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "worker {} enqueues a push for k{key} r{round} before its gradient is ready",
                    endpoint.0
                ),
            );
        }
        match self.msgs.get_mut(&msg_id) {
            None => {
                self.msgs.insert(
                    msg_id,
                    MsgInfo {
                        endpoint,
                        class,
                        key,
                        round,
                        priority,
                        bytes: None,
                        dst: None,
                        state: MsgState::Queued,
                        open_start: None,
                    },
                );
            }
            Some(info) => {
                if info.state != MsgState::RetryPending {
                    let state = info.state;
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("msg {msg_id} re-enqueued while {state:?} (no retransmit decided)"),
                    );
                }
                if info.endpoint != endpoint || info.priority != priority {
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("msg {msg_id} retransmitted from a different endpoint or priority"),
                    );
                }
                info.state = MsgState::Queued;
            }
        }
        let q = self.queued.entry(endpoint).or_default();
        q.insert(msg_id, priority);
        let depth = q.len();
        if depth != queue_depth {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "endpoint m{}/{} reports queue depth {queue_depth} but {depth} messages are \
                     queued",
                    endpoint.0,
                    if endpoint.1 == ROLE_WORKER {
                        "worker"
                    } else {
                        "server"
                    }
                ),
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_wire_start(
        &mut self,
        i: usize,
        t: u64,
        msg_id: u64,
        src: usize,
        dst: usize,
        bytes: u64,
        priority: u32,
    ) {
        let Some(info) = self.msgs.get_mut(&msg_id) else {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} starts transmitting without ever being enqueued"),
            );
            return;
        };
        if info.state != MsgState::Queued {
            let state = info.state;
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} starts transmitting while {state:?}"),
            );
        }
        if info.endpoint.0 != src {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "msg {msg_id} transmits from machine {src} but was enqueued on machine {}",
                    info.endpoint.0
                ),
            );
        }
        if info.priority != priority {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "msg {msg_id} transmits at priority {priority} but was enqueued at {}",
                    info.priority
                ),
            );
        }
        match info.bytes {
            None => info.bytes = Some(bytes),
            Some(b) if b != bytes => {
                self.rep.violate(
                    Invariant::ByteConservation,
                    Some(i),
                    t,
                    format!("msg {msg_id} changed size between attempts: {b} -> {bytes} bytes"),
                );
            }
            _ => {}
        }
        if let Some(d) = info.dst {
            if d != dst {
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!("msg {msg_id} changed destination between attempts: {d} -> {dst}"),
                );
            }
        }
        info.dst = Some(dst);
        info.state = MsgState::InFlight;
        info.open_start = Some(t);
        let endpoint = info.endpoint;
        let msg_prio = priority;

        if let Some(q) = self.queued.get_mut(&endpoint) {
            q.remove(&msg_id);
        }
        if self.opts.single_consumer == Some(true) {
            let inversion = self
                .queued
                .get(&endpoint)
                .into_iter()
                .flatten()
                .filter(|&(_, &p)| p < msg_prio)
                .map(|(&id, &p)| (id, p))
                .next();
            if let Some((qid, qp)) = inversion {
                self.rep.violate(
                    Invariant::PriorityInversion,
                    Some(i),
                    t,
                    format!(
                        "msg {msg_id} (priority {msg_prio}) starts while more urgent msg {qid} \
                         (priority {qp}) waits in the same queue"
                    ),
                );
            }
        }

        let n = self.inflight.entry(endpoint).or_insert(0);
        *n += 1;
        let n = *n;
        match self.opts.single_consumer {
            Some(true) => {
                if let Some(w) = self.opts.window {
                    if n > w {
                        self.rep.violate(
                            Invariant::InFlightWindow,
                            Some(i),
                            t,
                            format!(
                                "endpoint m{}/{} has {n} messages in flight (window {w})",
                                endpoint.0, endpoint.1
                            ),
                        );
                    }
                }
            }
            Some(false) => {
                let lane = (endpoint.0, endpoint.1, dst);
                if let Some(&other) = self.lane_busy.get(&lane) {
                    self.rep.violate(
                        Invariant::InFlightWindow,
                        Some(i),
                        t,
                        format!(
                            "msg {msg_id} starts on FIFO lane m{}->m{dst} while msg {other} is \
                             still in flight",
                            endpoint.0
                        ),
                    );
                }
                self.lane_busy.insert(lane, msg_id);
            }
            None => {}
        }
    }

    fn on_wire_end(&mut self, i: usize, t: u64, msg_id: u64, src: usize, dst: usize, bytes: u64) {
        let Some(info) = self.msgs.get_mut(&msg_id) else {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} delivered without ever being enqueued"),
            );
            return;
        };
        if info.state != MsgState::InFlight {
            let state = info.state;
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!("msg {msg_id} delivered while {state:?}"),
            );
        }
        if info.bytes.is_some_and(|b| b != bytes) || info.dst.is_some_and(|d| d != dst) {
            self.rep.violate(
                Invariant::ByteConservation,
                Some(i),
                t,
                format!(
                    "msg {msg_id} delivered as {bytes} bytes to m{dst} but started as {:?} bytes \
                     to m{:?}",
                    info.bytes, info.dst
                ),
            );
        }
        info.state = MsgState::Delivered;
        let endpoint = info.endpoint;
        let class = info.class;
        let key = info.key;
        let round = info.round;
        if let Some(t0) = info.open_start.take() {
            if src != dst {
                self.attempts.push(Attempt {
                    src,
                    dst,
                    start: t0,
                    end: t,
                    bytes,
                });
            }
        }
        if let Some(n) = self.inflight.get_mut(&endpoint) {
            *n = n.saturating_sub(1);
        }
        self.lane_busy.remove(&(endpoint.0, endpoint.1, dst));

        if is_push_class(class) {
            // `worker` on the matching AggStart is the pushing machine
            // (the rack aggregator, for combined pushes).
            self.delivered_pushes
                .entry((dst, key, round, src))
                .or_default()
                .push(msg_id);
        }
        // Allgather chunks are the collective backends' parameter
        // deliveries: like a PS response, they advance the receiving
        // worker's slice version (the chunk's `round` is the
        // post-collective version).
        if matches!(class, MsgClass::Response | MsgClass::AllGather) && !self.crashed.contains(&dst)
        {
            let have = self.received.entry((dst, key)).or_insert(0);
            *have = (*have).max(round);
        }
    }

    fn on_agg_start(
        &mut self,
        i: usize,
        t: u64,
        server: usize,
        key: usize,
        round: u64,
        worker: usize,
    ) {
        if let Some(&(k, r, w)) = self.open_agg.get(&server) {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} starts aggregating k{key} r{round} while still processing \
                     k{k} r{r} from w{w} — the processing unit is serial"
                ),
            );
        }
        let version = self.versions.get(&(server, key)).copied().unwrap_or(0);
        if round != version {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} aggregates k{key} at round {round} while the key is at \
                     version {version}"
                ),
            );
        }
        let claimed = self
            .delivered_pushes
            .get_mut(&(server, key, round, worker))
            .and_then(|ids| {
                let pos = ids.iter().position(|id| {
                    self.msgs
                        .get(id)
                        .is_some_and(|m| m.state == MsgState::Delivered)
                });
                pos.map(|p| ids.remove(p))
            });
        if claimed.is_none() {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} aggregates k{key} r{round} from w{worker} but no matching \
                     push was delivered"
                ),
            );
        }
        self.open_agg.insert(server, (key, round, worker));
    }

    fn on_round_complete(
        &mut self,
        i: usize,
        t: u64,
        server: usize,
        key: usize,
        version: u64,
        degraded: bool,
    ) {
        let prev = self.versions.get(&(server, key)).copied().unwrap_or(0);
        if version != prev + 1 {
            self.rep.violate(
                Invariant::CausalOrder,
                Some(i),
                t,
                format!(
                    "server {server} completes k{key} at version {version} after version {prev} \
                     — versions must advance by exactly one"
                ),
            );
        }
        self.versions.insert((server, key), version);
        let members = self
            .agg_members
            .remove(&(server, key, version.saturating_sub(1)));
        if !degraded && self.conservation_enabled() {
            let machines = self.opts.machines.unwrap_or(0);
            let unique = members.map(|m| m.len()).unwrap_or(0);
            if unique != machines {
                self.rep.violate(
                    Invariant::ByteConservation,
                    Some(i),
                    t,
                    format!(
                        "server {server} completes k{key} v{version} with full membership but \
                         only {unique}/{machines} workers' pushes were aggregated"
                    ),
                );
            }
        }
    }

    fn on_fault(&mut self, i: usize, t: u64, kind: FaultKind, machine: usize, msg_id: Option<u64>) {
        match kind {
            FaultKind::Loss => {
                self.msg_transition(i, t, msg_id, MsgState::Delivered, MsgState::Lost, "lost");
                if let Some(id) = msg_id {
                    if let Some(info) = self.msgs.get(&id) {
                        if is_push_class(info.class) {
                            if let (Some(dst), key, round) = (info.dst, info.key, info.round) {
                                if let Some(ids) = self.delivered_pushes.get_mut(&(
                                    dst,
                                    key,
                                    round,
                                    info.endpoint.0,
                                )) {
                                    ids.retain(|&x| x != id);
                                }
                            }
                        }
                    }
                }
            }
            FaultKind::Retransmit => {
                self.msg_transition(
                    i,
                    t,
                    msg_id,
                    MsgState::Lost,
                    MsgState::RetryPending,
                    "retransmitted",
                );
            }
            FaultKind::GiveUp => {
                self.msg_transition(i, t, msg_id, MsgState::Lost, MsgState::Dead, "abandoned");
            }
            FaultKind::FlowCancelled => {
                if let Some(id) = msg_id {
                    if let Some(info) = self.msgs.get_mut(&id) {
                        if info.state != MsgState::InFlight {
                            let state = info.state;
                            self.rep.violate(
                                Invariant::CausalOrder,
                                Some(i),
                                t,
                                format!("msg {id} cancelled while {state:?} (not in flight)"),
                            );
                        }
                        info.state = MsgState::Dead;
                        info.open_start = None;
                        let endpoint = info.endpoint;
                        let dst = info.dst;
                        if let Some(n) = self.inflight.get_mut(&endpoint) {
                            *n = n.saturating_sub(1);
                        }
                        if let Some(d) = dst {
                            self.lane_busy.remove(&(endpoint.0, endpoint.1, d));
                        }
                    }
                }
            }
            FaultKind::Crash => {
                self.crashed.insert(machine);
                // The dead process's queued (and retry-pending) messages
                // are destroyed with it; in-flight ones are cancelled by
                // the FlowCancelled events that follow.
                let endpoint = (machine, ROLE_WORKER);
                if let Some(q) = self.queued.get_mut(&endpoint) {
                    for (id, _) in std::mem::take(q) {
                        if let Some(info) = self.msgs.get_mut(&id) {
                            info.state = MsgState::Dead;
                        }
                    }
                }
                for info in self.msgs.values_mut() {
                    if info.endpoint == endpoint
                        && matches!(info.state, MsgState::Lost | MsgState::RetryPending)
                    {
                        info.state = MsgState::Dead;
                    }
                }
                let st = self.worker(machine);
                st.open_compute = None;
                st.window_valid = false;
                st.window_start = None;
                st.compute_ns = 0;
                st.stall_ns = 0;
                // An open stall is closed by the StallEnd the crash emits.
            }
            FaultKind::Rejoin => {
                self.crashed.remove(&machine);
                let st = self.worker(machine);
                st.window_valid = false;
                st.window_start = None;
            }
            FaultKind::Eviction
            | FaultKind::DegradedRound
            | FaultKind::StalePush
            | FaultKind::DuplicatePush => {}
        }
    }

    fn msg_transition(
        &mut self,
        i: usize,
        t: u64,
        msg_id: Option<u64>,
        from: MsgState,
        to: MsgState,
        what: &str,
    ) {
        let Some(id) = msg_id else { return };
        match self.msgs.get_mut(&id) {
            Some(info) => {
                if info.state != from {
                    let state = info.state;
                    self.rep.violate(
                        Invariant::CausalOrder,
                        Some(i),
                        t,
                        format!("msg {id} {what} while {state:?} (expected {from:?})"),
                    );
                }
                info.state = to;
            }
            None => {
                self.rep.violate(
                    Invariant::CausalOrder,
                    Some(i),
                    t,
                    format!("msg {id} {what} but was never enqueued"),
                );
            }
        }
    }

    fn finish(mut self, events: usize) -> AuditReport {
        let mut skipped = Vec::new();
        match self.opts.port_bytes_per_sec {
            Some(cap) if cap > 0.0 => self.check_capacity(cap),
            _ => skipped.push(
                "capacity-feasibility: no uniform port capacity in the trace metadata \
                 (topology fabrics carry per-link limits the flat check cannot express)"
                    .to_string(),
            ),
        }
        if self.opts.single_consumer.is_none() {
            skipped.push(
                "priority-inversion / in-flight-window: egress discipline unknown (no metadata)"
                    .to_string(),
            );
        }
        if !self.conservation_enabled() {
            skipped.push(if self.rack_seen {
                "per-round aggregation accounting: rack-local aggregation combines workers"
                    .to_string()
            } else {
                "per-round aggregation accounting: machine count unknown (no metadata)".to_string()
            });
        }
        AuditReport {
            events,
            violations: self.rep.violations,
            suppressed: self.rep.suppressed,
            skipped,
        }
    }

    /// Hall-style feasibility: for any window `[a, b]`, flows fully inside
    /// it cannot deliver more than `cap * (b - a)` bytes through one port.
    /// Delivery spans include the propagation latency, which only loosens
    /// the bound, so a violation is a genuine over-commitment.
    fn check_capacity(&mut self, cap: f64) {
        let attempts = std::mem::take(&mut self.attempts);
        let mut tx: BTreeMap<usize, Vec<Attempt>> = BTreeMap::new();
        let mut rx: BTreeMap<usize, Vec<Attempt>> = BTreeMap::new();
        for a in attempts {
            tx.entry(a.src).or_default().push(a);
            rx.entry(a.dst).or_default().push(a);
        }
        for (port, mut list, dir) in tx
            .into_iter()
            .map(|(p, l)| (p, l, "tx"))
            .chain(rx.into_iter().map(|(p, l)| (p, l, "rx")))
        {
            list.sort_by_key(|a| (a.start, a.end));
            let mut period: Vec<Attempt> = Vec::new();
            let mut max_end = 0u64;
            let mut done = false;
            for a in list.into_iter().chain(std::iter::once(Attempt {
                src: 0,
                dst: 0,
                start: u64::MAX,
                end: u64::MAX,
                bytes: 0,
            })) {
                if a.start >= max_end && !period.is_empty() {
                    if self.check_busy_period(cap, port, dir, &period) {
                        done = true;
                    }
                    period.clear();
                }
                if done {
                    break;
                }
                if a.start != u64::MAX {
                    max_end = max_end.max(a.end);
                    period.push(a);
                }
            }
        }
    }

    /// Checks one maximal busy period of a port; returns true once a
    /// violation is recorded (one per port is enough to act on).
    fn check_busy_period(&mut self, cap: f64, port: usize, dir: &str, period: &[Attempt]) -> bool {
        let mut by_end: Vec<&Attempt> = period.iter().collect();
        by_end.sort_by_key(|a| (a.end, a.start));
        let k = period.len() as u64;
        let stride = ((k * k) / CAPACITY_WORK_CAP + 1) as usize;
        for anchor in period.iter().step_by(stride) {
            let a = anchor.start;
            let mut sum = 0u64;
            for iv in &by_end {
                if iv.start < a || iv.end <= a {
                    continue;
                }
                sum += iv.bytes;
                let span_secs = (iv.end - a) as f64 / 1e9;
                if sum as f64 > cap * span_secs * (1.0 + CAPACITY_REL_TOL) + CAPACITY_ABS_SLACK {
                    self.rep.violate(
                        Invariant::CapacityFeasibility,
                        None,
                        a,
                        format!(
                            "port m{port} ({dir}): {sum} bytes delivered in a {:.3}ms window — \
                             exceeds capacity {:.0} bytes/sec",
                            (iv.end - a) as f64 / 1e6,
                            cap
                        ),
                    );
                    return true;
                }
            }
        }
        false
    }
}
