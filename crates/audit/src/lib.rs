//! # p3-audit — offline trace invariant auditor
//!
//! Replays a recorded simulation trace ([`p3_trace::TraceLog`]) against the
//! formal invariant catalog from DESIGN.md §10: monotone event clocks,
//! causal slice lifecycle ordering, per-flow byte conservation, NIC
//! capacity feasibility, strict-priority egress (no inversions), bounded
//! in-flight windows, and exact worker stall accounting.
//!
//! The auditor is a pure function of the event log plus optional run
//! metadata — it performs no I/O and draws no randomness, so it can run
//! inline after a simulation (`ClusterConfig::with_audit`), over an
//! exported trace file (`p3 audit run.json`), or inside property tests.
//!
//! Checks that need configuration facts the caller cannot supply (egress
//! discipline, machine count, port capacity) are skipped with an
//! explanatory note rather than guessed at: the auditor never reports a
//! violation the real system could have legally produced.
//!
//! # Examples
//!
//! ```
//! use p3_des::SimTime;
//! use p3_trace::{TraceEvent, TraceHandle};
//!
//! let handle = TraceHandle::new();
//! handle.record(
//!     SimTime::from_micros(7),
//!     TraceEvent::WireEnd { msg_id: 0, src: 0, dst: 1, bytes: 512, bottleneck: None },
//! );
//! // Delivery of a message that was never enqueued: causally impossible.
//! let report = p3_audit::check(&handle.drain());
//! assert!(!report.is_clean());
//! assert_eq!(report.violated_invariants(), vec!["causal-order"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod check;
mod report;
mod resume;

pub use check::{check, check_with, AuditOptions};
pub use report::{AuditReport, Invariant, Violation};
pub use resume::check_resume_equivalence;
