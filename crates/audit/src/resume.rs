//! Resume-equivalence: a resumed run's trace must be a bit-identical
//! suffix of the uninterrupted run's trace.
//!
//! The simulator guarantees that restoring a snapshot and resuming
//! replays the exact event sequence the uninterrupted run would have
//! processed from that point on. This checker pins the guarantee from the
//! outside: given the full run's trace and a resumed run's trace, every
//! resumed event must match — at the same simulated time, with the same
//! payload — the tail of the full trace. The first mismatch names both
//! events, which localizes the divergence to the exact state the snapshot
//! failed to capture.

use crate::report::{AuditReport, Invariant, Violation};
use p3_trace::TraceLog;

/// How many mismatching positions to report before summarizing.
const MAX_MISMATCHES: usize = 10;

/// Checks that `resumed`'s events are exactly the last `resumed.len()`
/// events of `full`. Returns a clean report when they are.
pub fn check_resume_equivalence(full: &TraceLog, resumed: &TraceLog) -> AuditReport {
    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    let full_events = full.events();
    let resumed_events = resumed.events();

    if resumed_events.len() > full_events.len() {
        violations.push(Violation {
            invariant: Invariant::ResumeEquivalence,
            index: None,
            at_nanos: 0,
            message: format!(
                "resumed run recorded {} events but the full run only {} — the resumed trace \
                 cannot be a suffix",
                resumed_events.len(),
                full_events.len()
            ),
        });
    } else {
        let offset = full_events.len() - resumed_events.len();
        for (i, (expected, got)) in full_events[offset..].iter().zip(resumed_events).enumerate() {
            if expected == got {
                continue;
            }
            if violations.len() >= MAX_MISMATCHES {
                suppressed += 1;
                continue;
            }
            violations.push(Violation {
                invariant: Invariant::ResumeEquivalence,
                index: Some(offset + i),
                at_nanos: got.at.as_nanos(),
                message: format!(
                    "resumed event #{i} is {:?} @ {} but the full run recorded {:?} @ {}",
                    got.event, got.at, expected.event, expected.at
                ),
            });
        }
    }

    AuditReport {
        events: resumed_events.len(),
        violations,
        suppressed,
        skipped: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_des::SimTime;
    use p3_trace::{TraceEvent, TraceHandle};

    fn log_of(hashes: &[(u64, u64)]) -> TraceLog {
        let h = TraceHandle::new();
        for &(at, hash) in hashes {
            h.record(
                SimTime::from_nanos(at),
                TraceEvent::StateHash { events: at, hash },
            );
        }
        h.drain()
    }

    #[test]
    fn identical_suffix_is_clean() {
        let full = log_of(&[(1, 10), (2, 20), (3, 30)]);
        let resumed = log_of(&[(2, 20), (3, 30)]);
        assert!(check_resume_equivalence(&full, &resumed).is_clean());
    }

    #[test]
    fn empty_resumed_trace_is_clean() {
        let full = log_of(&[(1, 10)]);
        let resumed = log_of(&[]);
        assert!(check_resume_equivalence(&full, &resumed).is_clean());
    }

    #[test]
    fn diverging_payload_is_flagged_at_its_index() {
        let full = log_of(&[(1, 10), (2, 20), (3, 30)]);
        let resumed = log_of(&[(2, 99), (3, 30)]);
        let report = check_resume_equivalence(&full, &resumed);
        assert!(!report.is_clean());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].index, Some(1));
        assert_eq!(
            report.violated_invariants(),
            vec!["resume-equivalence"],
            "{report}"
        );
    }

    #[test]
    fn longer_resumed_trace_is_flagged() {
        let full = log_of(&[(1, 10)]);
        let resumed = log_of(&[(1, 10), (2, 20)]);
        let report = check_resume_equivalence(&full, &resumed);
        assert!(!report.is_clean());
        assert!(
            report.to_string().contains("cannot be a suffix"),
            "{report}"
        );
    }
}
