//! Audit results: the invariant catalog, violations, and the report.

use std::fmt;

/// The invariant catalog (DESIGN.md §10). Every check the auditor performs
/// falls under exactly one of these, and a violation names its invariant so
/// a failing `p3 audit` run is actionable without reading the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// Events are recorded at nondecreasing simulated times: producers
    /// record at the DES clock, which never runs backwards.
    MonotoneClock,
    /// The slice lifecycle is causal: gradient ready → egress enqueue →
    /// wire start → wire end → aggregate (claiming a delivered push) →
    /// round complete (versions advance by exactly one) → consumed only
    /// once the worker holds a sufficient version. Includes the serial
    /// server processing unit and legal retransmit state transitions.
    CausalOrder,
    /// Bytes are conserved: a message's wire size never changes between
    /// attempts, start and delivery report identical sizes, and under a
    /// full-membership round every worker's push is aggregated exactly
    /// once.
    ByteConservation,
    /// Flows are feasible: over any window, the bytes delivered through
    /// one NIC port cannot exceed its effective capacity × window length.
    CapacityFeasibility,
    /// Single-consumer egress never inverts priorities: a transfer cannot
    /// start while a strictly more urgent message sits in the same queue.
    PriorityInversion,
    /// Endpoints respect their transmission window: at most `window`
    /// messages in flight per single-consumer endpoint, at most one per
    /// FIFO lane.
    InFlightWindow,
    /// Worker time is fully accounted: between consecutive iteration
    /// boundaries, compute + stall exactly tiles the span (a worker is
    /// never idle for an unexplained reason).
    StallAccounting,
    /// A resumed run replays the uninterrupted run exactly: its trace is a
    /// bit-identical suffix of the full run's trace (same events, same
    /// simulated times, same payloads).
    ResumeEquivalence,
}

impl Invariant {
    /// Stable kebab-case name used in reports and CI output.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::MonotoneClock => "monotone-clock",
            Invariant::CausalOrder => "causal-order",
            Invariant::ByteConservation => "byte-conservation",
            Invariant::CapacityFeasibility => "capacity-feasibility",
            Invariant::PriorityInversion => "priority-inversion",
            Invariant::InFlightWindow => "in-flight-window",
            Invariant::StallAccounting => "stall-accounting",
            Invariant::ResumeEquivalence => "resume-equivalence",
        }
    }

    /// All catalog entries, in report order.
    pub const ALL: [Invariant; 8] = [
        Invariant::MonotoneClock,
        Invariant::CausalOrder,
        Invariant::ByteConservation,
        Invariant::CapacityFeasibility,
        Invariant::PriorityInversion,
        Invariant::InFlightWindow,
        Invariant::StallAccounting,
        Invariant::ResumeEquivalence,
    ];
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation, anchored to the offending event.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which catalog entry was violated.
    pub invariant: Invariant,
    /// Index of the offending event in the trace (recording order), when
    /// the violation is attributable to one event.
    pub index: Option<usize>,
    /// Simulated time of the offending event, in nanoseconds.
    pub at_nanos: u64,
    /// Human-readable explanation with the entities involved.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(
                f,
                "[{}] event #{i} @ {}ns: {}",
                self.invariant, self.at_nanos, self.message
            ),
            None => write!(f, "[{}] {}", self.invariant, self.message),
        }
    }
}

/// Everything one audit pass concluded.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of trace events replayed.
    pub events: usize,
    /// Violations found, in discovery order (capped per invariant; see
    /// [`AuditReport::suppressed`]).
    pub violations: Vec<Violation>,
    /// Violations beyond the per-invariant reporting cap.
    pub suppressed: usize,
    /// Checks that could not run and why (e.g. no capacity metadata).
    pub skipped: Vec<String>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Names of the distinct invariants violated, in catalog order.
    pub fn violated_invariants(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for inv in Invariant::ALL {
            if self.violations.iter().any(|v| v.invariant == inv) {
                names.push(inv.name());
            }
        }
        names
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "audit: clean — {} events", self.events)?;
        } else {
            write!(
                f,
                "audit: FAILED — {} violation(s) in {} events (invariants: {})",
                self.violations.len() + self.suppressed,
                self.events,
                self.violated_invariants().join(", ")
            )?;
            for v in &self.violations {
                write!(f, "\n  {v}")?;
            }
            if self.suppressed > 0 {
                write!(f, "\n  … and {} more", self.suppressed)?;
            }
        }
        for s in &self.skipped {
            write!(f, "\n  note: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formats_violations_and_notes() {
        let mut r = AuditReport {
            events: 10,
            ..AuditReport::default()
        };
        assert!(r.is_clean());
        assert!(r.to_string().contains("clean"));
        r.violations.push(Violation {
            invariant: Invariant::ByteConservation,
            index: Some(3),
            at_nanos: 42,
            message: "msg 7 shrank".into(),
        });
        r.skipped.push("no capacity metadata".into());
        assert!(!r.is_clean());
        let s = r.to_string();
        assert!(s.contains("byte-conservation"), "{s}");
        assert!(s.contains("event #3"), "{s}");
        assert!(s.contains("note: no capacity"), "{s}");
        assert_eq!(r.violated_invariants(), vec!["byte-conservation"]);
    }

    #[test]
    fn invariant_names_are_stable() {
        let names: Vec<&str> = Invariant::ALL.iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), 8);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
