//! The fluid network: flow lifecycle, exact completion events, utilization
//! traces.

// p3-lint: allow(file-length): pre-existing; the flat/multi-hop split is
// tracked in ROADMAP.md "Open items".

use crate::allocator::{allocate_rates_capped, FlowSpec};
use crate::multilink::{allocate_rates_on_graph, LinkGraph, LinkId};
use crate::trace::PortTrace;
use crate::types::{Bandwidth, FlowId, MachineId, Priority};
use p3_des::{SimDuration, SimTime};
use p3_trace::{TraceEvent, TraceHandle};

/// Static description of the cluster fabric.
///
/// Every machine has a full-duplex NIC: independent transmit and receive
/// ports of `bandwidth` each, matching the testbed in the paper (NICs
/// rate-limited per direction with `tc qdisc`). Transfers where source and
/// destination are the same machine (worker pushing to its colocated server
/// shard) go over loopback: they never touch the NIC and run at
/// `loopback` bandwidth.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Per-direction NIC bandwidth of each machine.
    pub bandwidth: Bandwidth,
    /// One-way propagation + protocol-stack latency added to every message.
    pub latency: SimDuration,
    /// Loopback bandwidth for same-machine transfers.
    pub loopback: Bandwidth,
    /// If set, record per-machine utilization traces with this bin width
    /// (the paper samples at 10 ms).
    pub trace_bin: Option<SimDuration>,
    /// Per-flow goodput ceiling in bytes/sec (single-stream CPU bound of
    /// the endpoint stack); `f64::INFINITY` disables it.
    pub flow_cap: f64,
    /// Fraction of nominal bandwidth usable as goodput (protocol
    /// efficiency). Real deployments sit well below line rate: `tc tbf`
    /// shaping with shallow bursts, TCP incast losses, and ps-lite's
    /// single-threaded serialization all tax the nominal figure (the
    /// paper's own crossover bandwidths imply roughly 25% effective
    /// utilization — see DESIGN.md §6). Defaults to 1.0 (ideal fabric).
    pub efficiency: f64,
    /// Optional multi-hop fabric. When set, flows are routed over the
    /// graph's fixed paths and rates come from the multi-constraint
    /// allocator ([`crate::allocate_rates_on_graph`]); `bandwidth` no
    /// longer bounds the ports (the graph's per-machine port capacities
    /// do), though it still anchors the rate-noise floor. `None` (the
    /// default) keeps the flat single-switch model.
    pub link_graph: Option<LinkGraph>,
}

impl NetworkConfig {
    /// A cluster of `machines` nodes with the given NIC bandwidth and
    /// defaults mirroring the paper's testbed: 50 µs message latency and
    /// 50 GB/s loopback.
    pub fn new(machines: usize, bandwidth: Bandwidth) -> Self {
        NetworkConfig {
            machines,
            bandwidth,
            latency: SimDuration::from_micros(50),
            loopback: Bandwidth::from_gbps(400.0),
            trace_bin: None,
            flow_cap: f64::INFINITY,
            efficiency: 1.0,
            link_graph: None,
        }
    }

    /// Routes all traffic over a multi-hop link graph instead of the flat
    /// single-switch fabric. The graph's protocol efficiency and fault
    /// scaling are applied on top of its nominal capacities at every
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the graph's machine count differs from `machines`.
    pub fn with_link_graph(mut self, graph: LinkGraph) -> Self {
        assert_eq!(
            graph.machines(),
            self.machines,
            "link graph machine count does not match the cluster"
        );
        self.link_graph = Some(graph);
        self
    }

    /// Caps every flow's rate at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive.
    pub fn with_flow_cap(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "non-positive flow cap");
        self.flow_cap = bytes_per_sec;
        self
    }

    /// Overrides the protocol-efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency {efficiency} outside (0, 1]"
        );
        self.efficiency = efficiency;
        self
    }

    /// Enables utilization tracing with the given bin width.
    pub fn with_trace(mut self, bin: SimDuration) -> Self {
        self.trace_bin = Some(bin);
        self
    }

    /// Overrides the per-message latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }
}

/// A finished transfer, handed back by [`Network::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedFlow {
    /// Handle returned by [`Network::start_flow`].
    pub id: FlowId,
    /// Transmitting machine.
    pub src: MachineId,
    /// Receiving machine.
    pub dst: MachineId,
    /// Caller-supplied correlation tag.
    pub tag: u64,
    /// Message size in bytes.
    pub bytes: u64,
    /// The saturated link that bounded the flow's rate under its final
    /// allocation (a [`crate::LinkId`] index). `None` for loopback
    /// transfers, on the flat single-switch fabric, or when the per-flow
    /// cap (not a link) was the binding constraint.
    pub bottleneck: Option<usize>,
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    id: FlowId,
    src: usize,
    dst: usize,
    priority: Priority,
    tag: u64,
    bytes: u64,
    remaining: f64,
    rate: f64, // bytes/sec under the current allocation
    /// Saturated link bounding the current rate (link-graph mode only).
    bottleneck: Option<LinkId>,
}

#[derive(Debug, Clone)]
struct Delivering {
    at: SimTime,
    flow: CompletedFlow,
}

/// The simulated cluster fabric.
///
/// `Network` is driven by its owner (the cluster simulator): the owner calls
/// [`Network::start_flow`] to begin transfers, [`Network::next_event_time`]
/// to learn when the fabric next changes state, and [`Network::poll`] to
/// advance the fluid model to the current instant and collect completed
/// transfers.
///
/// # Examples
///
/// ```
/// use p3_des::{SimDuration, SimTime};
/// use p3_net::{Bandwidth, MachineId, Network, NetworkConfig, Priority};
///
/// let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
///     .with_latency(SimDuration::ZERO);
/// let mut net = Network::new(cfg);
/// // 1 MB at 1 GB/s takes 1 ms.
/// net.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), 1_000_000, Priority(0), 7);
/// let done_at = net.next_event_time().unwrap();
/// assert_eq!(done_at, SimTime::from_millis(1));
/// let done = net.poll(done_at);
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].tag, 7);
/// ```
#[derive(Debug)]
pub struct Network {
    cfg: NetworkConfig,
    flows: Vec<ActiveFlow>,
    delivering: Vec<Delivering>,
    last_update: SimTime,
    next_flow_id: u64,
    tx_traces: Vec<PortTrace>,
    rx_traces: Vec<PortTrace>,
    dirty: bool, // rates stale (flow set changed since last allocation)
    /// Per-machine transmit capacity factor in `(0, 1]` (fault injection:
    /// a degraded NIC or congested uplink).
    tx_scale: Vec<f64>,
    /// Per-machine receive capacity factor in `(0, 1]`.
    rx_scale: Vec<f64>,
    /// Event sink for wire-level spans; `None` (the default) records
    /// nothing and costs one branch per flow transition.
    tracer: Option<TraceHandle>,
    /// Per-link busy time in seconds (link-graph mode only; indexed by
    /// `LinkId`). A link is busy while any flow crossing it has a
    /// positive rate.
    link_busy: Vec<f64>,
    /// Per-link bytes carried (link-graph mode only).
    link_bytes: Vec<f64>,
}

/// Dynamic state of one in-flight flow, as captured by
/// [`Network::snapshot`]. Field order mirrors the private `ActiveFlow`;
/// float fields carry exact bit patterns so a restored fabric continues
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSnapshot {
    /// Flow handle (monotone, unique for the run).
    pub id: u64,
    /// Transmitting machine index.
    pub src: usize,
    /// Receiving machine index.
    pub dst: usize,
    /// Priority class.
    pub priority: u32,
    /// Caller correlation tag.
    pub tag: u64,
    /// Message size in bytes.
    pub bytes: u64,
    /// Bytes not yet drained.
    pub remaining: f64,
    /// Current allocated rate in bytes/sec.
    pub rate: f64,
    /// Saturated link bounding the rate (link-graph mode only).
    pub bottleneck: Option<usize>,
}

/// A drained transfer awaiting its delivery instant, as captured by
/// [`Network::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveringSnapshot {
    /// Delivery instant.
    pub at: SimTime,
    /// The completed transfer to hand back at `at`.
    pub flow: CompletedFlow,
}

/// The full dynamic state of a [`Network`], sufficient to resume the fluid
/// model bit-identically on a fresh fabric built from the same
/// [`NetworkConfig`]. Static configuration (bandwidths, link graph,
/// latency) is not captured — it is rebuilt from the config.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    /// In-flight flows, in the fabric's internal (semantically
    /// significant) order.
    pub flows: Vec<FlowSnapshot>,
    /// Drained transfers awaiting delivery.
    pub delivering: Vec<DeliveringSnapshot>,
    /// Instant the fluid model was last integrated to.
    pub last_update: SimTime,
    /// Next flow handle to hand out.
    pub next_flow_id: u64,
    /// Per-machine transmit capacity factors (fault injection).
    pub tx_scale: Vec<f64>,
    /// Per-machine receive capacity factors.
    pub rx_scale: Vec<f64>,
    /// Per-link busy seconds (link-graph mode; empty otherwise).
    pub link_busy: Vec<f64>,
    /// Per-link bytes carried.
    pub link_bytes: Vec<f64>,
    /// Per-machine transmit utilization bins (empty when tracing is off).
    pub tx_bins: Vec<Vec<f64>>,
    /// Per-machine receive utilization bins.
    pub rx_bins: Vec<Vec<f64>>,
}

/// Observed usage of one link over a run, from [`Network::link_usage`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Link name from the graph (`m3.tx`, `rack1.up`, …).
    pub name: String,
    /// Nominal capacity in bytes/sec.
    pub capacity: f64,
    /// Seconds during which at least one flow crossed the link.
    pub busy_secs: f64,
    /// Total bytes carried.
    pub bytes: f64,
    /// True for switch uplinks/downlinks, false for machine ports.
    pub transit: bool,
}

impl Network {
    /// Builds an idle fabric from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.machines` is zero.
    pub fn new(cfg: NetworkConfig) -> Self {
        assert!(cfg.machines > 0, "a cluster needs at least one machine");
        let (tx_traces, rx_traces) = match cfg.trace_bin {
            Some(bin) => (
                (0..cfg.machines).map(|_| PortTrace::new(bin)).collect(),
                (0..cfg.machines).map(|_| PortTrace::new(bin)).collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        let machines = cfg.machines;
        let num_links = cfg.link_graph.as_ref().map_or(0, LinkGraph::num_links);
        if let Some(g) = &cfg.link_graph {
            assert_eq!(g.machines(), machines, "link graph machine count mismatch");
        }
        Network {
            cfg,
            flows: Vec::new(),
            delivering: Vec::new(),
            last_update: SimTime::ZERO,
            next_flow_id: 0,
            tx_traces,
            rx_traces,
            dirty: false,
            tx_scale: vec![1.0; machines],
            rx_scale: vec![1.0; machines],
            tracer: None,
            link_busy: vec![0.0; num_links],
            link_bytes: vec![0.0; num_links],
        }
    }

    /// Attaches a trace sink: every flow emits a `WireStart` when it enters
    /// the fabric (loopback included) and a `WireEnd` when its last byte is
    /// delivered, tagged with the caller's correlation tag as `msg_id`.
    /// Tracing is purely observational — it never changes flow timing.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = Some(tracer);
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Number of transfers currently using NIC bandwidth.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// True when no transfer is in flight or awaiting delivery.
    pub fn is_idle(&self) -> bool {
        self.flows.is_empty() && self.delivering.is_empty()
    }

    /// Begins a transfer of `bytes` from `src` to `dst` with the given
    /// priority class and caller tag, starting at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the network's last update, if either machine
    /// is out of range, or if `bytes` is zero.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: MachineId,
        dst: MachineId,
        bytes: u64,
        priority: Priority,
        tag: u64,
    ) -> FlowId {
        assert!(src.0 < self.cfg.machines, "unknown src {src}");
        assert!(dst.0 < self.cfg.machines, "unknown dst {dst}");
        assert!(bytes > 0, "zero-byte transfer");
        self.advance(now);
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        if let Some(t) = &self.tracer {
            t.record(
                now,
                TraceEvent::WireStart {
                    msg_id: tag,
                    src: src.0,
                    dst: dst.0,
                    bytes,
                    priority: priority.0,
                },
            );
        }

        if src == dst {
            // Loopback: never touches the NIC; fixed-rate private channel.
            let secs = bytes as f64 / self.cfg.loopback.bytes_per_sec();
            let at = now + self.cfg.latency + SimDuration::from_secs_f64(secs);
            self.delivering.push(Delivering {
                at,
                flow: CompletedFlow {
                    id,
                    src,
                    dst,
                    tag,
                    bytes,
                    bottleneck: None,
                },
            });
            return id;
        }

        self.flows.push(ActiveFlow {
            id,
            src: src.0,
            dst: dst.0,
            priority,
            tag,
            bytes,
            remaining: bytes as f64,
            rate: 0.0,
            bottleneck: None,
        });
        self.dirty = true;
        self.reallocate();
        id
    }

    /// The earliest future instant at which the fabric changes state (a flow
    /// drains or a drained message is delivered), or `None` when idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for f in &self.flows {
            if f.rate > 0.0 {
                let secs = f.remaining / f.rate;
                let ns = (secs * 1e9).ceil().max(0.0).min(u64::MAX as f64) as u64;
                let t = self.last_update.saturating_add(SimDuration::from_nanos(ns));
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        }
        for d in &self.delivering {
            best = Some(best.map_or(d.at, |b: SimTime| b.min(d.at)));
        }
        best
    }

    /// Advances the fluid model to `now` and returns every transfer whose
    /// last byte has been delivered (drain time + latency ≤ `now`), in
    /// delivery order.
    pub fn poll(&mut self, now: SimTime) -> Vec<CompletedFlow> {
        self.advance(now);

        // Flows that drained move to the latency (delivery) stage.
        let mut changed = false;
        let latency = self.cfg.latency;
        let mut i = 0;
        while i < self.flows.len() {
            let f = &self.flows[i];
            // Sub-nanosecond residue from ceil-rounding counts as drained.
            let eps = f.rate * 1e-9 + 1e-9;
            if f.remaining <= eps {
                let f = self.flows.swap_remove(i);
                self.delivering.push(Delivering {
                    at: now + latency,
                    flow: CompletedFlow {
                        id: f.id,
                        src: MachineId(f.src),
                        dst: MachineId(f.dst),
                        tag: f.tag,
                        bytes: f.bytes,
                        bottleneck: f.bottleneck.map(|l| l.0),
                    },
                });
                changed = true;
            } else {
                i += 1;
            }
        }
        if changed {
            self.dirty = true;
            self.reallocate();
        }

        // Deliveries due now.
        let mut done: Vec<Delivering> = Vec::new();
        let mut i = 0;
        while i < self.delivering.len() {
            if self.delivering[i].at <= now {
                done.push(self.delivering.swap_remove(i));
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|d| (d.at, d.flow.id));
        if let Some(t) = &self.tracer {
            for d in &done {
                t.record(
                    d.at,
                    TraceEvent::WireEnd {
                        msg_id: d.flow.tag,
                        src: d.flow.src.0,
                        dst: d.flow.dst.0,
                        bytes: d.flow.bytes,
                        bottleneck: d.flow.bottleneck,
                    },
                );
            }
        }
        done.into_iter().map(|d| d.flow).collect()
    }

    /// Rescales one machine's NIC capacity mid-run (fault injection: link
    /// degradation). Factors apply multiplicatively to the configured
    /// per-direction bandwidth; `1.0` restores full capacity. In-flight
    /// flows are re-allocated from `now` onward — bytes already transferred
    /// are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range, a factor is outside `(0, 1]`,
    /// or `now` precedes the network's last update.
    pub fn set_port_scale(&mut self, now: SimTime, machine: MachineId, tx: f64, rx: f64) {
        assert!(machine.0 < self.cfg.machines, "unknown machine {machine}");
        assert!(tx > 0.0 && tx <= 1.0, "tx scale {tx} outside (0, 1]");
        assert!(rx > 0.0 && rx <= 1.0, "rx scale {rx} outside (0, 1]");
        self.advance(now);
        self.tx_scale[machine.0] = tx;
        self.rx_scale[machine.0] = rx;
        self.dirty = true;
        self.reallocate();
    }

    /// Aborts an in-flight transfer (fault injection: the sending process
    /// died, or the message was dropped). The flow's port share is
    /// redistributed from `now` onward and its delivery never happens.
    /// Returns `false` when the flow is unknown or already delivered.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the network's last update.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        if let Some(i) = self.flows.iter().position(|f| f.id == id) {
            self.flows.swap_remove(i);
            self.dirty = true;
            self.reallocate();
            return true;
        }
        if let Some(i) = self.delivering.iter().position(|d| d.flow.id == id) {
            self.delivering.swap_remove(i);
            return true;
        }
        false
    }

    /// Per-machine transmit utilization trace, if tracing was enabled.
    pub fn tx_trace(&self, machine: MachineId) -> Option<&PortTrace> {
        self.tx_traces.get(machine.0)
    }

    /// Per-machine receive utilization trace, if tracing was enabled.
    pub fn rx_trace(&self, machine: MachineId) -> Option<&PortTrace> {
        self.rx_traces.get(machine.0)
    }

    /// Observed per-link usage so far (busy time and bytes carried, one
    /// entry per [`LinkId`]). Empty on the flat single-switch fabric.
    /// Busy time accrues up to the last `poll`/`start_flow` instant.
    pub fn link_usage(&self) -> Vec<LinkUsage> {
        let Some(g) = &self.cfg.link_graph else {
            return Vec::new();
        };
        (0..g.num_links())
            .map(|l| LinkUsage {
                name: g.link_name(LinkId(l)).to_string(),
                capacity: g.link_cap(LinkId(l)),
                busy_secs: self.link_busy[l],
                bytes: self.link_bytes[l],
                transit: g.is_transit(LinkId(l)),
            })
            .collect()
    }

    /// Captures the fabric's full dynamic state. Restoring it with
    /// [`Network::restore_from`] onto a fresh fabric built from the same
    /// configuration resumes the fluid model bit-identically (rates are
    /// carried verbatim rather than recomputed, so no reallocation noise
    /// enters at the restore point).
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            flows: self
                .flows
                .iter()
                .map(|f| FlowSnapshot {
                    id: f.id.0,
                    src: f.src,
                    dst: f.dst,
                    priority: f.priority.0,
                    tag: f.tag,
                    bytes: f.bytes,
                    remaining: f.remaining,
                    rate: f.rate,
                    bottleneck: f.bottleneck.map(|l| l.0),
                })
                .collect(),
            delivering: self
                .delivering
                .iter()
                .map(|d| DeliveringSnapshot {
                    at: d.at,
                    flow: d.flow,
                })
                .collect(),
            last_update: self.last_update,
            next_flow_id: self.next_flow_id,
            tx_scale: self.tx_scale.clone(),
            rx_scale: self.rx_scale.clone(),
            link_busy: self.link_busy.clone(),
            link_bytes: self.link_bytes.clone(),
            tx_bins: self
                .tx_traces
                .iter()
                .map(|t| t.bytes_per_bin().to_vec())
                .collect(),
            rx_bins: self
                .rx_traces
                .iter()
                .map(|t| t.bytes_per_bin().to_vec())
                .collect(),
        }
    }

    /// Overwrites this fabric's dynamic state with a snapshot taken from a
    /// fabric with the same configuration (see [`Network::snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's per-machine vectors do not match this
    /// fabric's machine count.
    pub fn restore_from(&mut self, snap: &NetworkSnapshot) {
        assert_eq!(snap.tx_scale.len(), self.cfg.machines, "snapshot mismatch");
        assert_eq!(snap.rx_scale.len(), self.cfg.machines, "snapshot mismatch");
        self.flows = snap
            .flows
            .iter()
            .map(|f| ActiveFlow {
                id: FlowId(f.id),
                src: f.src,
                dst: f.dst,
                priority: Priority(f.priority),
                tag: f.tag,
                bytes: f.bytes,
                remaining: f.remaining,
                rate: f.rate,
                bottleneck: f.bottleneck.map(LinkId),
            })
            .collect();
        self.delivering = snap
            .delivering
            .iter()
            .map(|d| Delivering {
                at: d.at,
                flow: d.flow,
            })
            .collect();
        self.last_update = snap.last_update;
        self.next_flow_id = snap.next_flow_id;
        self.tx_scale = snap.tx_scale.clone();
        self.rx_scale = snap.rx_scale.clone();
        self.link_busy = snap.link_busy.clone();
        self.link_bytes = snap.link_bytes.clone();
        self.dirty = false;
        for (t, bins) in self.tx_traces.iter_mut().zip(&snap.tx_bins) {
            t.restore_bins(bins.clone());
        }
        for (t, bins) in self.rx_traces.iter_mut().zip(&snap.rx_bins) {
            t.restore_bins(bins.clone());
        }
    }

    /// Integrates flow progress from `last_update` to `now`.
    fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "network clock went backwards: {now} < {}",
            self.last_update
        );
        if now == self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        if let Some(g) = &self.cfg.link_graph {
            // Per-link occupancy over the elapsed interval.
            let mut rate_sum = vec![0.0; g.num_links()];
            for f in &self.flows {
                if f.rate > 0.0 {
                    for l in g.path(f.src, f.dst) {
                        rate_sum[l.0] += f.rate;
                    }
                }
            }
            for (l, &r) in rate_sum.iter().enumerate() {
                if r > 0.0 {
                    self.link_busy[l] += dt;
                    self.link_bytes[l] += r * dt;
                }
            }
        }
        for f in &mut self.flows {
            if f.rate > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
                if !self.tx_traces.is_empty() {
                    self.tx_traces[f.src].add_rate(self.last_update, now, f.rate);
                    self.rx_traces[f.dst].add_rate(self.last_update, now, f.rate);
                }
            }
        }
        self.last_update = now;
    }

    /// Recomputes the strict-priority max-min rates.
    fn reallocate(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        let cap = self.cfg.bandwidth.bytes_per_sec() * self.cfg.efficiency;
        let specs: Vec<FlowSpec> = self
            .flows
            .iter()
            .map(|f| FlowSpec {
                src: f.src,
                dst: f.dst,
                priority: f.priority,
            })
            .collect();
        let rates = if let Some(g) = &self.cfg.link_graph {
            let caps = g.scaled_caps(self.cfg.efficiency, &self.tx_scale, &self.rx_scale);
            let alloc = allocate_rates_on_graph(&specs, g, &caps, self.cfg.flow_cap);
            for (f, b) in self.flows.iter_mut().zip(alloc.bottleneck) {
                f.bottleneck = b;
            }
            alloc.rates
        } else {
            let tx: Vec<f64> = self.tx_scale.iter().map(|s| cap * s).collect();
            let rx: Vec<f64> = self.rx_scale.iter().map(|s| cap * s).collect();
            allocate_rates_capped(&specs, &tx, &rx, self.cfg.flow_cap)
        };
        // A rate below one byte per simulated second is allocator noise; a
        // "running" flow at such a rate would never finish within any
        // realistic horizon and only destabilizes event times.
        let floor = (cap * 1e-12).max(1e-6);
        for (f, r) in self.flows.iter_mut().zip(rates) {
            f.rate = if r < floor { 0.0 } else { r };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(machines: usize, gbps: f64) -> Network {
        let cfg = NetworkConfig::new(machines, Bandwidth::from_gbps(gbps))
            .with_latency(SimDuration::ZERO);
        Network::new(cfg)
    }

    #[test]
    fn isolated_flow_takes_size_over_bandwidth() {
        let mut n = net(2, 8.0); // 1 GB/s
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            2_000_000,
            Priority(0),
            0,
        );
        assert_eq!(n.next_event_time(), Some(SimTime::from_millis(2)));
        let done = n.poll(SimTime::from_millis(2));
        assert_eq!(done.len(), 1);
        assert!(n.is_idle());
    }

    #[test]
    fn latency_delays_delivery_without_consuming_bandwidth() {
        let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
            .with_latency(SimDuration::from_micros(100));
        let mut n = Network::new(cfg);
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(0),
            0,
        );
        // Drains at 1 ms, delivers at 1.1 ms.
        assert_eq!(n.next_event_time(), Some(SimTime::from_millis(1)));
        assert!(n.poll(SimTime::from_millis(1)).is_empty());
        assert_eq!(n.next_event_time(), Some(SimTime::from_micros(1100)));
        assert_eq!(n.poll(SimTime::from_micros(1100)).len(), 1);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let mut n = net(3, 8.0); // 1 GB/s per port
                                 // Both flows leave machine 0: share its tx at 0.5 GB/s each.
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(0),
            1,
        );
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(2),
            500_000,
            Priority(0),
            2,
        );
        // Flow 2 drains at 1 ms; flow 1 then has 0.5 MB left at full rate.
        let t1 = n.next_event_time().unwrap();
        assert_eq!(t1, SimTime::from_millis(1));
        let done = n.poll(t1);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 2);
        let t2 = n.next_event_time().unwrap();
        assert_eq!(t2, SimTime::from_micros(1500));
        let done = n.poll(t2);
        assert_eq!(done[0].tag, 1);
    }

    #[test]
    fn priority_flow_preempts_bulk() {
        let mut n = net(2, 8.0);
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(5),
            10,
        );
        // At 0.5 ms, an urgent flow arrives; bulk flow freezes.
        let mid = SimTime::from_micros(500);
        assert!(n.poll(mid).is_empty());
        n.start_flow(mid, MachineId(0), MachineId(1), 1_000_000, Priority(0), 20);
        // Urgent drains at 1.5 ms.
        let t = n.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_micros(1500));
        let done = n.poll(t);
        assert_eq!(done[0].tag, 20);
        // Bulk resumes: 0.5 MB left, drains at 2.0 ms.
        let t = n.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_millis(2));
        assert_eq!(n.poll(t)[0].tag, 10);
    }

    #[test]
    fn loopback_skips_the_nic() {
        let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(1.0))
            .with_latency(SimDuration::ZERO)
            .with_trace(SimDuration::from_millis(10));
        let mut n = Network::new(cfg);
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(0),
            50_000_000,
            Priority(0),
            0,
        );
        // 50 MB at 50 GB/s = 1 ms, even though the NIC is only 1 Gbps.
        let t = n.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_millis(1));
        assert_eq!(n.poll(t).len(), 1);
        assert_eq!(n.tx_trace(MachineId(0)).unwrap().total_bytes(), 0.0);
    }

    #[test]
    fn trace_records_both_ends() {
        let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
            .with_latency(SimDuration::ZERO)
            .with_trace(SimDuration::from_millis(1));
        let mut n = Network::new(cfg);
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            3_000_000,
            Priority(0),
            0,
        );
        let t = n.next_event_time().unwrap();
        n.poll(t);
        let tx = n.tx_trace(MachineId(0)).unwrap().total_bytes();
        let rx = n.rx_trace(MachineId(1)).unwrap().total_bytes();
        assert!((tx - 3_000_000.0).abs() < 1.0);
        assert!((rx - 3_000_000.0).abs() < 1.0);
        assert_eq!(n.tx_trace(MachineId(1)).unwrap().total_bytes(), 0.0);
    }

    #[test]
    fn incast_completion_time_reflects_sharing() {
        let mut n = net(4, 8.0); // 1 GB/s
                                 // Three senders push 1 MB each into machine 0's rx.
        for s in 1..4 {
            n.start_flow(
                SimTime::ZERO,
                MachineId(s),
                MachineId(0),
                1_000_000,
                Priority(0),
                s as u64,
            );
        }
        // Fair share: 1/3 GB/s each; all complete at 3 ms.
        let t = n.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 0.003).abs() < 1e-9);
        assert_eq!(n.poll(t).len(), 3);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_rejected() {
        let mut n = net(2, 1.0);
        n.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), 0, Priority(0), 0);
    }

    #[test]
    fn poll_is_idempotent_at_same_instant() {
        let mut n = net(2, 8.0);
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(0),
            0,
        );
        let t = n.next_event_time().unwrap();
        assert_eq!(n.poll(t).len(), 1);
        assert!(n.poll(t).is_empty());
        assert_eq!(n.next_event_time(), None);
    }

    #[test]
    fn degraded_port_slows_and_recovers() {
        let mut n = net(2, 8.0); // 1 GB/s
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            2_000_000,
            Priority(0),
            0,
        );
        // At 1 ms (1 MB in), the sender's uplink degrades to a quarter.
        let mid = SimTime::from_millis(1);
        assert!(n.poll(mid).is_empty());
        n.set_port_scale(mid, MachineId(0), 0.25, 1.0);
        // Remaining 1 MB at 0.25 GB/s = 4 ms more.
        assert_eq!(n.next_event_time(), Some(SimTime::from_millis(5)));
        // Recovery at 3 ms: 0.5 MB left at full rate = 0.5 ms more.
        let later = SimTime::from_millis(3);
        assert!(n.poll(later).is_empty());
        n.set_port_scale(later, MachineId(0), 1.0, 1.0);
        assert_eq!(n.next_event_time(), Some(SimTime::from_micros(3500)));
        assert_eq!(n.poll(SimTime::from_micros(3500)).len(), 1);
    }

    #[test]
    fn rx_degradation_binds_incast() {
        let mut n = net(3, 8.0);
        n.set_port_scale(SimTime::ZERO, MachineId(0), 1.0, 0.5);
        for s in 1..3 {
            n.start_flow(
                SimTime::ZERO,
                MachineId(s),
                MachineId(0),
                1_000_000,
                Priority(0),
                s as u64,
            );
        }
        // 2 MB through a 0.5 GB/s rx port: both finish at 4 ms.
        let t = n.next_event_time().unwrap();
        assert!((t.as_secs_f64() - 0.004).abs() < 1e-9, "{t}");
        assert_eq!(n.poll(t).len(), 2);
    }

    #[test]
    fn cancelled_flow_frees_bandwidth_and_never_delivers() {
        let mut n = net(2, 8.0);
        let victim = n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(0),
            1,
        );
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(0),
            2,
        );
        // Sharing: 0.5 GB/s each. Cancel the victim at 1 ms.
        let mid = SimTime::from_millis(1);
        assert!(n.poll(mid).is_empty());
        assert!(n.cancel_flow(mid, victim));
        assert!(
            !n.cancel_flow(mid, victim),
            "double cancel must report false"
        );
        // Survivor has 0.5 MB left at full rate: done at 1.5 ms.
        let t = n.next_event_time().unwrap();
        assert_eq!(t, SimTime::from_micros(1500));
        let done = n.poll(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 2);
        assert!(n.is_idle());
    }

    #[test]
    fn cancel_in_delivery_stage_suppresses_delivery() {
        let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
            .with_latency(SimDuration::from_micros(500));
        let mut n = Network::new(cfg);
        let id = n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(0),
            9,
        );
        // Drained at 1 ms, delivery due 1.5 ms; cancel in between.
        assert!(n.poll(SimTime::from_millis(1)).is_empty());
        assert!(n.cancel_flow(SimTime::from_micros(1200), id));
        assert!(n.is_idle());
        assert_eq!(n.next_event_time(), None);
    }

    #[test]
    fn tracer_sees_wire_events_including_loopback() {
        use p3_trace::TraceEvent;

        let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0)).with_latency(SimDuration::ZERO);
        let mut n = Network::new(cfg);
        let handle = TraceHandle::new();
        n.set_tracer(handle.clone());
        n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            1_000_000,
            Priority(2),
            7,
        );
        n.start_flow(
            SimTime::ZERO,
            MachineId(1),
            MachineId(1),
            1_000_000,
            Priority(0),
            8,
        );
        let mut guard = 0;
        while let Some(t) = n.next_event_time() {
            n.poll(t);
            guard += 1;
            assert!(guard < 10);
        }
        let log = handle.drain();
        let starts: Vec<u64> = log
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::WireStart { msg_id, .. } => Some(msg_id),
                _ => None,
            })
            .collect();
        let ends: Vec<u64> = log
            .events()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::WireEnd { msg_id, .. } => Some(msg_id),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![7, 8], "both flows start, loopback included");
        let mut sorted = ends.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![7, 8], "both flows end, loopback included");
    }

    #[test]
    fn flow_ids_are_unique_and_monotone() {
        let mut n = net(2, 8.0);
        let a = n.start_flow(
            SimTime::ZERO,
            MachineId(0),
            MachineId(1),
            10,
            Priority(0),
            0,
        );
        let b = n.start_flow(
            SimTime::ZERO,
            MachineId(1),
            MachineId(0),
            10,
            Priority(0),
            0,
        );
        assert!(b > a);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the message mix, every byte handed to the fabric is
        /// eventually delivered, exactly once.
        #[test]
        fn conservation_of_messages(
            sizes in prop::collection::vec(1u64..5_000_000, 1..20),
            prios in prop::collection::vec(0u32..4, 20),
            gbps in 1.0f64..40.0,
        ) {
            let cfg = NetworkConfig::new(4, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::from_micros(5));
            let mut n = Network::new(cfg);
            for (i, &s) in sizes.iter().enumerate() {
                let src = MachineId(i % 4);
                let dst = MachineId((i + 1 + i / 4) % 4);
                n.start_flow(SimTime::ZERO, src, dst, s, Priority(prios[i]), i as u64);
            }
            let mut seen = vec![false; sizes.len()];
            let mut guard = 0;
            while let Some(t) = n.next_event_time() {
                guard += 1;
                prop_assert!(guard < 10_000, "simulation did not converge");
                for c in n.poll(t) {
                    let i = c.tag as usize;
                    prop_assert!(!seen[i], "flow {i} delivered twice");
                    prop_assert_eq!(c.bytes, sizes[i]);
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "undelivered flows: {:?}", seen);
            prop_assert!(n.is_idle());
        }

        /// A single flow's completion time is exactly size/bandwidth
        /// (+latency), independent of size and speed.
        #[test]
        fn isolated_flow_timing(bytes in 1u64..100_000_000, gbps in 0.5f64..100.0) {
            let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::ZERO);
            let mut n = Network::new(cfg);
            n.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), bytes, Priority(0), 0);
            let t = n.next_event_time().unwrap();
            let expect = bytes as f64 / (gbps * 1e9 / 8.0);
            prop_assert!((t.as_secs_f64() - expect).abs() < 2e-9 + expect * 1e-9);
            prop_assert_eq!(n.poll(t).len(), 1);
        }

        /// Under arbitrary mid-run cancellations, every flow is either
        /// delivered exactly once or cancelled exactly once — never both,
        /// never neither, and the fabric always drains.
        #[test]
        fn conservation_under_cancellation(
            sizes in prop::collection::vec(1u64..3_000_000, 2..16),
            cancel_mask in prop::collection::vec(any::<bool>(), 16),
            gbps in 1.0f64..20.0,
        ) {
            let cfg = NetworkConfig::new(4, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::from_micros(5));
            let mut n = Network::new(cfg);
            let mut ids = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                let src = MachineId(i % 4);
                let dst = MachineId((i + 1 + i / 4) % 4);
                ids.push(n.start_flow(SimTime::ZERO, src, dst, s, Priority((i % 3) as u32), i as u64));
            }
            // Cancel the masked flows at the first network event instant.
            let mid = n.next_event_time().unwrap();
            let mut cancelled = vec![false; sizes.len()];
            let early = n.poll(mid);
            let mut delivered = vec![false; sizes.len()];
            for c in &early {
                delivered[c.tag as usize] = true;
            }
            for (i, &id) in ids.iter().enumerate() {
                if cancel_mask[i] && !delivered[i] {
                    cancelled[i] = n.cancel_flow(mid, id);
                    prop_assert!(cancelled[i], "live flow {i} failed to cancel");
                }
            }
            let mut guard = 0;
            while let Some(t) = n.next_event_time() {
                guard += 1;
                prop_assert!(guard < 10_000, "network did not drain");
                for c in n.poll(t) {
                    let i = c.tag as usize;
                    prop_assert!(!delivered[i], "flow {i} delivered twice");
                    prop_assert!(!cancelled[i], "cancelled flow {i} was delivered");
                    delivered[i] = true;
                }
            }
            for i in 0..sizes.len() {
                prop_assert!(delivered[i] ^ cancelled[i], "flow {i}: delivered={} cancelled={}", delivered[i], cancelled[i]);
            }
            prop_assert!(n.is_idle());
        }

        /// Aggregate goodput through one port never exceeds its capacity.
        #[test]
        fn port_capacity_never_exceeded(
            sizes in prop::collection::vec(1_000u64..2_000_000, 2..12),
        ) {
            let gbps = 10.0;
            let cfg = NetworkConfig::new(3, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::ZERO)
                .with_trace(SimDuration::from_micros(100));
            let mut n = Network::new(cfg);
            // Everything funnels into machine 0's rx.
            for (i, &s) in sizes.iter().enumerate() {
                n.start_flow(SimTime::ZERO, MachineId(1 + i % 2), MachineId(0), s, Priority(0), i as u64);
            }
            let mut guard = 0;
            while let Some(t) = n.next_event_time() {
                n.poll(t);
                guard += 1;
                prop_assert!(guard < 1000);
            }
            let cap_bytes_per_bin = gbps * 1e9 / 8.0 * 100e-6;
            for &b in n.rx_trace(MachineId(0)).unwrap().bytes_per_bin() {
                prop_assert!(b <= cap_bytes_per_bin * (1.0 + 1e-6));
            }
        }
    }
}
