//! # p3-net — fluid flow-level network simulator
//!
//! Models the cluster fabric the paper's experiments run on: every machine
//! has a full-duplex NIC (independent transmit/receive ports of equal
//! bandwidth), transfers are fluid flows sharing ports under **max-min
//! fairness within a priority class** and **strict priority across classes**
//! (the fluid analogue of P3's priority-tagged packet scheduling), and
//! per-machine utilization traces reproduce the paper's `bwm-ng` NIC
//! sampling.
//!
//! The fabric is driven externally — the cluster simulator starts flows,
//! asks for [`Network::next_event_time`], and [`Network::poll`]s completions
//! — so the whole simulation stays single-threaded and deterministic.
//!
//! # Examples
//!
//! ```
//! use p3_des::{SimDuration, SimTime};
//! use p3_net::{Bandwidth, MachineId, Network, NetworkConfig, Priority};
//!
//! let cfg = NetworkConfig::new(4, Bandwidth::from_gbps(10.0))
//!     .with_latency(SimDuration::ZERO);
//! let mut net = Network::new(cfg);
//!
//! // An urgent slice and a bulk slice leave machine 0 together; the urgent
//! // one gets the whole port first.
//! net.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), 250_000, Priority(0), 1);
//! net.start_flow(SimTime::ZERO, MachineId(0), MachineId(2), 250_000, Priority(9), 2);
//! let first = net.next_event_time().unwrap();
//! let done = net.poll(first);
//! assert_eq!(done[0].tag, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod allocator;
mod analysis;
mod multilink;
mod network;
mod packet;
mod trace;
mod types;

pub use allocator::{
    allocate_rates, allocate_rates_capped, allocate_rates_capped_with_work, AllocWork, FlowSpec,
};
pub use analysis::{overlap_coefficient, trace_stats, TraceStats};
pub use multilink::{
    allocate_rates_on_graph, allocate_rates_on_graph_with_work, GraphAllocation, LinkGraph, LinkId,
};
pub use network::{
    CompletedFlow, DeliveringSnapshot, FlowSnapshot, LinkUsage, NetStats, Network, NetworkConfig,
    NetworkSnapshot,
};
pub use packet::{packet_simulate, PacketMessage, DEFAULT_MTU};
pub use trace::PortTrace;
pub use types::{Bandwidth, FlowId, MachineId, Priority};
