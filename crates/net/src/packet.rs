//! A packet-granularity reference simulator for cross-validating the fluid
//! model.
//!
//! Fluid max-min sharing is an idealization; this module implements the
//! same fabric at MTU granularity with completely different machinery —
//! per-port strict-priority packet queues, store-and-forward through the
//! sender's tx port then the receiver's rx port — and the test suite
//! checks that both models agree on completion times within a small
//! tolerance on scenarios where the theoretical answer is known. Agreement
//! between two independent implementations is the strongest correctness
//! evidence a simulator can offer.

use crate::types::{Bandwidth, MachineId, Priority};
use p3_des::{EventQueue, SimDuration, SimTime};
use std::collections::BinaryHeap;

/// Default MTU: 9000-byte jumbo frames, as on the paper's testbed-class
/// networks.
pub const DEFAULT_MTU: u64 = 9_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedPacket {
    priority: u32,
    /// Packet index within its message: ordering on (priority, pkt_idx,
    /// seq) interleaves concurrent messages packet-by-packet — the
    /// packet-granular analogue of fair queueing, matching the fluid
    /// model's max-min sharing.
    pkt_idx: u64,
    seq: u64,
    msg: usize,
    bytes: u64,
    last: bool,
}

impl PartialOrd for QueuedPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (priority, pkt_idx, seq) via reversal.
        (other.priority, other.pkt_idx, other.seq).cmp(&(self.priority, self.pkt_idx, self.seq))
    }
}

#[derive(Debug, Default)]
struct Port {
    queue: BinaryHeap<QueuedPacket>,
    busy: bool,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Release {
        msg: usize,
    },
    TxDone {
        machine: usize,
        packet: QueuedPacket,
    },
    RxDone {
        machine: usize,
        packet: QueuedPacket,
    },
}

/// One message to transfer in a packet-level scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMessage {
    /// Source machine.
    pub src: MachineId,
    /// Destination machine.
    pub dst: MachineId,
    /// Payload bytes.
    pub bytes: u64,
    /// Priority class (lower = more urgent).
    pub priority: Priority,
    /// Release time.
    pub at: SimTime,
}

/// Runs a packet-level simulation of the given messages over a cluster of
/// `machines` full-duplex NICs and returns each message's delivery time
/// (parallel to `messages`).
///
/// Packets of one message traverse src.tx then dst.rx in order; ports
/// serve strict-priority, FIFO within class. Completion is when the last
/// packet clears the receiver port.
///
/// # Panics
///
/// Panics on degenerate inputs (no machines, zero-byte messages, machine
/// out of range).
///
/// # Examples
///
/// ```
/// use p3_des::SimTime;
/// use p3_net::{packet_simulate, Bandwidth, MachineId, PacketMessage, Priority};
///
/// let msgs = [PacketMessage {
///     src: MachineId(0),
///     dst: MachineId(1),
///     bytes: 90_000,
///     priority: Priority(0),
///     at: SimTime::ZERO,
/// }];
/// let done = packet_simulate(&msgs, 2, Bandwidth::from_gbps(0.72), 9_000);
/// // 10 packets of 9 kB at 90 kB/ms: ~1 ms + one packet of rx pipeline.
/// assert!((done[0].as_secs_f64() - 0.0011).abs() < 1e-6);
/// ```
pub fn packet_simulate(
    messages: &[PacketMessage],
    machines: usize,
    bandwidth: Bandwidth,
    mtu: u64,
) -> Vec<SimTime> {
    assert!(machines > 0, "no machines");
    assert!(mtu > 0, "zero MTU");
    for m in messages {
        assert!(
            m.src.0 < machines && m.dst.0 < machines,
            "machine out of range"
        );
        assert!(m.bytes > 0, "zero-byte message");
    }
    let rate = bandwidth.bytes_per_sec();
    assert!(rate > 0.0, "zero bandwidth");
    let t_of = |bytes: u64| SimDuration::from_secs_f64(bytes as f64 / rate);

    let mut tx: Vec<Port> = (0..machines).map(|_| Port::default()).collect();
    let mut rx: Vec<Port> = (0..machines).map(|_| Port::default()).collect();
    let mut done = vec![SimTime::MAX; messages.len()];
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut seq = 0u64;

    // Helper to start a port if idle.
    fn kick(
        port: &mut Port,
        machine: usize,
        is_tx: bool,
        rate_of: &impl Fn(u64) -> SimDuration,
        queue: &mut EventQueue<Ev>,
    ) {
        if port.busy {
            return;
        }
        if let Some(p) = port.queue.pop() {
            port.busy = true;
            let ev = if is_tx {
                Ev::TxDone { machine, packet: p }
            } else {
                Ev::RxDone { machine, packet: p }
            };
            queue.schedule_in(rate_of(p.bytes), ev);
        }
    }

    // Seed: one release event per message; packetization happens at the
    // release instant so the calendar clock is always correct.
    for (i, m) in messages.iter().enumerate() {
        queue.schedule_at(m.at, Ev::Release { msg: i });
    }

    while let Some((_, ev)) = queue.pop() {
        match ev {
            Ev::Release { msg } => {
                let m = &messages[msg];
                let mut remaining = m.bytes;
                let mut pkt_idx = 0u64;
                while remaining > 0 {
                    let sz = remaining.min(mtu);
                    remaining -= sz;
                    tx[m.src.0].queue.push(QueuedPacket {
                        priority: m.priority.0,
                        pkt_idx,
                        seq,
                        msg,
                        bytes: sz,
                        last: remaining == 0,
                    });
                    pkt_idx += 1;
                    seq += 1;
                }
                kick(&mut tx[m.src.0], m.src.0, true, &t_of, &mut queue);
            }
            Ev::TxDone { machine, packet } => {
                tx[machine].busy = false;
                // Hand the packet to the receiver's rx port.
                let dst = messages[packet.msg].dst.0;
                rx[dst].queue.push(packet);
                kick(&mut rx[dst], dst, false, &t_of, &mut queue);
                kick(&mut tx[machine], machine, true, &t_of, &mut queue);
            }
            Ev::RxDone { machine, packet } => {
                rx[machine].busy = false;
                if packet.last {
                    done[packet.msg] = queue.now();
                }
                kick(&mut rx[machine], machine, false, &t_of, &mut queue);
            }
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};

    fn msg(src: usize, dst: usize, bytes: u64, prio: u32) -> PacketMessage {
        PacketMessage {
            src: MachineId(src),
            dst: MachineId(dst),
            bytes,
            priority: Priority(prio),
            at: SimTime::ZERO,
        }
    }

    /// Fluid completion times for the same scenario.
    fn fluid(messages: &[PacketMessage], machines: usize, bw: Bandwidth) -> Vec<SimTime> {
        let cfg = NetworkConfig::new(machines, bw).with_latency(SimDuration::ZERO);
        let mut net = Network::new(cfg);
        for (i, m) in messages.iter().enumerate() {
            net.start_flow(m.at, m.src, m.dst, m.bytes, m.priority, i as u64);
        }
        let mut done = vec![SimTime::MAX; messages.len()];
        while let Some(t) = net.next_event_time() {
            for c in net.poll(t) {
                done[c.tag as usize] = t;
            }
        }
        done
    }

    #[test]
    fn single_message_matches_fluid_within_one_packet() {
        let bw = Bandwidth::from_gbps(1.0);
        let msgs = [msg(0, 1, 1_000_000, 0)];
        let p = packet_simulate(&msgs, 2, bw, DEFAULT_MTU);
        let f = fluid(&msgs, 2, bw);
        // Store-and-forward adds exactly one packet of pipeline fill.
        let one_packet = DEFAULT_MTU as f64 / bw.bytes_per_sec();
        let diff = p[0].as_secs_f64() - f[0].as_secs_f64();
        assert!(
            (diff - one_packet).abs() < one_packet * 0.01,
            "diff {diff} vs packet time {one_packet}"
        );
    }

    #[test]
    fn equal_flows_finish_together_in_both_models() {
        // Two same-size flows out of one machine: fluid shares 50/50; the
        // packet model interleaves packets — both finish at ~2×.
        let bw = Bandwidth::from_gbps(1.0);
        let msgs = [msg(0, 1, 900_000, 0), msg(0, 2, 900_000, 0)];
        let p = packet_simulate(&msgs, 3, bw, DEFAULT_MTU);
        let f = fluid(&msgs, 3, bw);
        for i in 0..2 {
            let rel = (p[i].as_secs_f64() - f[i].as_secs_f64()).abs() / f[i].as_secs_f64();
            assert!(rel < 0.02, "message {i}: packet {} vs fluid {}", p[i], f[i]);
        }
    }

    #[test]
    fn strict_priority_agrees_with_fluid() {
        // Urgent + bulk from the same sender: urgent takes the port first
        // in both models.
        let bw = Bandwidth::from_gbps(1.0);
        let msgs = [msg(0, 1, 450_000, 5), msg(0, 2, 450_000, 0)];
        let p = packet_simulate(&msgs, 3, bw, DEFAULT_MTU);
        let f = fluid(&msgs, 3, bw);
        // Urgent message: ~450kB at 125MB/s = 3.6ms in both (the packet
        // model adds up to two packets of store-and-forward pipeline).
        let rel = (p[1].as_secs_f64() - f[1].as_secs_f64()).abs() / f[1].as_secs_f64();
        assert!(rel < 0.05, "urgent: packet {} vs fluid {}", p[1], f[1]);
        assert!(p[1] < p[0], "urgent finishes first");
        // Bulk finishes after both have fully crossed: ~7.2ms both.
        let rel = (p[0].as_secs_f64() - f[0].as_secs_f64()).abs() / f[0].as_secs_f64();
        assert!(rel < 0.02, "bulk: packet {} vs fluid {}", p[0], f[0]);
    }

    #[test]
    fn incast_aggregate_matches_fluid() {
        // Three senders into one receiver: rx at capacity; all finish ~3×
        // a solo transfer in both models.
        let bw = Bandwidth::from_gbps(2.0);
        let msgs = [
            msg(1, 0, 500_000, 0),
            msg(2, 0, 500_000, 0),
            msg(3, 0, 500_000, 0),
        ];
        let p = packet_simulate(&msgs, 4, bw, DEFAULT_MTU);
        let f = fluid(&msgs, 4, bw);
        let p_max = p.iter().max().expect("nonempty").as_secs_f64();
        let f_max = f.iter().max().expect("nonempty").as_secs_f64();
        assert!(
            ((p_max - f_max) / f_max).abs() < 0.02,
            "incast: packet {p_max} vs fluid {f_max}"
        );
    }

    #[test]
    fn staggered_release_is_respected() {
        let bw = Bandwidth::from_gbps(1.0);
        let late = PacketMessage {
            src: MachineId(0),
            dst: MachineId(1),
            bytes: 9_000,
            priority: Priority(0),
            at: SimTime::from_millis(5),
        };
        let done = packet_simulate(&[late], 2, bw, DEFAULT_MTU);
        assert!(done[0] >= SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_rejected() {
        packet_simulate(
            &[msg(0, 1, 0, 0)],
            2,
            Bandwidth::from_gbps(1.0),
            DEFAULT_MTU,
        );
    }
}
