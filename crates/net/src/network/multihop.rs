//! Multi-hop (link-graph) rate computation and per-link accounting.
//!
//! Active when the configuration carries a [`LinkGraph`]: flows are routed
//! over the graph's fixed paths, rates come from the multi-constraint
//! allocator in [`crate::multilink`], and the fabric additionally tracks
//! per-link busy time and bytes carried for [`Network::link_usage`].

use super::{LinkUsage, Network};
use crate::allocator::{AllocWork, FlowSpec};
use crate::multilink::{allocate_rates_on_graph_with_work, LinkGraph, LinkId};

/// Computes link-graph rates for `specs` (parallel to the network's
/// active flows) and records each flow's bottleneck link. Allocator
/// effort is accumulated into `work`. Returns all-zero rates when the
/// configuration has no graph (the caller dispatches on that, so this is
/// purely defensive).
pub(super) fn rates(net: &mut Network, specs: &[FlowSpec], work: &mut AllocWork) -> Vec<f64> {
    let Some(g) = &net.cfg.link_graph else {
        return vec![0.0; specs.len()];
    };
    let caps = g.scaled_caps(net.cfg.efficiency, &net.tx_scale, &net.rx_scale);
    let alloc = allocate_rates_on_graph_with_work(specs, g, &caps, net.cfg.flow_cap, work);
    for (f, b) in net.flows.iter_mut().zip(alloc.bottleneck) {
        f.bottleneck = b;
    }
    alloc.rates
}

/// Accrues per-link occupancy (busy seconds and bytes carried) for the
/// elapsed interval `dt`, under the rates in force over that interval.
/// Called from `Network::advance` before flow progress is integrated.
pub(super) fn account_advance(net: &mut Network, dt: f64) {
    let Some(g) = &net.cfg.link_graph else {
        return;
    };
    let mut rate_sum = vec![0.0; g.num_links()];
    for f in &net.flows {
        if f.rate > 0.0 {
            for l in g.path(f.src, f.dst) {
                rate_sum[l.0] += f.rate;
            }
        }
    }
    for (l, &r) in rate_sum.iter().enumerate() {
        if r > 0.0 {
            net.link_busy[l] += dt;
            net.link_bytes[l] += r * dt;
        }
    }
}

/// Builds the per-link usage report for [`Network::link_usage`]. Empty on
/// the flat single-switch fabric.
pub(super) fn usage(net: &Network) -> Vec<LinkUsage> {
    let Some(g) = &net.cfg.link_graph else {
        return Vec::new();
    };
    (0..g.num_links())
        .map(|l| LinkUsage {
            name: g.link_name(LinkId(l)).to_string(),
            capacity: g.link_cap(LinkId(l)),
            busy_secs: net.link_busy[l],
            bytes: net.link_bytes[l],
            transit: g.is_transit(LinkId(l)),
        })
        .collect()
}

/// Number of links in the configured graph, zero on the flat fabric.
pub(super) fn num_links(cfg_graph: &Option<LinkGraph>) -> usize {
    cfg_graph.as_ref().map_or(0, LinkGraph::num_links)
}
