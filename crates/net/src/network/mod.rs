//! The fluid network: flow lifecycle, exact completion events, utilization
//! traces.
//!
//! The module splits along the fabric model: `config` holds the static
//! cluster description, `flat` the flat single-switch rate computation,
//! `multihop` the link-graph generalization plus per-link accounting.
//! This file keeps the [`Network`] facade — flow lifecycle, snapshots,
//! and the deterministic work counters ([`NetStats`]) — and dispatches
//! rate recomputation to whichever fabric model the configuration
//! selects.

mod config;
mod flat;
mod multihop;
#[cfg(test)]
mod tests;

pub use config::NetworkConfig;

use crate::allocator::{AllocWork, FlowSpec};
use crate::multilink::LinkId;
use crate::trace::PortTrace;
use crate::types::{FlowId, MachineId, Priority};
use p3_des::{SimDuration, SimTime};
use p3_trace::{TraceEvent, TraceHandle};

/// A finished transfer, handed back by [`Network::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedFlow {
    /// Handle returned by [`Network::start_flow`].
    pub id: FlowId,
    /// Transmitting machine.
    pub src: MachineId,
    /// Receiving machine.
    pub dst: MachineId,
    /// Caller-supplied correlation tag.
    pub tag: u64,
    /// Message size in bytes.
    pub bytes: u64,
    /// The saturated link that bounded the flow's rate under its final
    /// allocation (a [`crate::LinkId`] index). `None` for loopback
    /// transfers, on the flat single-switch fabric, or when the per-flow
    /// cap (not a link) was the binding constraint.
    pub bottleneck: Option<usize>,
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    id: FlowId,
    src: usize,
    dst: usize,
    priority: Priority,
    tag: u64,
    bytes: u64,
    remaining: f64,
    rate: f64, // bytes/sec under the current allocation
    /// Saturated link bounding the current rate (link-graph mode only).
    bottleneck: Option<LinkId>,
}

#[derive(Debug, Clone)]
struct Delivering {
    at: SimTime,
    flow: CompletedFlow,
}

/// Deterministic work counters of a fabric: how much flow and allocator
/// machinery a run exercised. Every field is pure integer accounting
/// driven by the simulation's own (deterministic) event sequence — no
/// wall clock, no sampling — so two runs of the same configuration report
/// identical stats, and a snapshot/resume pair reports the same totals as
/// the uninterrupted run. The float arithmetic of the fluid model is
/// untouched by the counting (pinned by the allocator bit-identity
/// property tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Rate recomputations (the flow set or port capacities changed).
    pub reallocations: u64,
    /// Active flows summed over all reallocations — the allocator's input
    /// volume.
    pub flows_touched: u64,
    /// Water-fill raise rounds summed over all reallocations.
    pub waterfill_rounds: u64,
    /// Ports (flat fabric) or links (graph fabric) carrying at least one
    /// active flow, summed over all water-fill rounds.
    pub ports_touched: u64,
    /// Peak number of concurrently active NIC flows (loopback excluded).
    pub peak_in_flight: u64,
}

/// The simulated cluster fabric.
///
/// `Network` is driven by its owner (the cluster simulator): the owner calls
/// [`Network::start_flow`] to begin transfers, [`Network::next_event_time`]
/// to learn when the fabric next changes state, and [`Network::poll`] to
/// advance the fluid model to the current instant and collect completed
/// transfers.
///
/// # Examples
///
/// ```
/// use p3_des::{SimDuration, SimTime};
/// use p3_net::{Bandwidth, MachineId, Network, NetworkConfig, Priority};
///
/// let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
///     .with_latency(SimDuration::ZERO);
/// let mut net = Network::new(cfg);
/// // 1 MB at 1 GB/s takes 1 ms.
/// net.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), 1_000_000, Priority(0), 7);
/// let done_at = net.next_event_time().unwrap();
/// assert_eq!(done_at, SimTime::from_millis(1));
/// let done = net.poll(done_at);
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].tag, 7);
/// ```
#[derive(Debug)]
pub struct Network {
    cfg: NetworkConfig,
    flows: Vec<ActiveFlow>,
    delivering: Vec<Delivering>,
    last_update: SimTime,
    next_flow_id: u64,
    tx_traces: Vec<PortTrace>,
    rx_traces: Vec<PortTrace>,
    dirty: bool, // rates stale (flow set changed since last allocation)
    /// Per-machine transmit capacity factor in `(0, 1]` (fault injection:
    /// a degraded NIC or congested uplink).
    tx_scale: Vec<f64>,
    /// Per-machine receive capacity factor in `(0, 1]`.
    rx_scale: Vec<f64>,
    /// Event sink for wire-level spans; `None` (the default) records
    /// nothing and costs one branch per flow transition.
    tracer: Option<TraceHandle>,
    /// Per-link busy time in seconds (link-graph mode only; indexed by
    /// `LinkId`). A link is busy while any flow crossing it has a
    /// positive rate.
    link_busy: Vec<f64>,
    /// Per-link bytes carried (link-graph mode only).
    link_bytes: Vec<f64>,
    /// Deterministic work counters (see [`NetStats`]).
    stats: NetStats,
}

/// Dynamic state of one in-flight flow, as captured by
/// [`Network::snapshot`]. Field order mirrors the private `ActiveFlow`;
/// float fields carry exact bit patterns so a restored fabric continues
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSnapshot {
    /// Flow handle (monotone, unique for the run).
    pub id: u64,
    /// Transmitting machine index.
    pub src: usize,
    /// Receiving machine index.
    pub dst: usize,
    /// Priority class.
    pub priority: u32,
    /// Caller correlation tag.
    pub tag: u64,
    /// Message size in bytes.
    pub bytes: u64,
    /// Bytes not yet drained.
    pub remaining: f64,
    /// Current allocated rate in bytes/sec.
    pub rate: f64,
    /// Saturated link bounding the rate (link-graph mode only).
    pub bottleneck: Option<usize>,
}

/// A drained transfer awaiting its delivery instant, as captured by
/// [`Network::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveringSnapshot {
    /// Delivery instant.
    pub at: SimTime,
    /// The completed transfer to hand back at `at`.
    pub flow: CompletedFlow,
}

/// The full dynamic state of a [`Network`], sufficient to resume the fluid
/// model bit-identically on a fresh fabric built from the same
/// [`NetworkConfig`]. Static configuration (bandwidths, link graph,
/// latency) is not captured — it is rebuilt from the config.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSnapshot {
    /// In-flight flows, in the fabric's internal (semantically
    /// significant) order.
    pub flows: Vec<FlowSnapshot>,
    /// Drained transfers awaiting delivery.
    pub delivering: Vec<DeliveringSnapshot>,
    /// Instant the fluid model was last integrated to.
    pub last_update: SimTime,
    /// Next flow handle to hand out.
    pub next_flow_id: u64,
    /// Per-machine transmit capacity factors (fault injection).
    pub tx_scale: Vec<f64>,
    /// Per-machine receive capacity factors.
    pub rx_scale: Vec<f64>,
    /// Per-link busy seconds (link-graph mode; empty otherwise).
    pub link_busy: Vec<f64>,
    /// Per-link bytes carried.
    pub link_bytes: Vec<f64>,
    /// Per-machine transmit utilization bins (empty when tracing is off).
    pub tx_bins: Vec<Vec<f64>>,
    /// Per-machine receive utilization bins.
    pub rx_bins: Vec<Vec<f64>>,
    /// Deterministic work counters, carried so a resumed run reports the
    /// same totals as the uninterrupted one.
    pub stats: NetStats,
}

/// Observed usage of one link over a run, from [`Network::link_usage`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Link name from the graph (`m3.tx`, `rack1.up`, …).
    pub name: String,
    /// Nominal capacity in bytes/sec.
    pub capacity: f64,
    /// Seconds during which at least one flow crossed the link.
    pub busy_secs: f64,
    /// Total bytes carried.
    pub bytes: f64,
    /// True for switch uplinks/downlinks, false for machine ports.
    pub transit: bool,
}

impl Network {
    /// Builds an idle fabric from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.machines` is zero.
    pub fn new(cfg: NetworkConfig) -> Self {
        assert!(cfg.machines > 0, "a cluster needs at least one machine");
        let (tx_traces, rx_traces) = match cfg.trace_bin {
            Some(bin) => (
                (0..cfg.machines).map(|_| PortTrace::new(bin)).collect(),
                (0..cfg.machines).map(|_| PortTrace::new(bin)).collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        let machines = cfg.machines;
        let num_links = multihop::num_links(&cfg.link_graph);
        if let Some(g) = &cfg.link_graph {
            assert_eq!(g.machines(), machines, "link graph machine count mismatch");
        }
        Network {
            cfg,
            flows: Vec::new(),
            delivering: Vec::new(),
            last_update: SimTime::ZERO,
            next_flow_id: 0,
            tx_traces,
            rx_traces,
            dirty: false,
            tx_scale: vec![1.0; machines],
            rx_scale: vec![1.0; machines],
            tracer: None,
            link_busy: vec![0.0; num_links],
            link_bytes: vec![0.0; num_links],
            stats: NetStats::default(),
        }
    }

    /// Attaches a trace sink: every flow emits a `WireStart` when it enters
    /// the fabric (loopback included) and a `WireEnd` when its last byte is
    /// delivered, tagged with the caller's correlation tag as `msg_id`.
    /// Tracing is purely observational — it never changes flow timing.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = Some(tracer);
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Number of transfers currently using NIC bandwidth.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Deterministic work counters accumulated so far (see [`NetStats`]).
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// True when no transfer is in flight or awaiting delivery.
    pub fn is_idle(&self) -> bool {
        self.flows.is_empty() && self.delivering.is_empty()
    }

    /// Begins a transfer of `bytes` from `src` to `dst` with the given
    /// priority class and caller tag, starting at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the network's last update, if either machine
    /// is out of range, or if `bytes` is zero.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        src: MachineId,
        dst: MachineId,
        bytes: u64,
        priority: Priority,
        tag: u64,
    ) -> FlowId {
        assert!(src.0 < self.cfg.machines, "unknown src {src}");
        assert!(dst.0 < self.cfg.machines, "unknown dst {dst}");
        assert!(bytes > 0, "zero-byte transfer");
        self.advance(now);
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        if let Some(t) = &self.tracer {
            t.record(
                now,
                TraceEvent::WireStart {
                    msg_id: tag,
                    src: src.0,
                    dst: dst.0,
                    bytes,
                    priority: priority.0,
                },
            );
        }

        if src == dst {
            // Loopback: never touches the NIC; fixed-rate private channel.
            let secs = bytes as f64 / self.cfg.loopback.bytes_per_sec();
            let at = now + self.cfg.latency + SimDuration::from_secs_f64(secs);
            self.delivering.push(Delivering {
                at,
                flow: CompletedFlow {
                    id,
                    src,
                    dst,
                    tag,
                    bytes,
                    bottleneck: None,
                },
            });
            return id;
        }

        self.flows.push(ActiveFlow {
            id,
            src: src.0,
            dst: dst.0,
            priority,
            tag,
            bytes,
            remaining: bytes as f64,
            rate: 0.0,
            bottleneck: None,
        });
        // Flows only ever join here, so sampling at the push is exact.
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.flows.len() as u64);
        self.dirty = true;
        self.reallocate();
        id
    }

    /// The earliest future instant at which the fabric changes state (a flow
    /// drains or a drained message is delivered), or `None` when idle.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for f in &self.flows {
            if f.rate > 0.0 {
                let secs = f.remaining / f.rate;
                let ns = (secs * 1e9).ceil().max(0.0).min(u64::MAX as f64) as u64;
                let t = self.last_update.saturating_add(SimDuration::from_nanos(ns));
                best = Some(best.map_or(t, |b: SimTime| b.min(t)));
            }
        }
        for d in &self.delivering {
            best = Some(best.map_or(d.at, |b: SimTime| b.min(d.at)));
        }
        best
    }

    /// Advances the fluid model to `now` and returns every transfer whose
    /// last byte has been delivered (drain time + latency ≤ `now`), in
    /// delivery order.
    pub fn poll(&mut self, now: SimTime) -> Vec<CompletedFlow> {
        self.advance(now);

        // Flows that drained move to the latency (delivery) stage.
        let mut changed = false;
        let latency = self.cfg.latency;
        let mut i = 0;
        while i < self.flows.len() {
            let f = &self.flows[i];
            // Sub-nanosecond residue from ceil-rounding counts as drained.
            let eps = f.rate * 1e-9 + 1e-9;
            if f.remaining <= eps {
                let f = self.flows.swap_remove(i);
                self.delivering.push(Delivering {
                    at: now + latency,
                    flow: CompletedFlow {
                        id: f.id,
                        src: MachineId(f.src),
                        dst: MachineId(f.dst),
                        tag: f.tag,
                        bytes: f.bytes,
                        bottleneck: f.bottleneck.map(|l| l.0),
                    },
                });
                changed = true;
            } else {
                i += 1;
            }
        }
        if changed {
            self.dirty = true;
            self.reallocate();
        }

        // Deliveries due now.
        let mut done: Vec<Delivering> = Vec::new();
        let mut i = 0;
        while i < self.delivering.len() {
            if self.delivering[i].at <= now {
                done.push(self.delivering.swap_remove(i));
            } else {
                i += 1;
            }
        }
        done.sort_by_key(|d| (d.at, d.flow.id));
        if let Some(t) = &self.tracer {
            for d in &done {
                t.record(
                    d.at,
                    TraceEvent::WireEnd {
                        msg_id: d.flow.tag,
                        src: d.flow.src.0,
                        dst: d.flow.dst.0,
                        bytes: d.flow.bytes,
                        bottleneck: d.flow.bottleneck,
                    },
                );
            }
        }
        done.into_iter().map(|d| d.flow).collect()
    }

    /// Rescales one machine's NIC capacity mid-run (fault injection: link
    /// degradation). Factors apply multiplicatively to the configured
    /// per-direction bandwidth; `1.0` restores full capacity. In-flight
    /// flows are re-allocated from `now` onward — bytes already transferred
    /// are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range, a factor is outside `(0, 1]`,
    /// or `now` precedes the network's last update.
    pub fn set_port_scale(&mut self, now: SimTime, machine: MachineId, tx: f64, rx: f64) {
        assert!(machine.0 < self.cfg.machines, "unknown machine {machine}");
        assert!(tx > 0.0 && tx <= 1.0, "tx scale {tx} outside (0, 1]");
        assert!(rx > 0.0 && rx <= 1.0, "rx scale {rx} outside (0, 1]");
        self.advance(now);
        self.tx_scale[machine.0] = tx;
        self.rx_scale[machine.0] = rx;
        self.dirty = true;
        self.reallocate();
    }

    /// Aborts an in-flight transfer (fault injection: the sending process
    /// died, or the message was dropped). The flow's port share is
    /// redistributed from `now` onward and its delivery never happens.
    /// Returns `false` when the flow is unknown or already delivered.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the network's last update.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        if let Some(i) = self.flows.iter().position(|f| f.id == id) {
            self.flows.swap_remove(i);
            self.dirty = true;
            self.reallocate();
            return true;
        }
        if let Some(i) = self.delivering.iter().position(|d| d.flow.id == id) {
            self.delivering.swap_remove(i);
            return true;
        }
        false
    }

    /// Per-machine transmit utilization trace, if tracing was enabled.
    pub fn tx_trace(&self, machine: MachineId) -> Option<&PortTrace> {
        self.tx_traces.get(machine.0)
    }

    /// Per-machine receive utilization trace, if tracing was enabled.
    pub fn rx_trace(&self, machine: MachineId) -> Option<&PortTrace> {
        self.rx_traces.get(machine.0)
    }

    /// Observed per-link usage so far (busy time and bytes carried, one
    /// entry per [`LinkId`]). Empty on the flat single-switch fabric.
    /// Busy time accrues up to the last `poll`/`start_flow` instant.
    pub fn link_usage(&self) -> Vec<LinkUsage> {
        multihop::usage(self)
    }

    /// Captures the fabric's full dynamic state. Restoring it with
    /// [`Network::restore_from`] onto a fresh fabric built from the same
    /// configuration resumes the fluid model bit-identically (rates are
    /// carried verbatim rather than recomputed, so no reallocation noise
    /// enters at the restore point).
    pub fn snapshot(&self) -> NetworkSnapshot {
        NetworkSnapshot {
            flows: self
                .flows
                .iter()
                .map(|f| FlowSnapshot {
                    id: f.id.0,
                    src: f.src,
                    dst: f.dst,
                    priority: f.priority.0,
                    tag: f.tag,
                    bytes: f.bytes,
                    remaining: f.remaining,
                    rate: f.rate,
                    bottleneck: f.bottleneck.map(|l| l.0),
                })
                .collect(),
            delivering: self
                .delivering
                .iter()
                .map(|d| DeliveringSnapshot {
                    at: d.at,
                    flow: d.flow,
                })
                .collect(),
            last_update: self.last_update,
            next_flow_id: self.next_flow_id,
            tx_scale: self.tx_scale.clone(),
            rx_scale: self.rx_scale.clone(),
            link_busy: self.link_busy.clone(),
            link_bytes: self.link_bytes.clone(),
            tx_bins: self
                .tx_traces
                .iter()
                .map(|t| t.bytes_per_bin().to_vec())
                .collect(),
            rx_bins: self
                .rx_traces
                .iter()
                .map(|t| t.bytes_per_bin().to_vec())
                .collect(),
            stats: self.stats,
        }
    }

    /// Overwrites this fabric's dynamic state with a snapshot taken from a
    /// fabric with the same configuration (see [`Network::snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's per-machine vectors do not match this
    /// fabric's machine count.
    pub fn restore_from(&mut self, snap: &NetworkSnapshot) {
        assert_eq!(snap.tx_scale.len(), self.cfg.machines, "snapshot mismatch");
        assert_eq!(snap.rx_scale.len(), self.cfg.machines, "snapshot mismatch");
        self.flows = snap
            .flows
            .iter()
            .map(|f| ActiveFlow {
                id: FlowId(f.id),
                src: f.src,
                dst: f.dst,
                priority: Priority(f.priority),
                tag: f.tag,
                bytes: f.bytes,
                remaining: f.remaining,
                rate: f.rate,
                bottleneck: f.bottleneck.map(LinkId),
            })
            .collect();
        self.delivering = snap
            .delivering
            .iter()
            .map(|d| Delivering {
                at: d.at,
                flow: d.flow,
            })
            .collect();
        self.last_update = snap.last_update;
        self.next_flow_id = snap.next_flow_id;
        self.tx_scale = snap.tx_scale.clone();
        self.rx_scale = snap.rx_scale.clone();
        self.link_busy = snap.link_busy.clone();
        self.link_bytes = snap.link_bytes.clone();
        self.stats = snap.stats;
        self.dirty = false;
        for (t, bins) in self.tx_traces.iter_mut().zip(&snap.tx_bins) {
            t.restore_bins(bins.clone());
        }
        for (t, bins) in self.rx_traces.iter_mut().zip(&snap.rx_bins) {
            t.restore_bins(bins.clone());
        }
    }

    /// Integrates flow progress from `last_update` to `now`.
    fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "network clock went backwards: {now} < {}",
            self.last_update
        );
        if now == self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        multihop::account_advance(self, dt);
        for f in &mut self.flows {
            if f.rate > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
                if !self.tx_traces.is_empty() {
                    self.tx_traces[f.src].add_rate(self.last_update, now, f.rate);
                    self.rx_traces[f.dst].add_rate(self.last_update, now, f.rate);
                }
            }
        }
        self.last_update = now;
    }

    /// Recomputes the strict-priority max-min rates, dispatching to the
    /// flat or multi-hop fabric model.
    fn reallocate(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.stats.reallocations += 1;
        self.stats.flows_touched += self.flows.len() as u64;
        let cap = self.cfg.bandwidth.bytes_per_sec() * self.cfg.efficiency;
        let specs: Vec<FlowSpec> = self
            .flows
            .iter()
            .map(|f| FlowSpec {
                src: f.src,
                dst: f.dst,
                priority: f.priority,
            })
            .collect();
        let mut work = AllocWork::default();
        let rates = if self.cfg.link_graph.is_some() {
            multihop::rates(self, &specs, &mut work)
        } else {
            flat::rates(self, &specs, cap, &mut work)
        };
        self.stats.waterfill_rounds += work.rounds;
        self.stats.ports_touched += work.port_touches;
        // A rate below one byte per simulated second is allocator noise; a
        // "running" flow at such a rate would never finish within any
        // realistic horizon and only destabilizes event times.
        let floor = (cap * 1e-12).max(1e-6);
        for (f, r) in self.flows.iter_mut().zip(rates) {
            f.rate = if r < floor { 0.0 } else { r };
        }
    }
}
