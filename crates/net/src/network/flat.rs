//! Flat single-switch rate computation.
//!
//! The default fabric model: every machine hangs off one non-blocking
//! switch, so the only capacity constraints are the per-machine NIC ports
//! (tx and rx), scaled by the protocol-efficiency factor and any
//! fault-injected port degradation. Rates come from the strict-priority
//! max-min allocator in [`crate::allocator`].

use super::Network;
use crate::allocator::{allocate_rates_capped_with_work, AllocWork, FlowSpec};

/// Computes flat-fabric rates for `specs` (parallel to the network's
/// active flows). `cap` is the effective per-port capacity in bytes/sec
/// (nominal bandwidth times protocol efficiency); per-machine fault
/// scaling is applied on top. Allocator effort is accumulated into
/// `work`.
pub(super) fn rates(net: &Network, specs: &[FlowSpec], cap: f64, work: &mut AllocWork) -> Vec<f64> {
    let tx: Vec<f64> = net.tx_scale.iter().map(|s| cap * s).collect();
    let rx: Vec<f64> = net.rx_scale.iter().map(|s| cap * s).collect();
    allocate_rates_capped_with_work(specs, &tx, &rx, net.cfg.flow_cap, work)
}
