//! Unit and property tests for the [`Network`] facade, covering both the
//! flat and multi-hop fabric models plus the deterministic work counters.

use super::*;
use crate::types::Bandwidth;

fn net(machines: usize, gbps: f64) -> Network {
    let cfg =
        NetworkConfig::new(machines, Bandwidth::from_gbps(gbps)).with_latency(SimDuration::ZERO);
    Network::new(cfg)
}

#[test]
fn isolated_flow_takes_size_over_bandwidth() {
    let mut n = net(2, 8.0); // 1 GB/s
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        2_000_000,
        Priority(0),
        0,
    );
    assert_eq!(n.next_event_time(), Some(SimTime::from_millis(2)));
    let done = n.poll(SimTime::from_millis(2));
    assert_eq!(done.len(), 1);
    assert!(n.is_idle());
}

#[test]
fn latency_delays_delivery_without_consuming_bandwidth() {
    let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
        .with_latency(SimDuration::from_micros(100));
    let mut n = Network::new(cfg);
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        0,
    );
    // Drains at 1 ms, delivers at 1.1 ms.
    assert_eq!(n.next_event_time(), Some(SimTime::from_millis(1)));
    assert!(n.poll(SimTime::from_millis(1)).is_empty());
    assert_eq!(n.next_event_time(), Some(SimTime::from_micros(1100)));
    assert_eq!(n.poll(SimTime::from_micros(1100)).len(), 1);
}

#[test]
fn two_flows_share_then_speed_up() {
    let mut n = net(3, 8.0); // 1 GB/s per port
                             // Both flows leave machine 0: share its tx at 0.5 GB/s each.
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        1,
    );
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(2),
        500_000,
        Priority(0),
        2,
    );
    // Flow 2 drains at 1 ms; flow 1 then has 0.5 MB left at full rate.
    let t1 = n.next_event_time().unwrap();
    assert_eq!(t1, SimTime::from_millis(1));
    let done = n.poll(t1);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].tag, 2);
    let t2 = n.next_event_time().unwrap();
    assert_eq!(t2, SimTime::from_micros(1500));
    let done = n.poll(t2);
    assert_eq!(done[0].tag, 1);
}

#[test]
fn priority_flow_preempts_bulk() {
    let mut n = net(2, 8.0);
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(5),
        10,
    );
    // At 0.5 ms, an urgent flow arrives; bulk flow freezes.
    let mid = SimTime::from_micros(500);
    assert!(n.poll(mid).is_empty());
    n.start_flow(mid, MachineId(0), MachineId(1), 1_000_000, Priority(0), 20);
    // Urgent drains at 1.5 ms.
    let t = n.next_event_time().unwrap();
    assert_eq!(t, SimTime::from_micros(1500));
    let done = n.poll(t);
    assert_eq!(done[0].tag, 20);
    // Bulk resumes: 0.5 MB left, drains at 2.0 ms.
    let t = n.next_event_time().unwrap();
    assert_eq!(t, SimTime::from_millis(2));
    assert_eq!(n.poll(t)[0].tag, 10);
}

#[test]
fn loopback_skips_the_nic() {
    let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(1.0))
        .with_latency(SimDuration::ZERO)
        .with_trace(SimDuration::from_millis(10));
    let mut n = Network::new(cfg);
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(0),
        50_000_000,
        Priority(0),
        0,
    );
    // 50 MB at 50 GB/s = 1 ms, even though the NIC is only 1 Gbps.
    let t = n.next_event_time().unwrap();
    assert_eq!(t, SimTime::from_millis(1));
    assert_eq!(n.poll(t).len(), 1);
    assert_eq!(n.tx_trace(MachineId(0)).unwrap().total_bytes(), 0.0);
}

#[test]
fn trace_records_both_ends() {
    let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
        .with_latency(SimDuration::ZERO)
        .with_trace(SimDuration::from_millis(1));
    let mut n = Network::new(cfg);
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        3_000_000,
        Priority(0),
        0,
    );
    let t = n.next_event_time().unwrap();
    n.poll(t);
    let tx = n.tx_trace(MachineId(0)).unwrap().total_bytes();
    let rx = n.rx_trace(MachineId(1)).unwrap().total_bytes();
    assert!((tx - 3_000_000.0).abs() < 1.0);
    assert!((rx - 3_000_000.0).abs() < 1.0);
    assert_eq!(n.tx_trace(MachineId(1)).unwrap().total_bytes(), 0.0);
}

#[test]
fn incast_completion_time_reflects_sharing() {
    let mut n = net(4, 8.0); // 1 GB/s
                             // Three senders push 1 MB each into machine 0's rx.
    for s in 1..4 {
        n.start_flow(
            SimTime::ZERO,
            MachineId(s),
            MachineId(0),
            1_000_000,
            Priority(0),
            s as u64,
        );
    }
    // Fair share: 1/3 GB/s each; all complete at 3 ms.
    let t = n.next_event_time().unwrap();
    assert!((t.as_secs_f64() - 0.003).abs() < 1e-9);
    assert_eq!(n.poll(t).len(), 3);
}

#[test]
#[should_panic(expected = "zero-byte")]
fn zero_bytes_rejected() {
    let mut n = net(2, 1.0);
    n.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), 0, Priority(0), 0);
}

#[test]
fn poll_is_idempotent_at_same_instant() {
    let mut n = net(2, 8.0);
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        0,
    );
    let t = n.next_event_time().unwrap();
    assert_eq!(n.poll(t).len(), 1);
    assert!(n.poll(t).is_empty());
    assert_eq!(n.next_event_time(), None);
}

#[test]
fn degraded_port_slows_and_recovers() {
    let mut n = net(2, 8.0); // 1 GB/s
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        2_000_000,
        Priority(0),
        0,
    );
    // At 1 ms (1 MB in), the sender's uplink degrades to a quarter.
    let mid = SimTime::from_millis(1);
    assert!(n.poll(mid).is_empty());
    n.set_port_scale(mid, MachineId(0), 0.25, 1.0);
    // Remaining 1 MB at 0.25 GB/s = 4 ms more.
    assert_eq!(n.next_event_time(), Some(SimTime::from_millis(5)));
    // Recovery at 3 ms: 0.5 MB left at full rate = 0.5 ms more.
    let later = SimTime::from_millis(3);
    assert!(n.poll(later).is_empty());
    n.set_port_scale(later, MachineId(0), 1.0, 1.0);
    assert_eq!(n.next_event_time(), Some(SimTime::from_micros(3500)));
    assert_eq!(n.poll(SimTime::from_micros(3500)).len(), 1);
}

#[test]
fn rx_degradation_binds_incast() {
    let mut n = net(3, 8.0);
    n.set_port_scale(SimTime::ZERO, MachineId(0), 1.0, 0.5);
    for s in 1..3 {
        n.start_flow(
            SimTime::ZERO,
            MachineId(s),
            MachineId(0),
            1_000_000,
            Priority(0),
            s as u64,
        );
    }
    // 2 MB through a 0.5 GB/s rx port: both finish at 4 ms.
    let t = n.next_event_time().unwrap();
    assert!((t.as_secs_f64() - 0.004).abs() < 1e-9, "{t}");
    assert_eq!(n.poll(t).len(), 2);
}

#[test]
fn cancelled_flow_frees_bandwidth_and_never_delivers() {
    let mut n = net(2, 8.0);
    let victim = n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        1,
    );
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        2,
    );
    // Sharing: 0.5 GB/s each. Cancel the victim at 1 ms.
    let mid = SimTime::from_millis(1);
    assert!(n.poll(mid).is_empty());
    assert!(n.cancel_flow(mid, victim));
    assert!(
        !n.cancel_flow(mid, victim),
        "double cancel must report false"
    );
    // Survivor has 0.5 MB left at full rate: done at 1.5 ms.
    let t = n.next_event_time().unwrap();
    assert_eq!(t, SimTime::from_micros(1500));
    let done = n.poll(t);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].tag, 2);
    assert!(n.is_idle());
}

#[test]
fn cancel_in_delivery_stage_suppresses_delivery() {
    let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0))
        .with_latency(SimDuration::from_micros(500));
    let mut n = Network::new(cfg);
    let id = n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        9,
    );
    // Drained at 1 ms, delivery due 1.5 ms; cancel in between.
    assert!(n.poll(SimTime::from_millis(1)).is_empty());
    assert!(n.cancel_flow(SimTime::from_micros(1200), id));
    assert!(n.is_idle());
    assert_eq!(n.next_event_time(), None);
}

#[test]
fn tracer_sees_wire_events_including_loopback() {
    use p3_trace::TraceEvent;

    let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(8.0)).with_latency(SimDuration::ZERO);
    let mut n = Network::new(cfg);
    let handle = TraceHandle::new();
    n.set_tracer(handle.clone());
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(2),
        7,
    );
    n.start_flow(
        SimTime::ZERO,
        MachineId(1),
        MachineId(1),
        1_000_000,
        Priority(0),
        8,
    );
    let mut guard = 0;
    while let Some(t) = n.next_event_time() {
        n.poll(t);
        guard += 1;
        assert!(guard < 10);
    }
    let log = handle.drain();
    let starts: Vec<u64> = log
        .events()
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::WireStart { msg_id, .. } => Some(msg_id),
            _ => None,
        })
        .collect();
    let ends: Vec<u64> = log
        .events()
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::WireEnd { msg_id, .. } => Some(msg_id),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec![7, 8], "both flows start, loopback included");
    let mut sorted = ends.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![7, 8], "both flows end, loopback included");
}

#[test]
fn flow_ids_are_unique_and_monotone() {
    let mut n = net(2, 8.0);
    let a = n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        10,
        Priority(0),
        0,
    );
    let b = n.start_flow(
        SimTime::ZERO,
        MachineId(1),
        MachineId(0),
        10,
        Priority(0),
        0,
    );
    assert!(b > a);
}

// ---------------------------------------------------------------------
// Deterministic work counters.

#[test]
fn stats_track_peak_and_allocator_work() {
    let mut n = net(3, 8.0);
    assert_eq!(n.stats(), NetStats::default(), "idle fabric has zero stats");
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(1),
        1_000_000,
        Priority(0),
        1,
    );
    n.start_flow(
        SimTime::ZERO,
        MachineId(0),
        MachineId(2),
        1_000_000,
        Priority(0),
        2,
    );
    let s = n.stats();
    assert_eq!(s.peak_in_flight, 2);
    assert_eq!(s.reallocations, 2, "one reallocation per flow admission");
    // First admission: one flow; second: two flows.
    assert_eq!(s.flows_touched, 3);
    assert!(s.waterfill_rounds >= 2, "{s:?}");
    assert!(s.ports_touched >= s.waterfill_rounds, "{s:?}");
    // Draining the fabric reallocates again but never raises the peak.
    while let Some(t) = n.next_event_time() {
        n.poll(t);
    }
    let s = n.stats();
    assert!(n.is_idle());
    assert_eq!(s.peak_in_flight, 2);
    assert!(s.reallocations >= 3, "{s:?}");
}

#[test]
fn loopback_does_not_count_toward_peak() {
    let mut n = net(2, 8.0);
    n.start_flow(
        SimTime::ZERO,
        MachineId(1),
        MachineId(1),
        1_000_000,
        Priority(0),
        0,
    );
    assert_eq!(n.stats().peak_in_flight, 0, "loopback never holds a NIC");
    assert_eq!(n.stats().reallocations, 0);
}

#[test]
fn stats_survive_snapshot_restore() {
    let mut a = net(3, 8.0);
    for s in 1..3 {
        a.start_flow(
            SimTime::ZERO,
            MachineId(s),
            MachineId(0),
            2_000_000,
            Priority(0),
            s as u64,
        );
    }
    // Snapshot mid-run, restore onto a fresh fabric, drain both.
    let mid = a.next_event_time().unwrap();
    a.poll(mid);
    let snap = a.snapshot();
    let mut b = net(3, 8.0);
    b.restore_from(&snap);
    assert_eq!(b.stats(), a.stats(), "counters must ride the snapshot");
    while let Some(t) = a.next_event_time() {
        a.poll(t);
    }
    while let Some(t) = b.next_event_time() {
        b.poll(t);
    }
    assert_eq!(
        a.stats(),
        b.stats(),
        "resumed fabric must report the totals of the uninterrupted run"
    );
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the message mix, every byte handed to the fabric is
        /// eventually delivered, exactly once.
        #[test]
        fn conservation_of_messages(
            sizes in prop::collection::vec(1u64..5_000_000, 1..20),
            prios in prop::collection::vec(0u32..4, 20),
            gbps in 1.0f64..40.0,
        ) {
            let cfg = NetworkConfig::new(4, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::from_micros(5));
            let mut n = Network::new(cfg);
            for (i, &s) in sizes.iter().enumerate() {
                let src = MachineId(i % 4);
                let dst = MachineId((i + 1 + i / 4) % 4);
                n.start_flow(SimTime::ZERO, src, dst, s, Priority(prios[i]), i as u64);
            }
            let mut seen = vec![false; sizes.len()];
            let mut guard = 0;
            while let Some(t) = n.next_event_time() {
                guard += 1;
                prop_assert!(guard < 10_000, "simulation did not converge");
                for c in n.poll(t) {
                    let i = c.tag as usize;
                    prop_assert!(!seen[i], "flow {i} delivered twice");
                    prop_assert_eq!(c.bytes, sizes[i]);
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "undelivered flows: {:?}", seen);
            prop_assert!(n.is_idle());
        }

        /// A single flow's completion time is exactly size/bandwidth
        /// (+latency), independent of size and speed.
        #[test]
        fn isolated_flow_timing(bytes in 1u64..100_000_000, gbps in 0.5f64..100.0) {
            let cfg = NetworkConfig::new(2, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::ZERO);
            let mut n = Network::new(cfg);
            n.start_flow(SimTime::ZERO, MachineId(0), MachineId(1), bytes, Priority(0), 0);
            let t = n.next_event_time().unwrap();
            let expect = bytes as f64 / (gbps * 1e9 / 8.0);
            prop_assert!((t.as_secs_f64() - expect).abs() < 2e-9 + expect * 1e-9);
            prop_assert_eq!(n.poll(t).len(), 1);
        }

        /// Under arbitrary mid-run cancellations, every flow is either
        /// delivered exactly once or cancelled exactly once — never both,
        /// never neither, and the fabric always drains.
        #[test]
        fn conservation_under_cancellation(
            sizes in prop::collection::vec(1u64..3_000_000, 2..16),
            cancel_mask in prop::collection::vec(any::<bool>(), 16),
            gbps in 1.0f64..20.0,
        ) {
            let cfg = NetworkConfig::new(4, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::from_micros(5));
            let mut n = Network::new(cfg);
            let mut ids = Vec::new();
            for (i, &s) in sizes.iter().enumerate() {
                let src = MachineId(i % 4);
                let dst = MachineId((i + 1 + i / 4) % 4);
                ids.push(n.start_flow(SimTime::ZERO, src, dst, s, Priority((i % 3) as u32), i as u64));
            }
            // Cancel the masked flows at the first network event instant.
            let mid = n.next_event_time().unwrap();
            let mut cancelled = vec![false; sizes.len()];
            let early = n.poll(mid);
            let mut delivered = vec![false; sizes.len()];
            for c in &early {
                delivered[c.tag as usize] = true;
            }
            for (i, &id) in ids.iter().enumerate() {
                if cancel_mask[i] && !delivered[i] {
                    cancelled[i] = n.cancel_flow(mid, id);
                    prop_assert!(cancelled[i], "live flow {i} failed to cancel");
                }
            }
            let mut guard = 0;
            while let Some(t) = n.next_event_time() {
                guard += 1;
                prop_assert!(guard < 10_000, "network did not drain");
                for c in n.poll(t) {
                    let i = c.tag as usize;
                    prop_assert!(!delivered[i], "flow {i} delivered twice");
                    prop_assert!(!cancelled[i], "cancelled flow {i} was delivered");
                    delivered[i] = true;
                }
            }
            for i in 0..sizes.len() {
                prop_assert!(delivered[i] ^ cancelled[i], "flow {i}: delivered={} cancelled={}", delivered[i], cancelled[i]);
            }
            prop_assert!(n.is_idle());
        }

        /// Aggregate goodput through one port never exceeds its capacity.
        #[test]
        fn port_capacity_never_exceeded(
            sizes in prop::collection::vec(1_000u64..2_000_000, 2..12),
        ) {
            let gbps = 10.0;
            let cfg = NetworkConfig::new(3, Bandwidth::from_gbps(gbps))
                .with_latency(SimDuration::ZERO)
                .with_trace(SimDuration::from_micros(100));
            let mut n = Network::new(cfg);
            // Everything funnels into machine 0's rx.
            for (i, &s) in sizes.iter().enumerate() {
                n.start_flow(SimTime::ZERO, MachineId(1 + i % 2), MachineId(0), s, Priority(0), i as u64);
            }
            let mut guard = 0;
            while let Some(t) = n.next_event_time() {
                n.poll(t);
                guard += 1;
                prop_assert!(guard < 1000);
            }
            let cap_bytes_per_bin = gbps * 1e9 / 8.0 * 100e-6;
            for &b in n.rx_trace(MachineId(0)).unwrap().bytes_per_bin() {
                prop_assert!(b <= cap_bytes_per_bin * (1.0 + 1e-6));
            }
        }
    }
}
