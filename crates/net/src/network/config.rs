//! Static description of the cluster fabric and its builder methods.

use crate::multilink::LinkGraph;
use crate::types::Bandwidth;
use p3_des::SimDuration;

/// Static description of the cluster fabric.
///
/// Every machine has a full-duplex NIC: independent transmit and receive
/// ports of `bandwidth` each, matching the testbed in the paper (NICs
/// rate-limited per direction with `tc qdisc`). Transfers where source and
/// destination are the same machine (worker pushing to its colocated server
/// shard) go over loopback: they never touch the NIC and run at
/// `loopback` bandwidth.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Per-direction NIC bandwidth of each machine.
    pub bandwidth: Bandwidth,
    /// One-way propagation + protocol-stack latency added to every message.
    pub latency: SimDuration,
    /// Loopback bandwidth for same-machine transfers.
    pub loopback: Bandwidth,
    /// If set, record per-machine utilization traces with this bin width
    /// (the paper samples at 10 ms).
    pub trace_bin: Option<SimDuration>,
    /// Per-flow goodput ceiling in bytes/sec (single-stream CPU bound of
    /// the endpoint stack); `f64::INFINITY` disables it.
    pub flow_cap: f64,
    /// Fraction of nominal bandwidth usable as goodput (protocol
    /// efficiency). Real deployments sit well below line rate: `tc tbf`
    /// shaping with shallow bursts, TCP incast losses, and ps-lite's
    /// single-threaded serialization all tax the nominal figure (the
    /// paper's own crossover bandwidths imply roughly 25% effective
    /// utilization — see DESIGN.md §6). Defaults to 1.0 (ideal fabric).
    pub efficiency: f64,
    /// Optional multi-hop fabric. When set, flows are routed over the
    /// graph's fixed paths and rates come from the multi-constraint
    /// allocator ([`crate::allocate_rates_on_graph`]); `bandwidth` no
    /// longer bounds the ports (the graph's per-machine port capacities
    /// do), though it still anchors the rate-noise floor. `None` (the
    /// default) keeps the flat single-switch model.
    pub link_graph: Option<LinkGraph>,
}

impl NetworkConfig {
    /// A cluster of `machines` nodes with the given NIC bandwidth and
    /// defaults mirroring the paper's testbed: 50 µs message latency and
    /// 50 GB/s loopback.
    pub fn new(machines: usize, bandwidth: Bandwidth) -> Self {
        NetworkConfig {
            machines,
            bandwidth,
            latency: SimDuration::from_micros(50),
            loopback: Bandwidth::from_gbps(400.0),
            trace_bin: None,
            flow_cap: f64::INFINITY,
            efficiency: 1.0,
            link_graph: None,
        }
    }

    /// Routes all traffic over a multi-hop link graph instead of the flat
    /// single-switch fabric. The graph's protocol efficiency and fault
    /// scaling are applied on top of its nominal capacities at every
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the graph's machine count differs from `machines`.
    pub fn with_link_graph(mut self, graph: LinkGraph) -> Self {
        assert_eq!(
            graph.machines(),
            self.machines,
            "link graph machine count does not match the cluster"
        );
        self.link_graph = Some(graph);
        self
    }

    /// Caps every flow's rate at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive.
    pub fn with_flow_cap(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "non-positive flow cap");
        self.flow_cap = bytes_per_sec;
        self
    }

    /// Overrides the protocol-efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency {efficiency} outside (0, 1]"
        );
        self.efficiency = efficiency;
        self
    }

    /// Enables utilization tracing with the given bin width.
    pub fn with_trace(mut self, bin: SimDuration) -> Self {
        self.trace_bin = Some(bin);
        self
    }

    /// Overrides the per-message latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }
}
