//! Identifier and unit newtypes for the network model.

use core::fmt;

/// Index of a machine in the cluster (worker and, when colocated, its
/// parameter-server shard share one machine and therefore one NIC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub usize);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Opaque handle to an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Transmission urgency class. **Lower value = more urgent**, mirroring the
/// paper's convention that the layer processed first in the forward pass
/// (layer index 0) has the highest priority.
///
/// Flows in a more urgent class receive strictly all the bandwidth they can
/// use before any less urgent class is served.
///
/// # Examples
///
/// ```
/// use p3_net::Priority;
///
/// assert!(Priority(0).is_more_urgent_than(Priority(3)));
/// assert_eq!(Priority::BULK, Priority(u32::MAX));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u32);

impl Priority {
    /// The most urgent class.
    pub const URGENT: Priority = Priority(0);
    /// The least urgent class; the default for unprioritized traffic.
    pub const BULK: Priority = Priority(u32::MAX);

    /// True if `self` is served strictly before `other`.
    #[inline]
    pub fn is_more_urgent_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// Link bandwidth, stored as bits per second (the unit network gear is
/// specified in).
///
/// # Examples
///
/// ```
/// use p3_net::Bandwidth;
///
/// let bw = Bandwidth::from_gbps(10.0);
/// assert_eq!(bw.bits_per_sec(), 10e9);
/// assert_eq!(bw.bytes_per_sec(), 1.25e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or non-finite.
    pub fn from_bps(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth {bps} bps");
        Bandwidth(bps)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth::from_bps(gbps * 1e9)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Bandwidth::from_bps(mbps * 1e6)
    }

    /// This bandwidth in bits per second.
    #[inline]
    pub fn bits_per_sec(self) -> f64 {
        self.0
    }

    /// This bandwidth in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// This bandwidth in gigabits per second.
    #[inline]
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::URGENT.is_more_urgent_than(Priority::BULK));
        assert!(!Priority(5).is_more_urgent_than(Priority(5)));
        assert!(Priority(1) < Priority(2));
    }

    #[test]
    fn bandwidth_units() {
        let bw = Bandwidth::from_mbps(800.0);
        assert!((bw.gbps() - 0.8).abs() < 1e-12);
        assert_eq!(bw.bytes_per_sec(), 1e8);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn bandwidth_rejects_negative() {
        Bandwidth::from_bps(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MachineId(3).to_string(), "m3");
        assert_eq!(FlowId(9).to_string(), "flow9");
        assert_eq!(Priority(2).to_string(), "prio2");
        assert_eq!(Bandwidth::from_gbps(4.0).to_string(), "4.000Gbps");
    }
}
