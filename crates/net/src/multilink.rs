//! Multi-hop topology: link graph and multi-constraint max-min allocation.
//!
//! The flat allocator in [`crate::allocate_rates`] water-fills over two
//! ports per machine (tx and rx). Production clusters are not flat: racks
//! hang off top-of-rack switches whose core uplinks are oversubscribed
//! (Parameter Hub, Luo et al., SoCC 2018, measures PS traffic dying
//! exactly there). This module generalizes the fluid model to a
//! [`LinkGraph`]: a set of capacitated unidirectional links plus one fixed
//! path per ordered machine pair. [`allocate_rates_on_graph`] performs
//! strict-priority progressive filling over *every* link on a flow's path.
//!
//! The generalization is exact: a graph whose paths are `[tx(src),
//! rx(dst)]` (no transit links) reproduces the flat allocator
//! bit-for-bit — same epsilons, same freeze rule, same iteration
//! arithmetic — which the property tests below pin down.

use crate::allocator::{AllocWork, FlowSpec};
use crate::types::Priority;

/// Index of one unidirectional link in a [`LinkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A capacitated link graph with a fixed route per machine pair.
///
/// Links `0..machines` are the per-machine transmit ports, links
/// `machines..2*machines` the receive ports; transit links (switch
/// uplinks/downlinks) are appended with [`LinkGraph::add_link`]. Every
/// path starts at the source's tx port and ends at the destination's rx
/// port; [`LinkGraph::set_transit`] inserts the transit hops in between.
///
/// # Examples
///
/// ```
/// use p3_net::{allocate_rates_on_graph, FlowSpec, LinkGraph, Priority};
///
/// // Two machines behind a shared 50 B/s uplink.
/// let mut g = LinkGraph::new(&[100.0, 100.0, 100.0]);
/// let up = g.add_link("up", 50.0);
/// g.set_transit(0, 2, &[up]);
/// g.set_transit(1, 2, &[up]);
/// let flows = [
///     FlowSpec { src: 0, dst: 2, priority: Priority(1) },
///     FlowSpec { src: 1, dst: 2, priority: Priority(1) },
/// ];
/// let caps = g.caps().to_vec();
/// let alloc = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
/// assert_eq!(alloc.rates, vec![25.0, 25.0]); // uplink, not the NICs, binds
/// assert_eq!(alloc.bottleneck, vec![Some(up), Some(up)]);
/// ```
#[derive(Debug, Clone)]
pub struct LinkGraph {
    machines: usize,
    names: Vec<String>,
    caps: Vec<f64>,
    /// Row-major `src * machines + dst`; each entry is the full path
    /// including the endpoint ports.
    paths: Vec<Vec<LinkId>>,
}

impl LinkGraph {
    /// A graph of `nic.len()` machines whose tx and rx ports both have the
    /// given per-machine capacity (bytes/sec), with direct two-hop paths
    /// `[tx(src), rx(dst)]` for every pair — the degenerate single-switch
    /// fabric.
    ///
    /// # Panics
    ///
    /// Panics if `nic` is empty or any capacity is negative or non-finite.
    pub fn new(nic: &[f64]) -> Self {
        Self::with_ports(nic, nic)
    }

    /// Like [`LinkGraph::new`] but with distinct transmit and receive port
    /// capacities.
    ///
    /// # Panics
    ///
    /// Panics if the tables are empty, differ in length, or contain a
    /// negative or non-finite capacity.
    pub fn with_ports(tx: &[f64], rx: &[f64]) -> Self {
        assert!(!tx.is_empty(), "a link graph needs at least one machine");
        assert_eq!(tx.len(), rx.len(), "tx/rx capacity tables differ in length");
        let machines = tx.len();
        let mut names = Vec::with_capacity(2 * machines);
        let mut caps = Vec::with_capacity(2 * machines);
        for (m, &c) in tx.iter().enumerate() {
            assert!(
                c >= 0.0 && c.is_finite(),
                "bad tx capacity {c} on machine {m}"
            );
            names.push(format!("m{m}.tx"));
            caps.push(c);
        }
        for (m, &c) in rx.iter().enumerate() {
            assert!(
                c >= 0.0 && c.is_finite(),
                "bad rx capacity {c} on machine {m}"
            );
            names.push(format!("m{m}.rx"));
            caps.push(c);
        }
        let mut paths = Vec::with_capacity(machines * machines);
        for src in 0..machines {
            for dst in 0..machines {
                paths.push(vec![LinkId(src), LinkId(machines + dst)]);
            }
        }
        LinkGraph {
            machines,
            names,
            caps,
            paths,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of links (ports plus transit links).
    pub fn num_links(&self) -> usize {
        self.caps.len()
    }

    /// The transmit-port link of machine `m`.
    pub fn tx_link(&self, m: usize) -> LinkId {
        assert!(m < self.machines, "unknown machine {m}");
        LinkId(m)
    }

    /// The receive-port link of machine `m`.
    pub fn rx_link(&self, m: usize) -> LinkId {
        assert!(m < self.machines, "unknown machine {m}");
        LinkId(self.machines + m)
    }

    /// True when `link` is a transit link (not an endpoint port).
    pub fn is_transit(&self, link: LinkId) -> bool {
        link.0 >= 2 * self.machines
    }

    /// Human-readable name of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_name(&self, link: LinkId) -> &str {
        &self.names[link.0]
    }

    /// Nominal capacity of a link in bytes/sec.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_cap(&self, link: LinkId) -> f64 {
        self.caps[link.0]
    }

    /// All nominal link capacities, indexed by [`LinkId`].
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// Adds a transit link (switch uplink, core hop, …) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is negative or non-finite.
    pub fn add_link(&mut self, name: &str, cap: f64) -> LinkId {
        assert!(cap >= 0.0 && cap.is_finite(), "bad link capacity {cap}");
        self.names.push(name.to_string());
        self.caps.push(cap);
        LinkId(self.caps.len() - 1)
    }

    /// Routes `src -> dst` through the given transit links: the full path
    /// becomes `[tx(src), via…, rx(dst)]`. A path must not repeat a link.
    ///
    /// # Panics
    ///
    /// Panics if a machine or link is out of range, `src == dst`, or `via`
    /// contains a duplicate or an endpoint port.
    pub fn set_transit(&mut self, src: usize, dst: usize, via: &[LinkId]) {
        assert!(
            src < self.machines && dst < self.machines,
            "unknown machine pair {src}->{dst}"
        );
        assert!(src != dst, "no route needed from a machine to itself");
        let mut path = Vec::with_capacity(via.len() + 2);
        path.push(LinkId(src));
        for &l in via {
            assert!(l.0 < self.caps.len(), "unknown link {l}");
            assert!(
                self.is_transit(l),
                "path interior must be transit links, got port {l}"
            );
            assert!(
                !path.contains(&l),
                "duplicate link {l} on path {src}->{dst}"
            );
            path.push(l);
        }
        path.push(LinkId(self.machines + dst));
        self.paths[src * self.machines + dst] = path;
    }

    /// The fixed route for `src -> dst`, endpoint ports included.
    ///
    /// # Panics
    ///
    /// Panics if either machine is out of range.
    pub fn path(&self, src: usize, dst: usize) -> &[LinkId] {
        assert!(
            src < self.machines && dst < self.machines,
            "unknown machine pair {src}->{dst}"
        );
        &self.paths[src * self.machines + dst]
    }

    /// Link capacities scaled by a protocol-efficiency factor and by
    /// per-machine port factors (fault injection): the tx port of machine
    /// `m` is scaled by `tx_scale[m]`, its rx port by `rx_scale[m]`,
    /// transit links by `efficiency` alone.
    ///
    /// # Panics
    ///
    /// Panics if a scale table's length differs from the machine count.
    pub fn scaled_caps(&self, efficiency: f64, tx_scale: &[f64], rx_scale: &[f64]) -> Vec<f64> {
        assert_eq!(tx_scale.len(), self.machines, "tx scale table length");
        assert_eq!(rx_scale.len(), self.machines, "rx scale table length");
        let mut caps: Vec<f64> = self.caps.iter().map(|c| c * efficiency).collect();
        for m in 0..self.machines {
            caps[m] *= tx_scale[m];
            caps[self.machines + m] *= rx_scale[m];
        }
        caps
    }
}

/// Result of [`allocate_rates_on_graph`]: per-flow rates and the link at
/// which each flow froze.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphAllocation {
    /// Rate of each flow in bytes/sec, parallel to the input.
    pub rates: Vec<f64>,
    /// The saturated link that froze each flow, or `None` when the flow
    /// was limited by the per-flow cap (or never froze on a link).
    pub bottleneck: Vec<Option<LinkId>>,
}

/// Computes strict-priority max-min fair rates over a [`LinkGraph`]:
/// progressive filling over every link on each flow's path, more urgent
/// classes first, less urgent classes restricted to the leftovers.
///
/// `caps` is the working capacity of each link (typically
/// [`LinkGraph::scaled_caps`]); `flow_cap` bounds every individual flow as
/// in [`crate::allocate_rates_capped`].
///
/// Loopback flows (`src == dst`) must not be submitted — they have no
/// path in the graph.
///
/// # Panics
///
/// Panics if a flow references an unknown machine or a loopback pair, if
/// `caps.len()` differs from the graph's link count, or if `flow_cap` is
/// not positive.
pub fn allocate_rates_on_graph(
    flows: &[FlowSpec],
    graph: &LinkGraph,
    caps: &[f64],
    flow_cap: f64,
) -> GraphAllocation {
    allocate_rates_on_graph_with_work(flows, graph, caps, flow_cap, &mut AllocWork::default())
}

/// Like [`allocate_rates_on_graph`], but additionally accumulates the
/// allocator's effort (water-fill rounds, flow and link touches) into
/// `work` — the simulator's self-profiling counters. The returned
/// allocation is bit-identical to the uncounted variant.
///
/// # Panics
///
/// Panics under the same conditions as [`allocate_rates_on_graph`].
pub fn allocate_rates_on_graph_with_work(
    flows: &[FlowSpec],
    graph: &LinkGraph,
    caps: &[f64],
    flow_cap: f64,
    work: &mut AllocWork,
) -> GraphAllocation {
    assert_eq!(
        caps.len(),
        graph.num_links(),
        "capacity table does not match the graph"
    );
    assert!(flow_cap > 0.0, "non-positive flow cap");
    let machines = graph.machines();
    for f in flows {
        assert!(
            f.src < machines && f.dst < machines,
            "flow {f:?} references unknown machine"
        );
        assert!(
            f.src != f.dst,
            "loopback flow {f:?} has no path in the graph"
        );
    }

    let mut rates = vec![0.0; flows.len()];
    let mut bottleneck = vec![None; flows.len()];
    if flows.is_empty() {
        return GraphAllocation { rates, bottleneck };
    }

    let mut res: Vec<f64> = caps.to_vec();

    let mut classes: Vec<Priority> = flows.iter().map(|f| f.priority).collect();
    classes.sort_unstable();
    classes.dedup();

    for class in classes {
        let members: Vec<usize> = (0..flows.len())
            .filter(|&i| flows[i].priority == class)
            .collect();
        water_fill_graph(
            flows,
            &members,
            graph,
            &mut res,
            &mut rates,
            flow_cap,
            &mut bottleneck,
            work,
        );
    }
    GraphAllocation { rates, bottleneck }
}

/// Progressive filling of one priority class over the residual link
/// capacities. The constants and the freeze rule mirror the flat
/// `water_fill` exactly so that an endpoint-only graph is bit-compatible
/// with `allocate_rates_capped`.
#[allow(clippy::too_many_arguments)]
fn water_fill_graph(
    flows: &[FlowSpec],
    members: &[usize],
    graph: &LinkGraph,
    res: &mut [f64],
    rates: &mut [f64],
    flow_cap: f64,
    bottleneck: &mut [Option<LinkId>],
    work: &mut AllocWork,
) {
    const EPS: f64 = 1e-9;
    /// Residual capacity below this (bytes/sec) is numerical noise left
    /// over from freezing a saturated link; treat it as zero.
    const FLOOR: f64 = 1e-6;
    let links = res.len();
    let mut active: Vec<usize> = members.to_vec();

    while !active.is_empty() {
        for r in res.iter_mut() {
            if *r < FLOOR {
                *r = 0.0;
            }
        }
        // Count active flows per link.
        let mut count = vec![0u32; links];
        for &i in &active {
            for l in graph.path(flows[i].src, flows[i].dst) {
                count[l.0] += 1;
            }
        }
        work.rounds += 1;
        work.flow_touches += active.len() as u64;
        work.port_touches += count.iter().filter(|&&c| c > 0).count() as u64;

        // The common rate increment is limited by the tightest link, or by
        // the first flow to reach the per-flow ceiling.
        let mut delta = f64::INFINITY;
        for l in 0..links {
            if count[l] > 0 {
                delta = delta.min(res[l] / count[l] as f64);
            }
        }
        for &i in &active {
            delta = delta.min(flow_cap - rates[i]);
        }
        debug_assert!(delta.is_finite(), "active flows but no limiting link");
        let delta = delta.max(0.0);

        // Raise every active flow by delta and charge its whole path.
        for &i in &active {
            rates[i] += delta;
            for l in graph.path(flows[i].src, flows[i].dst) {
                res[l.0] -= delta;
            }
        }
        for r in res.iter_mut() {
            if *r < 0.0 {
                *r = 0.0;
            }
        }

        // Freeze flows crossing any saturated link, recording which link
        // bound them. Capacity scale for the epsilon test: the largest
        // residual in use.
        let scale = res.iter().fold(1.0f64, |a, &b| a.max(b)).max(delta);
        let thr = (EPS * scale).max(FLOOR);
        let before = active.len();
        let mut kept = Vec::with_capacity(active.len());
        for &i in &active {
            if rates[i] >= flow_cap * (1.0 - EPS) {
                // Frozen by the per-flow cap, not by a link.
                continue;
            }
            let hit = graph
                .path(flows[i].src, flows[i].dst)
                .iter()
                .find(|l| res[l.0] <= thr);
            match hit {
                Some(&l) => bottleneck[i] = Some(l),
                None => kept.push(i),
            }
        }
        let frozen = before - kept.len();
        active = kept;
        // Progress guarantee mirror of the flat allocator: if nothing
        // froze, every remaining link has zero residual growth possible
        // (e.g. zero-capacity links) — terminate.
        if frozen == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::allocate_rates_capped;

    fn flow(src: usize, dst: usize, p: u32) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            priority: Priority(p),
        }
    }

    /// Two racks of two machines each behind per-rack up/down links of
    /// `core` bytes/sec; NICs at `nic` bytes/sec.
    fn two_racks(nic: f64, core: f64) -> LinkGraph {
        let mut g = LinkGraph::new(&[nic; 4]);
        let up0 = g.add_link("rack0.up", core);
        let down0 = g.add_link("rack0.down", core);
        let up1 = g.add_link("rack1.up", core);
        let down1 = g.add_link("rack1.down", core);
        for src in 0..4usize {
            for dst in 0..4usize {
                if src == dst || src / 2 == dst / 2 {
                    continue;
                }
                let via = if src / 2 == 0 {
                    [up0, down1]
                } else {
                    [up1, down0]
                };
                g.set_transit(src, dst, &via);
            }
        }
        g
    }

    #[test]
    fn empty_input() {
        let g = LinkGraph::new(&[10.0, 10.0]);
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&[], &g, &caps, f64::INFINITY);
        assert!(a.rates.is_empty() && a.bottleneck.is_empty());
    }

    #[test]
    fn intra_rack_flow_ignores_the_core() {
        let g = two_racks(100.0, 1.0); // core nearly dead
        let flows = [flow(0, 1, 0)];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
        assert!((a.rates[0] - 100.0).abs() < 1e-6, "{:?}", a.rates);
    }

    #[test]
    fn cross_rack_flow_bound_by_uplink() {
        let g = two_racks(100.0, 40.0);
        let flows = [flow(0, 2, 0)];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
        assert!((a.rates[0] - 40.0).abs() < 1e-6, "{:?}", a.rates);
        let l = a.bottleneck[0].expect("bottlenecked");
        assert!(
            g.is_transit(l),
            "bottleneck should be a core link, got {}",
            g.link_name(l)
        );
    }

    #[test]
    fn oversubscribed_core_shared_max_min() {
        // Both rack-0 machines send cross-rack: they share the uplink.
        let g = two_racks(100.0, 50.0);
        let flows = [flow(0, 2, 0), flow(1, 3, 0)];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
        assert!((a.rates[0] - 25.0).abs() < 1e-6, "{:?}", a.rates);
        assert!((a.rates[1] - 25.0).abs() < 1e-6, "{:?}", a.rates);
        assert_eq!(g.link_name(a.bottleneck[0].unwrap()), "rack0.up");
    }

    #[test]
    fn urgent_class_owns_the_uplink_first() {
        let g = two_racks(100.0, 60.0);
        let flows = [flow(0, 2, 0), flow(1, 3, 9)];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
        assert!(
            (a.rates[0] - 60.0).abs() < 1e-6,
            "urgent takes the core: {:?}",
            a.rates
        );
        assert!(
            a.rates[1].abs() < 1e-6,
            "bulk starved on the core: {:?}",
            a.rates
        );
    }

    #[test]
    fn flow_cap_reports_no_link_bottleneck() {
        let g = two_racks(100.0, 60.0);
        let flows = [flow(0, 2, 0)];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, 10.0);
        assert_eq!(a.rates, vec![10.0]);
        assert_eq!(a.bottleneck, vec![None]);
    }

    #[test]
    fn endpoint_only_graph_matches_flat_exactly() {
        let tx = [100.0, 70.0, 90.0];
        let rx = [80.0, 100.0, 30.0];
        let g = LinkGraph::with_ports(&tx, &rx);
        let flows = [
            flow(0, 1, 0),
            flow(0, 2, 1),
            flow(1, 2, 1),
            flow(2, 0, 0),
            flow(1, 0, 2),
        ];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, 55.0);
        let b = allocate_rates_capped(&flows, &tx, &rx, 55.0);
        assert_eq!(a.rates, b, "degenerate graph must be bit-identical to flat");
    }

    #[test]
    fn zero_capacity_core_yields_zero_rates() {
        let g = two_racks(100.0, 0.0);
        let flows = [flow(0, 3, 0)];
        let caps = g.caps().to_vec();
        let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
        assert_eq!(a.rates, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_flow_rejected() {
        let g = LinkGraph::new(&[10.0, 10.0]);
        let caps = g.caps().to_vec();
        allocate_rates_on_graph(&[flow(1, 1, 0)], &g, &caps, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "transit")]
    fn endpoint_port_rejected_as_transit_hop() {
        let mut g = LinkGraph::new(&[10.0, 10.0, 10.0]);
        let port = g.rx_link(2);
        g.set_transit(0, 1, &[port]);
    }

    #[test]
    fn work_counters_are_filled_without_perturbing_allocation() {
        let g = two_racks(100.0, 50.0);
        let flows = [flow(0, 3, 0), flow(1, 2, 1)];
        let caps = g.caps().to_vec();
        let plain = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
        let mut work = AllocWork::default();
        let counted =
            allocate_rates_on_graph_with_work(&flows, &g, &caps, f64::INFINITY, &mut work);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain.rates), bits(&counted.rates));
        assert_eq!(plain.bottleneck, counted.bottleneck);
        assert!(work.rounds >= 2, "one round per priority class: {work:?}");
        assert!(work.flow_touches >= work.rounds, "{work:?}");
        // Each flow's path crosses at least tx, core, rx.
        assert!(work.port_touches >= 3 * work.rounds, "{work:?}");
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use crate::allocator::allocate_rates_capped;
    use proptest::prelude::*;

    fn arb_flows(machines: usize) -> impl Strategy<Value = Vec<FlowSpec>> {
        prop::collection::vec(
            (0..machines, 0..machines, 0u32..4).prop_map(move |(src, dst, p)| FlowSpec {
                src,
                dst: if dst == src {
                    (dst + 1) % machines
                } else {
                    dst
                },
                priority: Priority(p),
            }),
            0..24,
        )
    }

    /// `racks` racks of `size` machines, uplink/downlink = size*nic/oversub.
    fn racked(racks: usize, size: usize, nic: f64, oversub: f64) -> LinkGraph {
        let machines = racks * size;
        let mut g = LinkGraph::new(&vec![nic; machines]);
        let core = size as f64 * nic / oversub;
        let ups: Vec<LinkId> = (0..racks)
            .map(|r| g.add_link(&format!("rack{r}.up"), core))
            .collect();
        let downs: Vec<LinkId> = (0..racks)
            .map(|r| g.add_link(&format!("rack{r}.down"), core))
            .collect();
        for src in 0..machines {
            for dst in 0..machines {
                if src != dst && src / size != dst / size {
                    g.set_transit(src, dst, &[ups[src / size], downs[dst / size]]);
                }
            }
        }
        g
    }

    proptest! {
        /// Satellite: a one-rack graph (oversub irrelevant — no transit
        /// links on any path) produces rates identical to the flat
        /// allocator on randomized flow sets.
        #[test]
        fn degenerate_graph_matches_flat(flows in arb_flows(5), cap in 1.0f64..1e10) {
            let tx = vec![cap; 5];
            let rx = vec![cap; 5];
            let g = LinkGraph::with_ports(&tx, &rx);
            let caps = g.caps().to_vec();
            let graph = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
            let flat = allocate_rates_capped(&flows, &tx, &rx, f64::INFINITY);
            for (i, (a, b)) in graph.rates.iter().zip(&flat).enumerate() {
                prop_assert!((a - b).abs() <= 1e-9 * cap.max(1.0),
                    "flow {i}: graph {a} vs flat {b}");
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "flow {i}: not bit-identical: {} vs {}", a, b);
            }
        }

        /// Same, with a per-flow cap in play.
        #[test]
        fn degenerate_graph_matches_flat_capped(
            flows in arb_flows(5),
            cap in 1.0f64..1e10,
            frac in 0.05f64..1.5,
        ) {
            let tx = vec![cap; 5];
            let rx = vec![cap; 5];
            let g = LinkGraph::with_ports(&tx, &rx);
            let caps = g.caps().to_vec();
            let flow_cap = cap * frac;
            let graph = allocate_rates_on_graph(&flows, &g, &caps, flow_cap);
            let flat = allocate_rates_capped(&flows, &tx, &rx, flow_cap);
            for (a, b) in graph.rates.iter().zip(&flat) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "not bit-identical: {} vs {}", a, b);
            }
        }

        /// No link in an oversubscribed fabric is ever loaded beyond its
        /// capacity.
        #[test]
        fn link_capacities_respected(
            flows in arb_flows(6),
            nic in 1.0f64..1e9,
            oversub in 1.0f64..8.0,
        ) {
            let g = racked(3, 2, nic, oversub);
            let caps = g.caps().to_vec();
            let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
            let mut load = vec![0.0; g.num_links()];
            for (f, r) in flows.iter().zip(&a.rates) {
                prop_assert!(*r >= 0.0);
                for l in g.path(f.src, f.dst) {
                    load[l.0] += r;
                }
            }
            for l in 0..g.num_links() {
                prop_assert!(load[l] <= caps[l] * (1.0 + 1e-6),
                    "link {} over capacity: {} > {}", g.link_name(LinkId(l)), load[l], caps[l]);
            }
        }

        /// Max-min optimality: every flow is bottlenecked at some
        /// saturated link on its path (otherwise its rate could rise).
        #[test]
        fn every_flow_hits_a_saturated_link(
            flows in arb_flows(6),
            oversub in 1.0f64..8.0,
        ) {
            let nic = 100.0;
            let g = racked(3, 2, nic, oversub);
            let caps = g.caps().to_vec();
            let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
            let mut load = vec![0.0; g.num_links()];
            for (f, r) in flows.iter().zip(&a.rates) {
                for l in g.path(f.src, f.dst) {
                    load[l.0] += r;
                }
            }
            for (i, f) in flows.iter().enumerate() {
                let saturated = g
                    .path(f.src, f.dst)
                    .iter()
                    .any(|l| load[l.0] >= caps[l.0] * (1.0 - 1e-6));
                prop_assert!(saturated, "flow {i} ({f:?}) has slack on every link of its path");
            }
        }

        /// The reported bottleneck is honest: the flow crosses it and it
        /// is saturated under the final allocation.
        #[test]
        fn reported_bottleneck_is_on_path_and_saturated(
            flows in arb_flows(6),
            oversub in 1.0f64..8.0,
        ) {
            let g = racked(3, 2, 100.0, oversub);
            let caps = g.caps().to_vec();
            let a = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
            let mut load = vec![0.0; g.num_links()];
            for (f, r) in flows.iter().zip(&a.rates) {
                for l in g.path(f.src, f.dst) {
                    load[l.0] += r;
                }
            }
            for (i, f) in flows.iter().enumerate() {
                if let Some(l) = a.bottleneck[i] {
                    prop_assert!(g.path(f.src, f.dst).contains(&l),
                        "flow {i}: bottleneck {} not on its path", g.link_name(l));
                    prop_assert!(load[l.0] >= caps[l.0] * (1.0 - 1e-6),
                        "flow {i}: bottleneck {} not saturated", g.link_name(l));
                }
            }
        }

        /// Urgent-class rates are unchanged by the presence of bulk
        /// traffic, exactly as in the flat model.
        #[test]
        fn urgent_class_blind_to_bulk_on_graph(flows in arb_flows(6)) {
            let g = racked(3, 2, 77.0, 4.0);
            let caps = g.caps().to_vec();
            let all = allocate_rates_on_graph(&flows, &g, &caps, f64::INFINITY);
            let urgent: Vec<FlowSpec> =
                flows.iter().copied().filter(|f| f.priority == Priority(0)).collect();
            let alone = allocate_rates_on_graph(&urgent, &g, &caps, f64::INFINITY);
            let mut k = 0;
            for (f, r) in flows.iter().zip(&all.rates) {
                if f.priority == Priority(0) {
                    prop_assert!((r - alone.rates[k]).abs() < 1e-6,
                        "urgent flow rate changed: {} vs {}", r, alone.rates[k]);
                    k += 1;
                }
            }
        }
    }
}
