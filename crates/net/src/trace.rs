//! NIC utilization tracing, the simulator's equivalent of the paper's
//! `bwm-ng` 10 ms interface sampling (Figures 8, 9, 13, 14).

use p3_des::{SimDuration, SimTime};

/// Accumulates bytes moved through one directed port into fixed-width time
/// bins.
///
/// # Examples
///
/// ```
/// use p3_des::{SimDuration, SimTime};
/// use p3_net::PortTrace;
///
/// let mut t = PortTrace::new(SimDuration::from_millis(10));
/// // 1000 bytes/s for the first 25 ms.
/// t.add_rate(SimTime::ZERO, SimTime::from_millis(25), 1000.0);
/// let bins = t.bytes_per_bin();
/// assert_eq!(bins.len(), 3);
/// assert!((bins[0] - 10.0).abs() < 1e-9);
/// assert!((bins[2] - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PortTrace {
    bin: SimDuration,
    bytes: Vec<f64>,
}

impl PortTrace {
    /// Creates a trace with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "trace bin width must be positive");
        PortTrace {
            bin,
            bytes: Vec::new(),
        }
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Records a constant transfer rate (bytes/sec) over `[from, to)`,
    /// splitting the volume across bins proportionally.
    ///
    /// # Panics
    ///
    /// Panics if `to < from` or the rate is negative/non-finite.
    pub fn add_rate(&mut self, from: SimTime, to: SimTime, bytes_per_sec: f64) {
        assert!(to >= from, "time interval reversed: {from}..{to}");
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "invalid rate {bytes_per_sec}"
        );
        if bytes_per_sec == 0.0 || to == from {
            return;
        }
        let bin_ns = self.bin.as_nanos();
        let mut cursor = from.as_nanos();
        let end = to.as_nanos();
        while cursor < end {
            let idx = (cursor / bin_ns) as usize;
            let bin_end = (cursor / bin_ns + 1) * bin_ns;
            let seg_end = bin_end.min(end);
            let seg_secs = (seg_end - cursor) as f64 / 1e9;
            if self.bytes.len() <= idx {
                self.bytes.resize(idx + 1, 0.0);
            }
            self.bytes[idx] += bytes_per_sec * seg_secs;
            cursor = seg_end;
        }
    }

    /// Bytes accumulated in each bin, from simulation start.
    pub fn bytes_per_bin(&self) -> &[f64] {
        &self.bytes
    }

    /// Replaces the accumulated bins wholesale (snapshot restore). The bin
    /// width is unchanged; `bins` must come from a trace with the same
    /// width (see [`PortTrace::bytes_per_bin`]).
    pub fn restore_bins(&mut self, bins: Vec<f64>) {
        self.bytes = bins;
    }

    /// Average throughput per bin in gigabits per second — the series the
    /// paper plots.
    pub fn gbps_series(&self) -> Vec<f64> {
        let bin_secs = self.bin.as_secs_f64();
        self.bytes
            .iter()
            .map(|b| b * 8.0 / 1e9 / bin_secs)
            .collect()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> f64 {
        self.bytes.iter().sum()
    }

    /// Fraction of all recorded bins whose utilization is below
    /// `threshold_fraction` of `capacity_bps` — the paper's "network idle
    /// time" observation. Use [`PortTrace::idle_fraction_window`] to
    /// restrict the computation to a bin range.
    pub fn idle_fraction(&self, capacity_bps: f64, threshold_fraction: f64) -> f64 {
        self.idle_fraction_window(capacity_bps, threshold_fraction, 0, self.bytes.len())
    }

    /// Fraction of bins in `[from_bin, to_bin)` whose utilization is below
    /// `threshold_fraction` of `capacity_bps`. `to_bin` is clamped to the
    /// number of recorded bins; an empty window counts as fully idle
    /// (matching the full-range behaviour on an empty trace).
    ///
    /// # Panics
    ///
    /// Panics if `from_bin > to_bin`.
    pub fn idle_fraction_window(
        &self,
        capacity_bps: f64,
        threshold_fraction: f64,
        from_bin: usize,
        to_bin: usize,
    ) -> f64 {
        assert!(
            from_bin <= to_bin,
            "bin window reversed: {from_bin}..{to_bin}"
        );
        let to = to_bin.min(self.bytes.len());
        let from = from_bin.min(to);
        if from == to {
            return 1.0;
        }
        let bin_secs = self.bin.as_secs_f64();
        let idle = self.bytes[from..to]
            .iter()
            .filter(|&&b| b * 8.0 / bin_secs < capacity_bps * threshold_fraction)
            .count();
        idle as f64 / (to - from) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn volume_is_conserved_across_bins() {
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        t.add_rate(ms(3), ms(47), 1e6);
        let expected = 1e6 * 0.044;
        assert!((t.total_bytes() - expected).abs() < 1e-6);
    }

    #[test]
    fn rate_splits_proportionally() {
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        t.add_rate(ms(5), ms(15), 2000.0); // 5ms in bin0, 5ms in bin1
        let bins = t.bytes_per_bin();
        assert!((bins[0] - 10.0).abs() < 1e-9);
        assert!((bins[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gbps_series_matches_rate() {
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        // 1.25e8 bytes/sec == 1 Gbps, sustained for 3 full bins.
        t.add_rate(ms(0), ms(30), 1.25e8);
        for g in t.gbps_series() {
            assert!((g - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rate_and_empty_interval_are_noops() {
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        t.add_rate(ms(0), ms(100), 0.0);
        t.add_rate(ms(5), ms(5), 1e9);
        assert_eq!(t.total_bytes(), 0.0);
        assert!(t.bytes_per_bin().is_empty());
    }

    #[test]
    fn idle_fraction_counts_quiet_bins() {
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        t.add_rate(ms(0), ms(10), 1.25e8); // 1 Gbps in bin 0
        t.add_rate(ms(30), ms(40), 100.0); // negligible in bin 3
                                           // 4 bins total (0..4); bins 1,2,3 below 10% of 1 Gbps.
        assert!((t.idle_fraction(1e9, 0.1) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_window_restricts_the_bin_range() {
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        t.add_rate(ms(0), ms(10), 1.25e8); // 1 Gbps in bin 0
        t.add_rate(ms(30), ms(40), 100.0); // negligible in bin 3
                                           // Busy bin only.
        assert_eq!(t.idle_fraction_window(1e9, 0.1, 0, 1), 0.0);
        // Quiet bins only.
        assert_eq!(t.idle_fraction_window(1e9, 0.1, 1, 4), 1.0);
        // Half-busy window.
        assert!((t.idle_fraction_window(1e9, 0.1, 0, 2) - 0.5).abs() < 1e-9);
        // Out-of-range end clamps; empty window is fully idle.
        assert_eq!(t.idle_fraction_window(1e9, 0.1, 2, 100), 1.0);
        assert_eq!(t.idle_fraction_window(1e9, 0.1, 2, 2), 1.0);
        // Full-range helper agrees with the explicit full window.
        assert_eq!(
            t.idle_fraction(1e9, 0.1),
            t.idle_fraction_window(1e9, 0.1, 0, 4)
        );
    }

    #[test]
    #[should_panic(expected = "window reversed")]
    fn reversed_window_panics() {
        PortTrace::new(SimDuration::from_millis(1)).idle_fraction_window(1e9, 0.1, 3, 1);
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_interval_panics() {
        let mut t = PortTrace::new(SimDuration::from_millis(1));
        t.add_rate(ms(5), ms(4), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bin_panics() {
        PortTrace::new(SimDuration::ZERO);
    }
}
