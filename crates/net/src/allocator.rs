//! Strict-priority max-min fair rate allocation.
//!
//! Every machine NIC is modelled as two independent ports (transmit and
//! receive) with fixed capacity. A flow from machine `a` to machine `b`
//! consumes `a`'s tx port and `b`'s rx port at the same rate. Within a
//! priority class, rates are max-min fair (progressive filling / water
//! filling); across classes, a more urgent class is allocated first and less
//! urgent classes share only the leftover capacity — the fluid-model
//! equivalent of strict priority queueing, which is how P3's
//! priority-tagged packets are serviced.

use crate::types::Priority;

/// Work performed by one allocator invocation: how many water-fill raise
/// rounds ran and how many flow/port slots they examined. Counting is
/// pure integer arithmetic bolted alongside the float math — the rate
/// arithmetic itself is untouched, which the graph-vs-flat bit-identity
/// property tests pin down — so the counters are as deterministic as the
/// rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocWork {
    /// Water-fill raise rounds executed.
    pub rounds: u64,
    /// Flow slots examined, summed over rounds.
    pub flow_touches: u64,
    /// Ports (or links, for the graph allocator) carrying at least one
    /// active flow, summed over rounds.
    pub port_touches: u64,
}

/// One flow's routing and urgency, as seen by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Index of the transmitting machine.
    pub src: usize,
    /// Index of the receiving machine.
    pub dst: usize,
    /// Strict-priority class.
    pub priority: Priority,
}

/// Computes the rate (bytes/sec) of each flow under strict-priority max-min
/// fairness.
///
/// `tx_cap[i]` / `rx_cap[i]` are the transmit / receive capacities of machine
/// `i` in bytes/sec. The result is parallel to `flows`.
///
/// Loopback flows (`src == dst`) still consume both of the machine's ports;
/// callers that want free loopback should not submit such flows here.
///
/// # Panics
///
/// Panics if any flow references a machine outside `0..tx_cap.len()`, or if
/// `tx_cap.len() != rx_cap.len()`.
///
/// # Examples
///
/// ```
/// use p3_net::{allocate_rates, FlowSpec, Priority};
///
/// // Two equal-priority flows out of machine 0 share its tx port.
/// let flows = [
///     FlowSpec { src: 0, dst: 1, priority: Priority(1) },
///     FlowSpec { src: 0, dst: 2, priority: Priority(1) },
/// ];
/// let caps = [100.0, 100.0, 100.0];
/// let rates = allocate_rates(&flows, &caps, &caps);
/// assert_eq!(rates, vec![50.0, 50.0]);
/// ```
pub fn allocate_rates(flows: &[FlowSpec], tx_cap: &[f64], rx_cap: &[f64]) -> Vec<f64> {
    allocate_rates_capped(flows, tx_cap, rx_cap, f64::INFINITY)
}

/// Like [`allocate_rates`], but additionally caps every individual flow at
/// `flow_cap` bytes/sec — the single-stream goodput ceiling imposed by a
/// CPU-bound endpoint stack (ps-lite serializes each connection on one
/// core; PHub, Luo et al. 2018, measured a few Gbps per stream). Leftover
/// port capacity freed by capped flows is redistributed max-min.
///
/// # Panics
///
/// Panics under the same conditions as [`allocate_rates`], or if
/// `flow_cap` is not positive.
pub fn allocate_rates_capped(
    flows: &[FlowSpec],
    tx_cap: &[f64],
    rx_cap: &[f64],
    flow_cap: f64,
) -> Vec<f64> {
    allocate_rates_capped_with_work(flows, tx_cap, rx_cap, flow_cap, &mut AllocWork::default())
}

/// Like [`allocate_rates_capped`], but additionally accumulates the
/// allocator's effort (water-fill rounds, flow and port touches) into
/// `work` — the simulator's self-profiling counters. The returned rates
/// are bit-identical to the uncounted variant.
///
/// # Panics
///
/// Panics under the same conditions as [`allocate_rates_capped`].
pub fn allocate_rates_capped_with_work(
    flows: &[FlowSpec],
    tx_cap: &[f64],
    rx_cap: &[f64],
    flow_cap: f64,
    work: &mut AllocWork,
) -> Vec<f64> {
    assert_eq!(
        tx_cap.len(),
        rx_cap.len(),
        "tx/rx capacity tables differ in length"
    );
    assert!(flow_cap > 0.0, "non-positive flow cap");
    let machines = tx_cap.len();
    for f in flows {
        assert!(
            f.src < machines && f.dst < machines,
            "flow {f:?} references unknown machine"
        );
    }

    let mut rates = vec![0.0; flows.len()];
    if flows.is_empty() {
        return rates;
    }

    // Residual capacity per port after serving more urgent classes.
    let mut res_tx: Vec<f64> = tx_cap.to_vec();
    let mut res_rx: Vec<f64> = rx_cap.to_vec();

    // Distinct classes, most urgent first.
    let mut classes: Vec<Priority> = flows.iter().map(|f| f.priority).collect();
    classes.sort_unstable();
    classes.dedup();

    for class in classes {
        let members: Vec<usize> = (0..flows.len())
            .filter(|&i| flows[i].priority == class)
            .collect();
        water_fill(
            flows,
            &members,
            &mut res_tx,
            &mut res_rx,
            &mut rates,
            flow_cap,
            work,
        );
    }
    rates
}

/// Progressive filling of one priority class on the residual capacities.
/// On return, `rates` holds each member's max-min rate, the residuals are
/// reduced by the allocation, and `work` has accumulated the effort spent.
#[allow(clippy::too_many_arguments)]
fn water_fill(
    flows: &[FlowSpec],
    members: &[usize],
    res_tx: &mut [f64],
    res_rx: &mut [f64],
    rates: &mut [f64],
    flow_cap: f64,
    work: &mut AllocWork,
) {
    const EPS: f64 = 1e-9;
    /// Residual capacity below this (bytes/sec — one byte per ~12 days) is
    /// numerical noise left over from freezing a saturated port; treat it as
    /// zero so no flow is ever assigned an absurdly small positive rate.
    const FLOOR: f64 = 1e-6;
    let machines = res_tx.len();
    let mut active: Vec<usize> = members.to_vec();

    while !active.is_empty() {
        for m in 0..machines {
            if res_tx[m] < FLOOR {
                res_tx[m] = 0.0;
            }
            if res_rx[m] < FLOOR {
                res_rx[m] = 0.0;
            }
        }
        // Count active flows per port.
        let mut tx_count = vec![0u32; machines];
        let mut rx_count = vec![0u32; machines];
        for &i in &active {
            tx_count[flows[i].src] += 1;
            rx_count[flows[i].dst] += 1;
        }
        work.rounds += 1;
        work.flow_touches += active.len() as u64;
        work.port_touches += tx_count.iter().filter(|&&c| c > 0).count() as u64
            + rx_count.iter().filter(|&&c| c > 0).count() as u64;

        // The common rate increment is limited by the tightest port, or by
        // the first flow to reach the per-flow ceiling.
        let mut delta = f64::INFINITY;
        for m in 0..machines {
            if tx_count[m] > 0 {
                delta = delta.min(res_tx[m] / tx_count[m] as f64);
            }
            if rx_count[m] > 0 {
                delta = delta.min(res_rx[m] / rx_count[m] as f64);
            }
        }
        for &i in &active {
            delta = delta.min(flow_cap - rates[i]);
        }
        debug_assert!(delta.is_finite(), "active flows but no limiting port");
        let delta = delta.max(0.0);

        // Raise every active flow by delta and charge the ports.
        for &i in &active {
            rates[i] += delta;
            res_tx[flows[i].src] -= delta;
            res_rx[flows[i].dst] -= delta;
        }
        for m in 0..machines {
            if res_tx[m] < 0.0 {
                res_tx[m] = 0.0;
            }
            if res_rx[m] < 0.0 {
                res_rx[m] = 0.0;
            }
        }

        // Freeze flows passing through any saturated port. Capacity scale for
        // the epsilon test: the largest original capacity in use.
        let scale = res_tx
            .iter()
            .chain(res_rx.iter())
            .fold(1.0f64, |a, &b| a.max(b))
            .max(delta);
        let before = active.len();
        active.retain(|&i| {
            rates[i] < flow_cap * (1.0 - EPS)
                && res_tx[flows[i].src] > (EPS * scale).max(FLOOR)
                && res_rx[flows[i].dst] > (EPS * scale).max(FLOOR)
        });
        // Progress guarantee: at least one flow froze, otherwise delta was
        // limited by no port, which is impossible while flows are active.
        if active.len() == before {
            // All remaining ports have zero residual growth possible (e.g.
            // zero-capacity links). Freeze everything to terminate.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(n: usize, c: f64) -> Vec<f64> {
        vec![c; n]
    }

    #[test]
    fn empty_input() {
        assert!(allocate_rates(&[], &[], &[]).is_empty());
        assert!(allocate_rates(&[], &caps(3, 10.0), &caps(3, 10.0)).is_empty());
    }

    #[test]
    fn single_flow_gets_min_of_its_ports() {
        let flows = [FlowSpec {
            src: 0,
            dst: 1,
            priority: Priority(0),
        }];
        let rates = allocate_rates(&flows, &[100.0, 40.0], &[70.0, 30.0]);
        assert_eq!(rates, vec![30.0]); // limited by dst rx
    }

    #[test]
    fn fan_out_shares_tx() {
        let flows: Vec<FlowSpec> = (1..=4)
            .map(|d| FlowSpec {
                src: 0,
                dst: d,
                priority: Priority(2),
            })
            .collect();
        let rates = allocate_rates(&flows, &caps(5, 100.0), &caps(5, 100.0));
        for r in rates {
            assert!((r - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn incast_shares_rx() {
        let flows: Vec<FlowSpec> = (1..=4)
            .map(|s| FlowSpec {
                src: s,
                dst: 0,
                priority: Priority(2),
            })
            .collect();
        let rates = allocate_rates(&flows, &caps(5, 100.0), &caps(5, 100.0));
        for r in rates {
            assert!((r - 25.0).abs() < 1e-6);
        }
    }

    #[test]
    fn max_min_redistributes_leftover() {
        // Flow A: 0->1 (shares tx of 0 with B). Flow B: 0->2 but dst 2 has a
        // tiny rx. B freezes at 10, A picks up the leftover 90.
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(1),
            },
            FlowSpec {
                src: 0,
                dst: 2,
                priority: Priority(1),
            },
        ];
        let tx = [100.0, 100.0, 100.0];
        let rx = [100.0, 100.0, 10.0];
        let rates = allocate_rates(&flows, &tx, &rx);
        assert!((rates[1] - 10.0).abs() < 1e-6, "B limited by rx: {rates:?}");
        assert!(
            (rates[0] - 90.0).abs() < 1e-6,
            "A takes leftover: {rates:?}"
        );
    }

    #[test]
    fn strict_priority_starves_bulk() {
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(0),
            },
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(9),
            },
        ];
        let rates = allocate_rates(&flows, &caps(2, 100.0), &caps(2, 100.0));
        assert!((rates[0] - 100.0).abs() < 1e-6);
        assert!(rates[1].abs() < 1e-6);
    }

    #[test]
    fn lower_class_uses_ports_urgent_class_does_not() {
        // Urgent flow 0->1 saturates 0.tx; bulk flow 2->3 is unaffected.
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(0),
            },
            FlowSpec {
                src: 2,
                dst: 3,
                priority: Priority(7),
            },
        ];
        let rates = allocate_rates(&flows, &caps(4, 100.0), &caps(4, 100.0));
        assert!((rates[0] - 100.0).abs() < 1e-6);
        assert!((rates[1] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn bidirectional_flows_do_not_contend() {
        // tx and rx are independent: full-duplex.
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(1),
            },
            FlowSpec {
                src: 1,
                dst: 0,
                priority: Priority(1),
            },
        ];
        let rates = allocate_rates(&flows, &caps(2, 100.0), &caps(2, 100.0));
        assert!((rates[0] - 100.0).abs() < 1e-6);
        assert!((rates[1] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_yields_zero_rates() {
        let flows = [FlowSpec {
            src: 0,
            dst: 1,
            priority: Priority(1),
        }];
        let rates = allocate_rates(&flows, &[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(rates, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn out_of_range_machine_panics() {
        let flows = [FlowSpec {
            src: 0,
            dst: 5,
            priority: Priority(0),
        }];
        allocate_rates(&flows, &caps(2, 1.0), &caps(2, 1.0));
    }

    #[test]
    fn flow_cap_limits_isolated_flow() {
        let flows = [FlowSpec {
            src: 0,
            dst: 1,
            priority: Priority(0),
        }];
        let rates = allocate_rates_capped(&flows, &caps(2, 100.0), &caps(2, 100.0), 30.0);
        assert_eq!(rates, vec![30.0]);
    }

    #[test]
    fn capped_flows_release_capacity_to_others() {
        // Two flows share 0.tx; with a cap of 30, each takes 30 and the
        // rest of the port goes unused (no third flow to absorb it).
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(0),
            },
            FlowSpec {
                src: 0,
                dst: 2,
                priority: Priority(0),
            },
        ];
        let rates = allocate_rates_capped(&flows, &caps(3, 100.0), &caps(3, 100.0), 30.0);
        assert_eq!(rates, vec![30.0, 30.0]);
        // With a cap of 80 the port (100) binds instead: 50/50.
        let rates = allocate_rates_capped(&flows, &caps(3, 100.0), &caps(3, 100.0), 80.0);
        assert_eq!(rates, vec![50.0, 50.0]);
    }

    #[test]
    fn uncapped_equals_infinite_cap() {
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(0),
            },
            FlowSpec {
                src: 1,
                dst: 2,
                priority: Priority(1),
            },
        ];
        let a = allocate_rates(&flows, &caps(3, 77.0), &caps(3, 77.0));
        let b = allocate_rates_capped(&flows, &caps(3, 77.0), &caps(3, 77.0), 1e18);
        assert_eq!(a, b);
    }

    #[test]
    fn three_class_cascade() {
        // Class 0 takes 60 (its rx limit), class 1 takes the remaining 40 of
        // 0.tx, class 2 gets nothing from 0.tx.
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(0),
            },
            FlowSpec {
                src: 0,
                dst: 2,
                priority: Priority(1),
            },
            FlowSpec {
                src: 0,
                dst: 3,
                priority: Priority(2),
            },
        ];
        let tx = [100.0, 100.0, 100.0, 100.0];
        let rx = [100.0, 60.0, 100.0, 100.0];
        let rates = allocate_rates(&flows, &tx, &rx);
        assert!((rates[0] - 60.0).abs() < 1e-6);
        assert!((rates[1] - 40.0).abs() < 1e-6);
        assert!(rates[2].abs() < 1e-6);
    }

    #[test]
    fn work_counters_are_filled_without_perturbing_rates() {
        let flows = [
            FlowSpec {
                src: 0,
                dst: 1,
                priority: Priority(0),
            },
            FlowSpec {
                src: 0,
                dst: 2,
                priority: Priority(1),
            },
        ];
        let plain = allocate_rates_capped(&flows, &caps(3, 100.0), &caps(3, 100.0), 30.0);
        let mut work = AllocWork::default();
        let counted = allocate_rates_capped_with_work(
            &flows,
            &caps(3, 100.0),
            &caps(3, 100.0),
            30.0,
            &mut work,
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain), bits(&counted), "counting changed a rate bit");
        // Two priority classes: at least one round each, and every round
        // touches one flow over two ports.
        assert!(work.rounds >= 2, "{work:?}");
        assert_eq!(work.flow_touches, work.rounds, "{work:?}");
        assert_eq!(work.port_touches, 2 * work.rounds, "{work:?}");
    }

    #[test]
    fn empty_input_reports_zero_work() {
        let mut work = AllocWork::default();
        let rates =
            allocate_rates_capped_with_work(&[], &caps(2, 10.0), &caps(2, 10.0), 1.0, &mut work);
        assert!(rates.is_empty());
        assert_eq!(work, AllocWork::default());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_flows(machines: usize) -> impl Strategy<Value = Vec<FlowSpec>> {
        prop::collection::vec(
            (0..machines, 0..machines, 0u32..4).prop_map(|(src, dst, p)| FlowSpec {
                src,
                dst,
                priority: Priority(p),
            }),
            0..24,
        )
    }

    proptest! {
        #[test]
        fn port_capacities_respected(flows in arb_flows(5), cap in 1.0f64..1e10) {
            let tx = vec![cap; 5];
            let rx = vec![cap; 5];
            let rates = allocate_rates(&flows, &tx, &rx);
            let mut tx_sum = [0.0; 5];
            let mut rx_sum = [0.0; 5];
            for (f, r) in flows.iter().zip(&rates) {
                prop_assert!(*r >= 0.0);
                tx_sum[f.src] += r;
                rx_sum[f.dst] += r;
            }
            for m in 0..5 {
                prop_assert!(tx_sum[m] <= cap * (1.0 + 1e-6));
                prop_assert!(rx_sum[m] <= cap * (1.0 + 1e-6));
            }
        }

        #[test]
        fn work_conserving(flows in arb_flows(4)) {
            // Every flow must have at least one saturated port (max-min
            // optimality): otherwise its rate could be raised.
            let cap = 100.0;
            let tx = vec![cap; 4];
            let rx = vec![cap; 4];
            let rates = allocate_rates(&flows, &tx, &rx);
            let mut tx_sum = [0.0; 4];
            let mut rx_sum = [0.0; 4];
            for (f, r) in flows.iter().zip(&rates) {
                tx_sum[f.src] += r;
                rx_sum[f.dst] += r;
            }
            for (f, _r) in flows.iter().zip(&rates) {
                let saturated = tx_sum[f.src] >= cap * (1.0 - 1e-6)
                    || rx_sum[f.dst] >= cap * (1.0 - 1e-6);
                prop_assert!(saturated, "flow {:?} has slack on both ports", f);
            }
        }

        #[test]
        fn urgent_class_blind_to_bulk(flows in arb_flows(4)) {
            // Rates of the most urgent class must be identical whether or
            // not any other traffic exists.
            let tx = vec![77.0; 4];
            let rx = vec![77.0; 4];
            let all = allocate_rates(&flows, &tx, &rx);
            let urgent: Vec<FlowSpec> =
                flows.iter().copied().filter(|f| f.priority == Priority(0)).collect();
            let alone = allocate_rates(&urgent, &tx, &rx);
            let mut k = 0;
            for (f, r) in flows.iter().zip(&all) {
                if f.priority == Priority(0) {
                    prop_assert!((r - alone[k]).abs() < 1e-6,
                        "urgent flow rate changed: {} vs {}", r, alone[k]);
                    k += 1;
                }
            }
        }

        #[test]
        fn identical_flows_get_equal_rates(n in 1usize..10, cap in 1.0f64..1e9) {
            let flows: Vec<FlowSpec> =
                (0..n).map(|_| FlowSpec { src: 0, dst: 1, priority: Priority(1) }).collect();
            let rates = allocate_rates(&flows, &[cap, cap], &[cap, cap]);
            for r in &rates {
                prop_assert!((r - rates[0]).abs() < 1e-6 * cap);
            }
        }
    }
}
