//! Descriptive statistics over utilization traces — the quantities the
//! paper reads off Figures 8/9/13/14 by eye ("bursty", "idle", "inbound
//! and outbound are not overlapped"), made numeric.

use crate::trace::PortTrace;

/// Summary statistics of one directed-port trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Mean utilization in Gbps.
    pub mean_gbps: f64,
    /// Peak bin in Gbps.
    pub peak_gbps: f64,
    /// Peak-to-mean ratio (burstiness; 1.0 = perfectly smooth).
    pub burstiness: f64,
    /// Fraction of bins below 5% of the nominal capacity.
    pub idle_fraction: f64,
}

/// Computes summary statistics against a nominal capacity in bits/sec.
///
/// # Panics
///
/// Panics if `capacity_bps` is not positive.
pub fn trace_stats(trace: &PortTrace, capacity_bps: f64) -> TraceStats {
    assert!(capacity_bps > 0.0, "non-positive capacity");
    let series = trace.gbps_series();
    if series.is_empty() {
        return TraceStats {
            mean_gbps: 0.0,
            peak_gbps: 0.0,
            burstiness: 0.0,
            idle_fraction: 1.0,
        };
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let peak = series.iter().copied().fold(0.0, f64::max);
    TraceStats {
        mean_gbps: mean,
        peak_gbps: peak,
        burstiness: if mean > 0.0 { peak / mean } else { 0.0 },
        idle_fraction: trace.idle_fraction(capacity_bps, 0.05),
    }
}

/// Bidirectional-overlap coefficient of two traces: the time-correlation
/// of tx and rx activity, in `[0, 1]`. The paper's baseline shows near-
/// disjoint in/outbound phases (low overlap); P3 overlaps them.
///
/// Defined as `Σ min(tx_b, rx_b) / Σ max(tx_b, rx_b)` over common bins —
/// `1.0` when the directions move in lockstep, `0.0` when strictly
/// alternating.
pub fn overlap_coefficient(tx: &PortTrace, rx: &PortTrace) -> f64 {
    let a = tx.gbps_series();
    let b = rx.gbps_series();
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        num += a[i].min(b[i]);
        den += a[i].max(b[i]);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_des::{SimDuration, SimTime};

    fn trace_with(rates: &[(u64, u64, f64)]) -> PortTrace {
        // (from_ms, to_ms, bytes_per_sec) segments on 10 ms bins.
        let mut t = PortTrace::new(SimDuration::from_millis(10));
        for &(a, b, r) in rates {
            t.add_rate(SimTime::from_millis(a), SimTime::from_millis(b), r);
        }
        t
    }

    #[test]
    fn smooth_trace_has_unit_burstiness() {
        let t = trace_with(&[(0, 100, 1.25e8)]); // 1 Gbps flat
        let s = trace_stats(&t, 1e9);
        assert!((s.mean_gbps - 1.0).abs() < 1e-9);
        assert!((s.burstiness - 1.0).abs() < 1e-9);
        assert_eq!(s.idle_fraction, 0.0);
    }

    #[test]
    fn bursty_trace_scores_high() {
        // One 10 ms burst in a 100 ms window.
        let t = trace_with(&[(0, 10, 1.25e9), (10, 100, 1.0)]);
        let s = trace_stats(&t, 10e9);
        assert!(s.burstiness > 5.0, "burstiness {}", s.burstiness);
        assert!(s.idle_fraction >= 0.8);
    }

    #[test]
    fn overlap_of_identical_traces_is_one() {
        let t = trace_with(&[(0, 50, 1e8)]);
        assert!((overlap_coefficient(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_alternating_traces_is_zero() {
        let tx = trace_with(&[(0, 50, 1e8)]);
        let mut rx = PortTrace::new(SimDuration::from_millis(10));
        rx.add_rate(SimTime::from_millis(50), SimTime::from_millis(100), 1e8);
        // tx active bins 0..5, rx bins 5..10: disjoint.
        assert_eq!(overlap_coefficient(&tx, &rx), 0.0);
    }

    #[test]
    fn empty_traces_are_handled() {
        let t = PortTrace::new(SimDuration::from_millis(10));
        let s = trace_stats(&t, 1e9);
        assert_eq!(s.idle_fraction, 1.0);
        assert_eq!(overlap_coefficient(&t, &t), 0.0);
    }
}
