//! The [`BenchReport`]: one `p3 bench` sweep of the engine across worker
//! counts and backends, serialized as `BENCH_simulate.json`.
//!
//! A point mixes two kinds of measurement. `events`, `event_hash`,
//! `sim_seconds`, `peak_in_flight` and `throughput` are *deterministic* —
//! any two builds of the same code produce identical values, so the
//! regression differ holds them to exact equality. `wall_seconds` and
//! `events_per_sec` are wall-clock and machine-dependent, so the differ
//! only holds them to a tolerance band.

use crate::report::{get_array, get_f64, get_str, get_u64, parse_checked, ReportError};
use p3_trace::json::{escape, format_number};

/// Version stamp of the [`BenchReport`] JSON schema.
pub const BENCH_FORMAT_VERSION: u64 = 1;

/// Discriminator value of the `"format"` member of a bench document.
pub(crate) const BENCH_FORMAT: &str = "p3-bench";

/// One measured configuration of the bench sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Backend name (`ps`, `ring`, `halving-doubling`).
    pub backend: String,
    /// Cluster size (one worker per machine).
    pub machines: u64,
    /// Simulator events the run dispatched (deterministic).
    pub events: u64,
    /// Rolling event digest of the run (deterministic).
    pub event_hash: u64,
    /// Simulated seconds the run covered (deterministic).
    pub sim_seconds: f64,
    /// Peak concurrently active network flows (deterministic).
    pub peak_in_flight: u64,
    /// Aggregate training throughput in samples/sec (deterministic).
    pub throughput: f64,
    /// Wall time the run took, in seconds (machine-dependent).
    pub wall_seconds: f64,
    /// Engine throughput in events/sec (machine-dependent).
    pub events_per_sec: f64,
}

impl BenchPoint {
    /// The identity of this point within a sweep.
    pub fn key(&self) -> (String, u64) {
        (self.backend.clone(), self.machines)
    }
}

/// A full bench sweep, ready to serialize or diff.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_FORMAT_VERSION`]).
    pub version: u64,
    /// Measured points, in sweep order.
    pub points: Vec<BenchPoint>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{BENCH_FORMAT}\",\n"));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str("  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "\n    {{\"backend\": \"{}\", \"machines\": {}, ",
                    "\"events\": {}, \"event_hash\": \"{:#018x}\", ",
                    "\"sim_seconds\": {}, \"peak_in_flight\": {}, ",
                    "\"throughput\": {}, \"wall_seconds\": {}, ",
                    "\"events_per_sec\": {}}}"
                ),
                escape(&p.backend),
                p.machines,
                p.events,
                p.event_hash,
                format_number(p.sim_seconds),
                p.peak_in_flight,
                format_number(p.throughput),
                format_number(p.wall_seconds),
                format_number(p.events_per_sec),
            ));
        }
        out.push_str(if self.points.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a report back from JSON. Never panics: every malformed
    /// input maps to a [`ReportError`].
    pub fn from_json(text: &str) -> Result<BenchReport, ReportError> {
        let root = parse_checked(text, BENCH_FORMAT, BENCH_FORMAT_VERSION)?;
        let mut points = Vec::new();
        for p in get_array(&root, "points")? {
            let hash_text = get_str(p, "event_hash")?;
            let digits = hash_text.strip_prefix("0x").ok_or_else(|| {
                ReportError::Schema(format!(
                    "member `event_hash` is not a 0x-prefixed hex string: `{hash_text}`"
                ))
            })?;
            let event_hash = u64::from_str_radix(digits, 16).map_err(|_| {
                ReportError::Schema(format!(
                    "member `event_hash` is not a 64-bit hex value: `{hash_text}`"
                ))
            })?;
            points.push(BenchPoint {
                backend: get_str(p, "backend")?.to_string(),
                machines: get_u64(p, "machines")?,
                events: get_u64(p, "events")?,
                event_hash,
                sim_seconds: get_f64(p, "sim_seconds")?,
                peak_in_flight: get_u64(p, "peak_in_flight")?,
                throughput: get_f64(p, "throughput")?,
                wall_seconds: get_f64(p, "wall_seconds")?,
                events_per_sec: get_f64(p, "events_per_sec")?,
            });
        }
        Ok(BenchReport {
            version: BENCH_FORMAT_VERSION,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn point(backend: &str, machines: u64) -> BenchPoint {
        BenchPoint {
            backend: backend.to_string(),
            machines,
            events: 1000 * machines,
            event_hash: 0xdead_beef_0000_0000 | machines,
            sim_seconds: 1.5,
            peak_in_flight: 3 * machines,
            throughput: 100.0 * machines as f64,
            wall_seconds: 0.25,
            events_per_sec: 4000.0 * machines as f64,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = BenchReport {
            version: BENCH_FORMAT_VERSION,
            points: vec![point("ps", 16), point("ring", 32)],
        };
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = BenchReport {
            version: BENCH_FORMAT_VERSION,
            points: Vec::new(),
        };
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn profile_document_is_a_schema_error() {
        let doc = r#"{"format": "p3-profile", "version": 1, "points": []}"#;
        assert!(matches!(
            BenchReport::from_json(doc),
            Err(ReportError::Schema(ref s)) if s.contains("format")
        ));
    }

    #[test]
    fn bad_hash_is_a_schema_error() {
        let doc = r#"{"format": "p3-bench", "version": 1, "points": [
            {"backend": "ps", "machines": 4, "events": 1, "event_hash": "xyz",
             "sim_seconds": 1, "peak_in_flight": 1, "throughput": 1,
             "wall_seconds": 1, "events_per_sec": 1}]}"#;
        assert!(matches!(
            BenchReport::from_json(doc),
            Err(ReportError::Schema(ref s)) if s.contains("event_hash")
        ));
    }

    #[test]
    fn negative_machines_is_a_schema_error() {
        let doc = r#"{"format": "p3-bench", "version": 1, "points": [
            {"backend": "ps", "machines": -4}]}"#;
        assert!(matches!(
            BenchReport::from_json(doc),
            Err(ReportError::Schema(_))
        ));
    }
}
