//! Self-profiling of the simulator — wall-clock observability *of the
//! engine itself*, as opposed to the simulated cluster (that is
//! `p3-trace`'s job).
//!
//! The heart of the crate is [`SimProfiler`]: a bag of scoped wall-clock
//! timers and monotonic counters that the cluster engine threads through
//! its hot paths when profiling is enabled. The engine holds it as an
//! `Option` — the same idiom as its trace handle — so an unprofiled run
//! pays one untaken branch per hook and nothing else.
//!
//! Wall-clock time is banned in every simulation crate (`p3-lint`'s
//! `wall-clock` rule) because it is the canonical determinism hazard. This
//! crate is the single scoped exemption: `Instant::now` lives *here*, the
//! engine only moves opaque [`SpanToken`]s around, and no wall-clock value
//! ever feeds back into simulation state. The non-intrusiveness invariant
//! is pinned by test: a profiled run's event digest is bit-identical to an
//! unprofiled run's.
//!
//! On top of the profiler sit the serialized artifacts:
//!
//! * [`ProfileReport`] — one run's timers/counters/throughput, written by
//!   `p3 simulate --profile-out` as versioned JSON.
//! * [`BenchReport`] — a sweep of engine benchmark points (worker count ×
//!   backend), written by `p3 bench` as `BENCH_simulate.json`.
//! * [`compare_reports`] — the regression differ behind `p3 compare`,
//!   which holds deterministic fields (event counts, digests) to exact
//!   equality and wall-clock throughput to a tolerance band.

mod bench;
mod compare;
mod report;

pub use bench::{BenchPoint, BenchReport, BENCH_FORMAT_VERSION};
pub use compare::{compare_reports, compare_reports_subset, Comparison};
pub use report::{CounterEntry, ProfileReport, ReportError, TimerEntry, PROFILE_FORMAT_VERSION};

/// Typed JSON-member access shared by every versioned report format in
/// the workspace. Downstream crates that define their own report schema
/// (the tuner's `TuneReport`) build their readers from these so all
/// formats fail with the same structured [`ReportError`]s.
pub mod schema {
    pub use crate::report::{get, get_array, get_f64, get_str, get_u64, parse_checked};
}

use std::collections::BTreeMap;
use std::time::Instant;

/// An in-progress scoped measurement: the wall-clock instant a span began.
///
/// Opaque on purpose — holders can only hand it back to
/// [`SimProfiler::record`], never read the clock, so simulation crates
/// that move tokens around cannot leak wall time into simulation state.
#[derive(Debug)]
pub struct SpanToken(Instant);

/// Accumulated wall time of one timer key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of recorded spans.
    pub calls: u64,
    /// Total wall time across all spans, in nanoseconds.
    pub nanos: u128,
}

/// Scoped wall-clock timers plus monotonic counters for one simulation
/// run.
///
/// Keys are `&'static str` so the hot-path hooks allocate nothing; the
/// maps are `BTreeMap` so reports serialize in a deterministic order.
#[derive(Debug)]
pub struct SimProfiler {
    started: Instant,
    timers: BTreeMap<&'static str, TimerStat>,
    counters: BTreeMap<&'static str, u64>,
}

impl Default for SimProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SimProfiler {
    /// A fresh profiler; the run's total wall clock starts now.
    pub fn new() -> Self {
        SimProfiler {
            started: Instant::now(),
            timers: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Opens a scoped span. Pair with [`SimProfiler::record`].
    #[inline]
    pub fn begin(&self) -> SpanToken {
        SpanToken(Instant::now())
    }

    /// Closes a span opened by [`SimProfiler::begin`], charging its wall
    /// time to `key`.
    #[inline]
    pub fn record(&mut self, key: &'static str, span: SpanToken) {
        let nanos = span.0.elapsed().as_nanos();
        let t = self.timers.entry(key).or_default();
        t.calls += 1;
        t.nanos += nanos;
    }

    /// Adds `n` to the monotonic counter `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Raises the high-water counter `key` to at least `v`.
    #[inline]
    pub fn record_max(&mut self, key: &'static str, v: u64) {
        let e = self.counters.entry(key).or_insert(0);
        *e = (*e).max(v);
    }

    /// Overwrites the counter `key` (for values computed once at the end
    /// of a run, e.g. heap-op totals read off the event calendar).
    #[inline]
    pub fn set(&mut self, key: &'static str, v: u64) {
        self.counters.insert(key, v);
    }

    /// Wall time elapsed since the profiler was created.
    pub fn wall_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Raw timer stats, keyed and ordered deterministically.
    pub fn timers(&self) -> &BTreeMap<&'static str, TimerStat> {
        &self.timers
    }

    /// Raw counters, keyed and ordered deterministically.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Freezes this profiler into a versioned [`ProfileReport`].
    ///
    /// `events` is the number of simulator events the run dispatched and
    /// `sim_seconds` how far the simulated clock advanced; together with
    /// the profiler's own wall clock they yield the derived throughput
    /// figures (events/sec and the sim-time/wall-time ratio).
    pub fn report(&self, events: u64, sim_seconds: f64) -> ProfileReport {
        let wall = self.wall_seconds();
        ProfileReport {
            version: PROFILE_FORMAT_VERSION,
            wall_seconds: wall,
            sim_seconds,
            events,
            events_per_sec: if wall > 0.0 {
                events as f64 / wall
            } else {
                0.0
            },
            sim_rate: if wall > 0.0 { sim_seconds / wall } else { 0.0 },
            timers: self
                .timers
                .iter()
                .map(|(k, t)| TimerEntry {
                    key: k.to_string(),
                    calls: t.calls,
                    seconds: t.nanos as f64 * 1e-9,
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| CounterEntry {
                    key: k.to_string(),
                    value: *v,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_calls_and_time() {
        let mut p = SimProfiler::new();
        for _ in 0..3 {
            let t = p.begin();
            p.record("dispatch/Compute", t);
        }
        let stat = p.timers()["dispatch/Compute"];
        assert_eq!(stat.calls, 3);
    }

    #[test]
    fn counters_add_max_and_set() {
        let mut p = SimProfiler::new();
        p.add("net/reallocations", 2);
        p.add("net/reallocations", 3);
        p.record_max("net/peak_in_flight", 7);
        p.record_max("net/peak_in_flight", 4);
        p.set("heap/pushes", 99);
        assert_eq!(p.counters()["net/reallocations"], 5);
        assert_eq!(p.counters()["net/peak_in_flight"], 7);
        assert_eq!(p.counters()["heap/pushes"], 99);
    }

    #[test]
    fn report_derives_throughput_deterministically() {
        let mut p = SimProfiler::new();
        p.add("c", 1);
        let r = p.report(1000, 2.0);
        assert_eq!(r.version, PROFILE_FORMAT_VERSION);
        assert_eq!(r.events, 1000);
        assert!(r.wall_seconds >= 0.0);
        assert!(r.events_per_sec >= 0.0);
        assert_eq!(r.counters.len(), 1);
        assert_eq!(r.counters[0].key, "c");
    }
}
