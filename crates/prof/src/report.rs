//! The per-run [`ProfileReport`]: versioned JSON written by
//! `p3 simulate --profile-out`, parsed back for tests and tooling.
//!
//! Hand-rolled like every other serialized artifact in the workspace (the
//! policy is offline and dependency-free): writing is string assembly,
//! reading goes through `p3_trace::json` and surfaces every failure as a
//! structured [`ReportError`] — malformed input must never panic.

use p3_trace::json::{escape, format_number, parse, JsonValue};
use std::fmt;

/// Version stamp of the [`ProfileReport`] JSON schema.
pub const PROFILE_FORMAT_VERSION: u64 = 1;

/// Discriminator value of the `"format"` member of a profile document.
pub(crate) const PROFILE_FORMAT: &str = "p3-profile";

/// One scoped timer in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct TimerEntry {
    /// Timer key, e.g. `dispatch/Compute` or `net/poll`.
    pub key: String,
    /// Number of recorded spans.
    pub calls: u64,
    /// Total wall time across all spans, in seconds.
    pub seconds: f64,
}

/// One monotonic counter in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Counter key, e.g. `net/reallocations`.
    pub key: String,
    /// Final value.
    pub value: u64,
}

/// Everything one profiled run measured about the simulator itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Schema version ([`PROFILE_FORMAT_VERSION`]).
    pub version: u64,
    /// Wall time the run took, in seconds.
    pub wall_seconds: f64,
    /// How far the simulated clock advanced, in seconds.
    pub sim_seconds: f64,
    /// Simulator events dispatched.
    pub events: u64,
    /// `events / wall_seconds` — the engine's own throughput.
    pub events_per_sec: f64,
    /// `sim_seconds / wall_seconds` — how much faster than real time the
    /// simulation ran.
    pub sim_rate: f64,
    /// Scoped timers, sorted by key.
    pub timers: Vec<TimerEntry>,
    /// Monotonic counters, sorted by key.
    pub counters: Vec<CounterEntry>,
}

/// Why a serialized report could not be understood.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The document is not JSON at all.
    Json(String),
    /// The document is JSON but not this schema (wrong `"format"`
    /// discriminator, missing member, ill-typed value…). The string names
    /// the offending member.
    Schema(String),
    /// The document is a future (or alien) version of this schema.
    Version {
        /// Version stamp found in the document.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "not valid JSON: {e}"),
            ReportError::Schema(what) => write!(f, "schema mismatch: {what}"),
            ReportError::Version { found, expected } => {
                write!(
                    f,
                    "unsupported report version {found} (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for ReportError {}

// ---------------------------------------------------------------------
// Typed member access shared by the profile and bench readers, and —
// via the crate's public `schema` module — by downstream report formats
// (the tuner's `TuneReport` is the first).

/// Fetches member `key` of object `v`, or a schema error naming it.
pub fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ReportError> {
    v.get(key)
        .ok_or_else(|| ReportError::Schema(format!("missing member `{key}`")))
}

/// Fetches member `key` as a non-negative integer.
pub fn get_u64(v: &JsonValue, key: &str) -> Result<u64, ReportError> {
    let n = get(v, key)?
        .as_number()
        .ok_or_else(|| ReportError::Schema(format!("member `{key}` is not a number")))?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(ReportError::Schema(format!(
            "member `{key}` is not a non-negative integer: {n}"
        )));
    }
    Ok(n as u64)
}

/// Fetches member `key` as a number.
pub fn get_f64(v: &JsonValue, key: &str) -> Result<f64, ReportError> {
    get(v, key)?
        .as_number()
        .ok_or_else(|| ReportError::Schema(format!("member `{key}` is not a number")))
}

/// Fetches member `key` as a string.
pub fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ReportError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| ReportError::Schema(format!("member `{key}` is not a string")))
}

/// Fetches member `key` as an array.
pub fn get_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ReportError> {
    get(v, key)?
        .as_array()
        .ok_or_else(|| ReportError::Schema(format!("member `{key}` is not an array")))
}

/// Parses a document and checks its `"format"` discriminator and
/// `"version"` stamp, returning the root value.
pub fn parse_checked(text: &str, format: &str, version: u64) -> Result<JsonValue, ReportError> {
    let root = parse(text).map_err(|e| ReportError::Json(e.to_string()))?;
    if root.as_object().is_none() {
        return Err(ReportError::Schema("document root is not an object".into()));
    }
    let found_format = get_str(&root, "format")?;
    if found_format != format {
        return Err(ReportError::Schema(format!(
            "member `format` is `{found_format}`, expected `{format}`"
        )));
    }
    let found = get_u64(&root, "version")?;
    if found != version {
        return Err(ReportError::Version {
            found,
            expected: version,
        });
    }
    Ok(root)
}

impl ProfileReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{PROFILE_FORMAT}\",\n"));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!(
            "  \"wall_seconds\": {},\n",
            format_number(self.wall_seconds)
        ));
        out.push_str(&format!(
            "  \"sim_seconds\": {},\n",
            format_number(self.sim_seconds)
        ));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!(
            "  \"events_per_sec\": {},\n",
            format_number(self.events_per_sec)
        ));
        out.push_str(&format!(
            "  \"sim_rate\": {},\n",
            format_number(self.sim_rate)
        ));
        out.push_str("  \"timers\": [");
        for (i, t) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"calls\": {}, \"seconds\": {}}}",
                escape(&t.key),
                t.calls,
                format_number(t.seconds)
            ));
        }
        out.push_str(if self.timers.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"key\": \"{}\", \"value\": {}}}",
                escape(&c.key),
                c.value
            ));
        }
        out.push_str(if self.counters.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a report back from JSON. Never panics: every malformed
    /// input maps to a [`ReportError`].
    pub fn from_json(text: &str) -> Result<ProfileReport, ReportError> {
        let root = parse_checked(text, PROFILE_FORMAT, PROFILE_FORMAT_VERSION)?;
        let mut timers = Vec::new();
        for t in get_array(&root, "timers")? {
            timers.push(TimerEntry {
                key: get_str(t, "key")?.to_string(),
                calls: get_u64(t, "calls")?,
                seconds: get_f64(t, "seconds")?,
            });
        }
        let mut counters = Vec::new();
        for c in get_array(&root, "counters")? {
            counters.push(CounterEntry {
                key: get_str(c, "key")?.to_string(),
                value: get_u64(c, "value")?,
            });
        }
        Ok(ProfileReport {
            version: PROFILE_FORMAT_VERSION,
            wall_seconds: get_f64(&root, "wall_seconds")?,
            sim_seconds: get_f64(&root, "sim_seconds")?,
            events: get_u64(&root, "events")?,
            events_per_sec: get_f64(&root, "events_per_sec")?,
            sim_rate: get_f64(&root, "sim_rate")?,
            timers,
            counters,
        })
    }

    /// The value of counter `key`, if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.key == key).map(|c| c.value)
    }

    /// The timer entry for `key`, if present.
    pub fn timer(&self, key: &str) -> Option<&TimerEntry> {
        self.timers.iter().find(|t| t.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileReport {
        ProfileReport {
            version: PROFILE_FORMAT_VERSION,
            wall_seconds: 0.125,
            sim_seconds: 3.5,
            events: 4096,
            events_per_sec: 32768.0,
            sim_rate: 28.0,
            timers: vec![TimerEntry {
                key: "dispatch/Compute".into(),
                calls: 128,
                seconds: 0.0625,
            }],
            counters: vec![CounterEntry {
                key: "net/reallocations".into(),
                value: 77,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let back = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = ProfileReport {
            timers: Vec::new(),
            counters: Vec::new(),
            ..sample()
        };
        assert_eq!(ProfileReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn garbage_is_a_json_error() {
        assert!(matches!(
            ProfileReport::from_json("not json at all"),
            Err(ReportError::Json(_))
        ));
    }

    #[test]
    fn wrong_format_is_a_schema_error() {
        let doc = r#"{"format": "p3-bench", "version": 1}"#;
        assert!(matches!(
            ProfileReport::from_json(doc),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn future_version_is_a_version_error() {
        let doc = r#"{"format": "p3-profile", "version": 99, "timers": [], "counters": []}"#;
        assert_eq!(
            ProfileReport::from_json(doc),
            Err(ReportError::Version {
                found: 99,
                expected: PROFILE_FORMAT_VERSION
            })
        );
    }

    #[test]
    fn missing_member_is_a_schema_error() {
        let doc = r#"{"format": "p3-profile", "version": 1, "timers": [], "counters": []}"#;
        let err = ProfileReport::from_json(doc).unwrap_err();
        assert!(
            matches!(err, ReportError::Schema(ref s) if s.contains("wall_seconds")),
            "{err}"
        );
    }

    #[test]
    fn lookup_helpers() {
        let r = sample();
        assert_eq!(r.counter("net/reallocations"), Some(77));
        assert_eq!(r.counter("absent"), None);
        assert_eq!(r.timer("dispatch/Compute").unwrap().calls, 128);
    }
}
