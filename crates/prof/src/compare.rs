//! The regression differ behind `p3 compare`: diff two [`BenchReport`]s
//! and classify every difference as a regression, an improvement, or
//! determinism drift.

use crate::bench::{BenchPoint, BenchReport};
use std::collections::BTreeMap;

/// Outcome of diffing a candidate bench report against a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Number of points present in both reports.
    pub checked: usize,
    /// Failures: a nonempty list means the candidate regressed. Each
    /// entry is a human-readable, self-contained sentence.
    pub regressions: Vec<String>,
    /// Non-failing observations (improvements, new points).
    pub notes: Vec<String>,
}

impl Comparison {
    /// True when no regression was found.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "compared {} point(s)", self.checked)?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        for r in &self.regressions {
            writeln!(f, "  REGRESSION: {r}")?;
        }
        if self.is_pass() {
            writeln!(f, "PASS")?;
        } else {
            writeln!(f, "FAIL: {} regression(s)", self.regressions.len())?;
        }
        Ok(())
    }
}

/// Diffs `candidate` against `baseline`.
///
/// Points are matched by `(backend, machines)`. Deterministic fields
/// (`events`, `event_hash`, `peak_in_flight`, `throughput`,
/// `sim_seconds`) must match exactly — any drift there means the engine
/// changed behaviour, which no tolerance can excuse. Wall-clock
/// throughput (`events_per_sec`) may sink to `(1 - tolerance)` of the
/// baseline before it counts as a regression; `tolerance` is a fraction
/// in `[0, 1)`, e.g. `0.2` allows a 20% slowdown.
///
/// A baseline point missing from the candidate is a regression (coverage
/// shrank); a candidate point absent from the baseline is only a note.
pub fn compare_reports(
    baseline: &BenchReport,
    candidate: &BenchReport,
    tolerance: f64,
) -> Comparison {
    let tolerance = tolerance.clamp(0.0, 0.999_999);
    let by_key: BTreeMap<(String, u64), &BenchPoint> =
        candidate.points.iter().map(|p| (p.key(), p)).collect();
    let mut cmp = Comparison {
        checked: 0,
        regressions: Vec::new(),
        notes: Vec::new(),
    };
    for base in &baseline.points {
        let label = format!("{} @ {} machines", base.backend, base.machines);
        let Some(cand) = by_key.get(&base.key()) else {
            cmp.regressions.push(format!(
                "{label}: present in baseline, missing from candidate"
            ));
            continue;
        };
        cmp.checked += 1;
        let mut drift = |what: &str, a: String, b: String| {
            cmp.regressions.push(format!(
                "{label}: deterministic {what} drifted: baseline {a}, candidate {b}"
            ));
        };
        if cand.events != base.events {
            drift(
                "event count",
                base.events.to_string(),
                cand.events.to_string(),
            );
        }
        if cand.event_hash != base.event_hash {
            drift(
                "event hash",
                format!("{:#018x}", base.event_hash),
                format!("{:#018x}", cand.event_hash),
            );
        }
        if cand.peak_in_flight != base.peak_in_flight {
            drift(
                "peak in-flight flows",
                base.peak_in_flight.to_string(),
                cand.peak_in_flight.to_string(),
            );
        }
        if cand.sim_seconds != base.sim_seconds {
            drift(
                "sim duration",
                base.sim_seconds.to_string(),
                cand.sim_seconds.to_string(),
            );
        }
        if cand.throughput != base.throughput {
            drift(
                "throughput",
                base.throughput.to_string(),
                cand.throughput.to_string(),
            );
        }
        let floor = base.events_per_sec * (1.0 - tolerance);
        if cand.events_per_sec < floor {
            cmp.regressions.push(format!(
                "{label}: events/sec fell below tolerance: baseline {:.0}, candidate {:.0} \
                 (floor {:.0} at tolerance {tolerance})",
                base.events_per_sec, cand.events_per_sec, floor
            ));
        } else if cand.events_per_sec > base.events_per_sec * (1.0 + tolerance) {
            cmp.notes.push(format!(
                "{label}: events/sec improved: baseline {:.0}, candidate {:.0}",
                base.events_per_sec, cand.events_per_sec
            ));
        }
    }
    let baseline_keys: BTreeMap<(String, u64), ()> =
        baseline.points.iter().map(|p| (p.key(), ())).collect();
    for p in &candidate.points {
        if !baseline_keys.contains_key(&p.key()) {
            cmp.notes.push(format!(
                "{} @ {} machines: new point, not in baseline",
                p.backend, p.machines
            ));
        }
    }
    cmp
}

/// Like [`compare_reports`], but only checks baseline points whose
/// `(backend, machines)` key also appears in the candidate; the rest are
/// recorded as notes instead of missing-coverage regressions.
///
/// This is the mode for quick CI gates: the checked-in baseline carries
/// the full machine ladder, while a `p3 bench --quick` candidate only
/// re-measures the cheap rungs. Shrinking coverage is deliberate there,
/// so it must not read as a regression — everything the candidate *does*
/// cover is still held to the full exact-match + tolerance contract.
pub fn compare_reports_subset(
    baseline: &BenchReport,
    candidate: &BenchReport,
    tolerance: f64,
) -> Comparison {
    let candidate_keys: BTreeMap<(String, u64), ()> =
        candidate.points.iter().map(|p| (p.key(), ())).collect();
    let mut skipped = Vec::new();
    let subset = BenchReport {
        version: baseline.version,
        points: baseline
            .points
            .iter()
            .filter(|p| {
                let keep = candidate_keys.contains_key(&p.key());
                if !keep {
                    skipped.push(format!(
                        "{} @ {} machines: baseline point skipped (not in candidate subset)",
                        p.backend, p.machines
                    ));
                }
                keep
            })
            .cloned()
            .collect(),
    };
    let mut cmp = compare_reports(&subset, candidate, tolerance);
    cmp.notes.extend(skipped);
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::BENCH_FORMAT_VERSION;

    fn point(backend: &str, machines: u64) -> BenchPoint {
        BenchPoint {
            backend: backend.to_string(),
            machines,
            events: 1000 * machines,
            event_hash: 0xdead_beef_0000_0000 | machines,
            sim_seconds: 1.5,
            peak_in_flight: 3 * machines,
            throughput: 100.0 * machines as f64,
            wall_seconds: 0.25,
            events_per_sec: 4000.0 * machines as f64,
        }
    }

    fn report(points: Vec<BenchPoint>) -> BenchReport {
        BenchReport {
            version: BENCH_FORMAT_VERSION,
            points,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(vec![point("ps", 16), point("ring", 32)]);
        let cmp = compare_reports(&a, &a.clone(), 0.1);
        assert!(cmp.is_pass(), "{cmp}");
        assert_eq!(cmp.checked, 2);
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let a = report(vec![point("ps", 16)]);
        let mut b = a.clone();
        b.points[0].events_per_sec *= 0.85;
        assert!(compare_reports(&a, &b, 0.2).is_pass());
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let a = report(vec![point("ps", 16)]);
        let mut b = a.clone();
        b.points[0].events_per_sec *= 0.5;
        let cmp = compare_reports(&a, &b, 0.2);
        assert!(!cmp.is_pass());
        assert!(cmp.regressions[0].contains("events/sec"), "{cmp}");
    }

    #[test]
    fn determinism_drift_fails_regardless_of_tolerance() {
        let a = report(vec![point("ps", 16)]);
        let mut b = a.clone();
        b.points[0].event_hash ^= 1;
        let cmp = compare_reports(&a, &b, 0.999);
        assert!(!cmp.is_pass());
        assert!(cmp.regressions[0].contains("event hash"), "{cmp}");
    }

    #[test]
    fn missing_point_fails_new_point_notes() {
        let a = report(vec![point("ps", 16), point("ps", 32)]);
        let b = report(vec![point("ps", 16), point("ring", 16)]);
        let cmp = compare_reports(&a, &b, 0.1);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("missing"), "{cmp}");
        assert!(cmp.notes.iter().any(|n| n.contains("new point")), "{cmp}");
    }

    #[test]
    fn subset_mode_skips_uncovered_baseline_points_without_failing() {
        let a = report(vec![point("ps", 16), point("ps", 32), point("ps", 64)]);
        let b = report(vec![point("ps", 16), point("ps", 32)]);
        let cmp = compare_reports_subset(&a, &b, 0.1);
        assert!(cmp.is_pass(), "{cmp}");
        assert_eq!(cmp.checked, 2);
        assert!(cmp.notes.iter().any(|n| n.contains("skipped")), "{cmp}");
        // Covered points are still held to the exact-match contract.
        let mut c = b.clone();
        c.points[0].event_hash ^= 1;
        assert!(!compare_reports_subset(&a, &c, 0.1).is_pass());
    }

    #[test]
    fn speedup_is_a_note_not_a_failure() {
        let a = report(vec![point("ps", 16)]);
        let mut b = a.clone();
        b.points[0].events_per_sec *= 3.0;
        let cmp = compare_reports(&a, &b, 0.2);
        assert!(cmp.is_pass());
        assert!(cmp.notes.iter().any(|n| n.contains("improved")), "{cmp}");
    }
}
