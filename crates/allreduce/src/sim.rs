//! Simulation of data-parallel training over collective aggregation,
//! with optional P3-style slicing and priority scheduling of the
//! collectives.
//!
//! The mechanics mirror `p3-cluster`'s parameter-server simulation —
//! identical compute timelines, identical slice/priority machinery — but
//! gradients aggregate through ring/tree collectives: a slice's allreduce
//! can start once **every** worker has produced that slice's gradients,
//! collectives serialize on the network (one in flight, as in
//! Horovod-style implementations), and the scheduler picks the next slice
//! either FIFO (generation order) or by P3's consumption-order priority.

use crate::collective::Collective;
use p3_core::{p3_plan, PrioQueue};
use p3_des::{EventQueue, SimDuration, SimTime, SplitMix64};
use p3_models::{BlockTiming, ComputeProfile, ModelSpec, SampleUnit, BYTES_PER_PARAM};
use p3_net::Bandwidth;
use p3_pserver::{ServerId, ShardPlan};

/// Default slice size for collective aggregation: 2 M parameters (8 MB).
///
/// Collectives want far coarser slices than the parameter server's 50k
/// optimum: every ring allreduce pays `2(N−1)` fixed step costs, so
/// thousands of tiny collectives drown in startup latency — the same
/// economics that drive Horovod's tensor-fusion buffers. The
/// `extension_allreduce` bench sweeps this trade-off.
pub const DEFAULT_COLLECTIVE_SLICE: u64 = 2_000_000;

/// Configuration of a collective-aggregation training run.
#[derive(Debug, Clone)]
pub struct AllreduceConfig {
    /// Cluster size.
    pub machines: usize,
    /// Per-direction NIC bandwidth.
    pub bandwidth: Bandwidth,
    /// Model under training.
    pub model: ModelSpec,
    /// Slice size in parameters; `None` aggregates layer-wise (one
    /// collective per array, Horovod-without-fusion style).
    pub slice_params: Option<u64>,
    /// `true`: schedule pending collectives by consumption-order priority
    /// (P3 generalized); `false`: FIFO in generation order.
    pub priority: bool,
    /// Which collective algorithm runs each slice.
    pub collective: Collective,
    /// Device profile.
    pub compute: ComputeProfile,
    /// Per-worker batch.
    pub batch_per_worker: usize,
    /// Warm-up iterations before measurement.
    pub warmup_iters: u64,
    /// Measured iterations.
    pub measure_iters: u64,
    /// Protocol efficiency (same calibration as the PS simulator).
    pub net_efficiency: f64,
    /// Per-collective-step latency + message overhead.
    pub per_step: SimDuration,
    /// Seed for compute jitter.
    pub seed: u64,
}

impl AllreduceConfig {
    /// Defaults matching the PS simulator's calibration.
    pub fn new(model: ModelSpec, machines: usize, bandwidth: Bandwidth) -> Self {
        let batch = model.default_batch();
        AllreduceConfig {
            machines,
            bandwidth,
            model,
            slice_params: Some(DEFAULT_COLLECTIVE_SLICE),
            priority: true,
            collective: Collective::Ring,
            compute: ComputeProfile::p4000(),
            batch_per_worker: batch,
            warmup_iters: 2,
            measure_iters: 8,
            net_efficiency: 0.25,
            per_step: SimDuration::from_micros(150),
            seed: 17,
        }
    }

    /// Horovod-style baseline: layer-wise collectives in generation order.
    pub fn layerwise_fifo(model: ModelSpec, machines: usize, bandwidth: Bandwidth) -> Self {
        let mut c = Self::new(model, machines, bandwidth);
        c.slice_params = None;
        c.priority = false;
        c
    }
}

/// Result of an allreduce-mode run.
#[derive(Debug, Clone)]
pub struct AllreduceResult {
    /// Aggregate samples/sec.
    pub throughput: f64,
    /// Unit of account.
    pub unit: SampleUnit,
    /// Mean iteration duration over the measured window.
    pub mean_iteration: SimDuration,
    /// Simulator events processed.
    pub events: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Compute { worker: usize, phase: Phase },
    CollectiveDone { slice: usize },
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    Fwd(usize),
    Bwd(usize),
}

/// Runs the simulation to completion.
///
/// # Panics
///
/// Panics on degenerate configuration or simulator deadlock.
///
/// # Examples
///
/// ```
/// use p3_allreduce::{run_allreduce, AllreduceConfig};
/// use p3_models::ModelSpec;
/// use p3_net::Bandwidth;
///
/// let mut cfg = AllreduceConfig::new(ModelSpec::resnet50(), 4, Bandwidth::from_gbps(10.0));
/// cfg.warmup_iters = 1;
/// cfg.measure_iters = 2;
/// let r = run_allreduce(&cfg);
/// assert!(r.throughput > 0.0);
/// ```
pub fn run_allreduce(cfg: &AllreduceConfig) -> AllreduceResult {
    assert!(cfg.machines > 0, "no machines");
    assert!(cfg.batch_per_worker > 0, "zero batch");
    assert!(cfg.measure_iters > 0, "nothing to measure");
    assert!(
        cfg.net_efficiency > 0.0 && cfg.net_efficiency <= 1.0,
        "bad efficiency {}",
        cfg.net_efficiency
    );

    // Slicing (server assignment is meaningless here; use one pseudo
    // server).
    let arrays: Vec<u64> = cfg.model.param_arrays().map(|a| a.params).collect();
    let plan: ShardPlan = match cfg.slice_params {
        Some(max) => p3_plan(&arrays, 1, max),
        None => ShardPlan::from_slices(
            arrays
                .iter()
                .enumerate()
                .map(|(a, &p)| (a, 0, p, ServerId(0)))
                .collect(),
            1,
        ),
    };
    let num_slices = plan.num_keys();

    // Consumption-order priorities (slice inherits array index).
    let prio: Vec<u32> = plan
        .slices()
        .iter()
        .map(|s| if cfg.priority { s.array as u32 } else { 0 })
        .collect();

    // Map slices to compute blocks.
    let mut block_of_array = Vec::new();
    for (b, blk) in cfg.model.blocks().iter().enumerate() {
        for _ in &blk.arrays {
            block_of_array.push(b);
        }
    }
    let blocks = cfg.model.blocks().len();
    let mut slices_of_block: Vec<Vec<usize>> = vec![Vec::new(); blocks];
    for (k, s) in plan.slices().iter().enumerate() {
        slices_of_block[block_of_array[s.array]].push(k);
    }

    let times: Vec<BlockTiming> = cfg.compute.block_times(&cfg.model, cfg.batch_per_worker);
    let link = cfg.bandwidth.bytes_per_sec() * cfg.net_efficiency;

    // State.
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut jitter: Vec<f64> = vec![1.0; cfg.machines];
    let mut iter: Vec<u64> = vec![0; cfg.machines];
    let mut completed: Vec<u64> = vec![0; cfg.machines];
    let mut waiting: Vec<Option<usize>> = vec![None; cfg.machines];
    let mut slice_version: Vec<u64> = vec![0; num_slices];
    // How many workers have produced gradients for (block) this round.
    let mut block_ready: Vec<u32> = vec![0; blocks];
    let mut pending: PrioQueue<usize> = PrioQueue::new();
    let mut collective_busy = false;
    let mut measure: Vec<(Option<SimTime>, Option<SimTime>)> = vec![(None, None); cfg.machines];
    let mut events: u64 = 0;

    let resample = |rng: &mut SplitMix64, frac: f64| -> f64 {
        if frac > 0.0 {
            (1.0 + rng.normal() * frac).clamp(0.5, 2.0)
        } else {
            1.0
        }
    };
    let frac = cfg.model.iteration_jitter();
    for (w, j) in jitter.iter_mut().enumerate() {
        *j = resample(&mut rng, frac);
        queue.schedule_at(
            SimTime::ZERO,
            Ev::Compute {
                worker: w,
                phase: Phase::Fwd(0),
            },
        );
        // Fwd(0) is scheduled as "start"; we instead schedule completion:
        // handled uniformly below by treating the event as completion of
        // the phase — so push the first completion at the fwd duration.
    }
    // Replace the bootstrap events with proper completions.
    queue.clear();
    for (w, &j) in jitter.iter().enumerate() {
        let d = times[0].fwd.mul_f64(j);
        queue.schedule_at(
            SimTime::ZERO + d,
            Ev::Compute {
                worker: w,
                phase: Phase::Fwd(0),
            },
        );
    }

    let target = cfg.warmup_iters + cfg.measure_iters;
    let fwd_ready =
        |w: usize, b: usize, slice_version: &[u64], iter: &[u64], sob: &[Vec<usize>]| {
            sob[b].iter().all(|&s| slice_version[s] >= iter[w])
        };

    while completed.iter().any(|&c| c < target) {
        let Some((now, ev)) = queue.pop() else {
            panic!("allreduce simulation deadlocked at {completed:?}");
        };
        events += 1;
        assert!(events < 200_000_000, "wedged allreduce simulation");
        match ev {
            Ev::Compute { worker, phase } => match phase {
                Phase::Fwd(b) => {
                    if b + 1 < blocks {
                        let nb = b + 1;
                        if fwd_ready(worker, nb, &slice_version, &iter, &slices_of_block) {
                            let d = times[nb].fwd.mul_f64(jitter[worker]);
                            queue.schedule_in(
                                d,
                                Ev::Compute {
                                    worker,
                                    phase: Phase::Fwd(nb),
                                },
                            );
                        } else {
                            waiting[worker] = Some(nb);
                        }
                    } else {
                        let d = times[blocks - 1].bwd.mul_f64(jitter[worker]);
                        queue.schedule_in(
                            d,
                            Ev::Compute {
                                worker,
                                phase: Phase::Bwd(blocks - 1),
                            },
                        );
                    }
                }
                Phase::Bwd(b) => {
                    // This worker's gradients for block b are ready.
                    block_ready[b] += 1;
                    if block_ready[b] == cfg.machines as u32 {
                        block_ready[b] = 0;
                        for &s in &slices_of_block[b] {
                            pending.push(prio[s], s);
                        }
                        if !collective_busy {
                            if let Some(s) = pending.pop() {
                                collective_busy = true;
                                let bytes = plan.slices()[s].params * BYTES_PER_PARAM;
                                let d = cfg.collective.duration(
                                    bytes,
                                    cfg.machines,
                                    link,
                                    cfg.per_step,
                                );
                                queue.schedule_in(d, Ev::CollectiveDone { slice: s });
                            }
                        }
                    }
                    if b > 0 {
                        let d = times[b - 1].bwd.mul_f64(jitter[worker]);
                        queue.schedule_in(
                            d,
                            Ev::Compute {
                                worker,
                                phase: Phase::Bwd(b - 1),
                            },
                        );
                    } else {
                        // Iteration boundary.
                        completed[worker] += 1;
                        iter[worker] += 1;
                        jitter[worker] = resample(&mut rng, frac);
                        if completed[worker] == cfg.warmup_iters {
                            measure[worker].0 = Some(now);
                        }
                        if completed[worker] == target && measure[worker].1.is_none() {
                            measure[worker].1 = Some(now);
                        }
                        if fwd_ready(worker, 0, &slice_version, &iter, &slices_of_block) {
                            let d = times[0].fwd.mul_f64(jitter[worker]);
                            queue.schedule_in(
                                d,
                                Ev::Compute {
                                    worker,
                                    phase: Phase::Fwd(0),
                                },
                            );
                        } else {
                            waiting[worker] = Some(0);
                        }
                    }
                }
            },
            Ev::CollectiveDone { slice } => {
                slice_version[slice] += 1;
                collective_busy = false;
                if let Some(next) = pending.pop() {
                    collective_busy = true;
                    let bytes = plan.slices()[next].params * BYTES_PER_PARAM;
                    let d = cfg
                        .collective
                        .duration(bytes, cfg.machines, link, cfg.per_step);
                    queue.schedule_in(d, Ev::CollectiveDone { slice: next });
                }
                // Wake any worker stalled on this slice's block.
                for w in 0..cfg.machines {
                    if let Some(b) = waiting[w] {
                        if fwd_ready(w, b, &slice_version, &iter, &slices_of_block) {
                            waiting[w] = None;
                            let d = times[b].fwd.mul_f64(jitter[w]);
                            queue.schedule_in(
                                d,
                                Ev::Compute {
                                    worker: w,
                                    phase: Phase::Fwd(b),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    let batch = cfg.batch_per_worker as f64;
    let mut total = 0.0;
    let mut iter_sum = 0.0;
    for (start, end) in &measure {
        let s = start.expect("measured");
        let e = end.expect("measured");
        let secs = (e - s).as_secs_f64();
        total += cfg.measure_iters as f64 * batch / secs;
        iter_sum += secs / cfg.measure_iters as f64;
    }
    AllreduceResult {
        throughput: total,
        unit: cfg.model.unit(),
        mean_iteration: SimDuration::from_secs_f64(iter_sum / cfg.machines as f64),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut cfg: AllreduceConfig) -> AllreduceResult {
        cfg.warmup_iters = 1;
        cfg.measure_iters = 3;
        run_allreduce(&cfg)
    }

    #[test]
    fn compute_bound_at_high_bandwidth() {
        let cfg = AllreduceConfig::new(ModelSpec::resnet50(), 4, Bandwidth::from_gbps(100.0));
        let r = quick(cfg);
        let plateau = 4.0 * ModelSpec::resnet50().reference_throughput();
        assert!(
            (r.throughput - plateau).abs() / plateau < 0.05,
            "{}",
            r.throughput
        );
    }

    #[test]
    fn sliced_priority_beats_layerwise_fifo_when_constrained() {
        // The §6 generalization claim: P3's two ideas transfer to
        // collectives.
        let bw = Bandwidth::from_gbps(4.0);
        let p3ish = quick(AllreduceConfig::new(ModelSpec::vgg19(), 4, bw));
        let horovod = quick(AllreduceConfig::layerwise_fifo(ModelSpec::vgg19(), 4, bw));
        assert!(
            p3ish.throughput > horovod.throughput,
            "sliced+priority {} vs layerwise FIFO {}",
            p3ish.throughput,
            horovod.throughput
        );
    }

    #[test]
    fn priority_alone_helps_with_slicing_fixed() {
        let bw = Bandwidth::from_gbps(3.0);
        let mut fifo = AllreduceConfig::new(ModelSpec::resnet50(), 4, bw);
        fifo.priority = false;
        let with = quick(AllreduceConfig::new(ModelSpec::resnet50(), 4, bw));
        let without = quick(fifo);
        assert!(
            with.throughput >= without.throughput,
            "priority {} vs fifo {}",
            with.throughput,
            without.throughput
        );
    }

    #[test]
    fn ring_beats_tree_for_heavy_models() {
        let bw = Bandwidth::from_gbps(4.0);
        let ring = quick(AllreduceConfig::new(ModelSpec::vgg19(), 8, bw));
        let mut tree_cfg = AllreduceConfig::new(ModelSpec::vgg19(), 8, bw);
        tree_cfg.collective = Collective::Tree;
        let tree = quick(tree_cfg);
        assert!(ring.throughput > tree.throughput);
    }

    #[test]
    fn deterministic() {
        let cfg = AllreduceConfig::new(ModelSpec::sockeye(), 4, Bandwidth::from_gbps(8.0));
        let a = quick(cfg.clone());
        let b = quick(cfg);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn scaling_up_machines_increases_aggregate() {
        let bw = Bandwidth::from_gbps(10.0);
        let t4 = quick(AllreduceConfig::new(ModelSpec::resnet50(), 4, bw));
        let t8 = quick(AllreduceConfig::new(ModelSpec::resnet50(), 8, bw));
        assert!(t8.throughput > t4.throughput * 1.4);
    }

    #[test]
    #[should_panic(expected = "nothing to measure")]
    fn zero_measure_rejected() {
        let mut cfg = AllreduceConfig::new(ModelSpec::resnet50(), 2, Bandwidth::from_gbps(1.0));
        cfg.measure_iters = 0;
        run_allreduce(&cfg);
    }
}
