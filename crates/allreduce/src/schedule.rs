//! Step-by-step transfer schedules for collective allreduce.
//!
//! [`Collective`](crate::Collective) answers "how long does one allreduce
//! take" with a closed-form cost model. [`CollectiveSchedule`] answers the
//! finer question an event-driven simulator needs: *which machine sends
//! how many bytes to which machine in step `s`*. The cluster engine's
//! collective backend replays these transfers through the fluid network,
//! so allreduce traffic competes for links, suffers injected faults, and
//! lands in the trace exactly like parameter-server traffic does.
//!
//! Schedules are pure data: no RNG, no clocks, no allocation beyond the
//! returned transfer lists — the same inputs always produce the same
//! steps, which the run-twice digest tests rely on.

/// Which stepwise collective algorithm a schedule describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Bandwidth-optimal ring: `2(N−1)` steps, each machine forwarding a
    /// `S/N` chunk to its successor.
    Ring,
    /// Recursive halving–doubling (Rabenseifner): `log₂N` reduce-scatter
    /// steps of shrinking pair exchanges, mirrored by `log₂N` allgather
    /// steps of growing ones. Requires a power-of-two machine count.
    HalvingDoubling,
}

/// One directed transfer of a collective step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sending machine.
    pub src: usize,
    /// Receiving machine.
    pub dst: usize,
    /// Payload bytes on the wire (before protocol headers).
    pub bytes: u64,
}

/// A deterministic per-step transfer plan for one allreduce over `N`
/// machines.
///
/// # Examples
///
/// ```
/// use p3_allreduce::{CollectiveSchedule, ScheduleKind};
///
/// let s = CollectiveSchedule::new(ScheduleKind::Ring, 4).unwrap();
/// assert_eq!(s.steps(), 6); // 2(N-1)
/// let step0 = s.transfers(0, 4_000_000);
/// assert_eq!(step0.len(), 4); // every machine forwards one chunk
/// assert_eq!(step0[0].bytes, 1_000_000); // S/N
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveSchedule {
    kind: ScheduleKind,
    machines: usize,
}

impl CollectiveSchedule {
    /// Builds a schedule, validating the machine count against the
    /// algorithm's requirements.
    ///
    /// # Errors
    ///
    /// Returns a description of the contradiction when `machines` is zero
    /// or when halving–doubling is asked to run on a non-power-of-two
    /// cluster.
    pub fn new(kind: ScheduleKind, machines: usize) -> Result<Self, String> {
        if machines == 0 {
            return Err("collective schedule over zero machines".into());
        }
        if kind == ScheduleKind::HalvingDoubling && !machines.is_power_of_two() {
            return Err(format!(
                "halving-doubling requires a power-of-two machine count, got {machines}"
            ));
        }
        Ok(CollectiveSchedule { kind, machines })
    }

    /// The algorithm this schedule implements.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Cluster size the schedule was built for.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of network steps. Zero for a single machine (an allreduce
    /// with yourself is a no-op).
    pub fn steps(&self) -> usize {
        if self.machines == 1 {
            return 0;
        }
        match self.kind {
            ScheduleKind::Ring => 2 * (self.machines - 1),
            ScheduleKind::HalvingDoubling => 2 * log2(self.machines),
        }
    }

    /// True if `step` belongs to the allgather (second) phase: its
    /// transfers carry aggregated parameters rather than partial
    /// gradients.
    pub fn is_allgather(&self, step: usize) -> bool {
        match self.kind {
            ScheduleKind::Ring => step >= self.machines - 1,
            ScheduleKind::HalvingDoubling => step >= log2(self.machines),
        }
    }

    /// The directed transfers of `step` for a gradient payload of
    /// `payload_bytes`, in ascending sender order (deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `step >= self.steps()`.
    pub fn transfers(&self, step: usize, payload_bytes: u64) -> Vec<Transfer> {
        assert!(step < self.steps(), "step {step} out of range");
        let n = self.machines;
        match self.kind {
            ScheduleKind::Ring => {
                // Every step — reduce-scatter and allgather alike — moves
                // one S/N chunk from each machine to its ring successor.
                let bytes = payload_bytes.div_ceil(n as u64);
                (0..n)
                    .map(|i| Transfer {
                        src: i,
                        dst: (i + 1) % n,
                        bytes,
                    })
                    .collect()
            }
            ScheduleKind::HalvingDoubling => {
                // Reduce-scatter step s exchanges with the partner at
                // distance 2^s, moving S/2^(s+1); the allgather phase
                // mirrors the sequence in reverse with the same sizes.
                let log = log2(n);
                let d = if step < log { step } else { 2 * log - 1 - step };
                let bytes = payload_bytes.div_ceil(1u64 << (d + 1));
                (0..n)
                    .map(|i| Transfer {
                        src: i,
                        dst: i ^ (1 << d),
                        bytes,
                    })
                    .collect()
            }
        }
    }

    /// Total bytes this schedule puts through the busiest NIC, matching
    /// the closed-form `busiest_link_bytes` of the analytic models.
    pub fn busiest_link_bytes(&self, payload_bytes: u64) -> u64 {
        (0..self.steps())
            .map(|s| {
                self.transfers(s, payload_bytes)
                    .first()
                    .map_or(0, |t| t.bytes)
            })
            .sum()
    }
}

fn log2(n: usize) -> usize {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_moves_everything_in_equal_chunks() {
        let s = CollectiveSchedule::new(ScheduleKind::Ring, 4).unwrap();
        assert_eq!(s.steps(), 6);
        for step in 0..s.steps() {
            let ts = s.transfers(step, 8_000_000);
            assert_eq!(ts.len(), 4);
            for t in &ts {
                assert_eq!(t.bytes, 2_000_000);
                assert_eq!(t.dst, (t.src + 1) % 4);
            }
        }
        assert!(!s.is_allgather(2));
        assert!(s.is_allgather(3));
    }

    #[test]
    fn ring_busiest_link_matches_analytic_bound() {
        // 2S(N-1)/N for S divisible by N.
        let s = CollectiveSchedule::new(ScheduleKind::Ring, 8).unwrap();
        assert_eq!(s.busiest_link_bytes(8_000_000), 2 * 8_000_000 * 7 / 8);
    }

    #[test]
    fn halving_doubling_halves_then_doubles() {
        let s = CollectiveSchedule::new(ScheduleKind::HalvingDoubling, 8).unwrap();
        assert_eq!(s.steps(), 6);
        let sizes: Vec<u64> = (0..6)
            .map(|st| s.transfers(st, 8_000_000)[0].bytes)
            .collect();
        assert_eq!(
            sizes,
            vec![4_000_000, 2_000_000, 1_000_000, 1_000_000, 2_000_000, 4_000_000]
        );
        // Step 0 pairs neighbours; the mirrored final step pairs them again.
        let first = s.transfers(0, 8);
        assert_eq!(first[0].dst, 1);
        assert_eq!(first[1].dst, 0);
        assert!(!s.is_allgather(2));
        assert!(s.is_allgather(3));
    }

    #[test]
    fn halving_doubling_partners_are_symmetric() {
        let s = CollectiveSchedule::new(ScheduleKind::HalvingDoubling, 4).unwrap();
        for step in 0..s.steps() {
            let ts = s.transfers(step, 1000);
            for t in &ts {
                // The partner's transfer points straight back.
                assert!(ts.iter().any(|u| u.src == t.dst && u.dst == t.src));
            }
        }
    }

    #[test]
    fn halving_doubling_total_matches_ring_total() {
        // Both are bandwidth-optimal: S(N-1)/N per phase through each NIC.
        let ring = CollectiveSchedule::new(ScheduleKind::Ring, 8).unwrap();
        let hd = CollectiveSchedule::new(ScheduleKind::HalvingDoubling, 8).unwrap();
        assert_eq!(
            ring.busiest_link_bytes(8_000_000),
            hd.busiest_link_bytes(8_000_000)
        );
    }

    #[test]
    fn single_machine_has_no_steps() {
        let s = CollectiveSchedule::new(ScheduleKind::Ring, 1).unwrap();
        assert_eq!(s.steps(), 0);
        assert_eq!(s.busiest_link_bytes(1_000_000), 0);
    }

    #[test]
    fn non_power_of_two_halving_doubling_is_rejected() {
        let err = CollectiveSchedule::new(ScheduleKind::HalvingDoubling, 6).unwrap_err();
        assert!(err.contains("power-of-two"), "{err}");
    }

    #[test]
    fn zero_machines_rejected() {
        assert!(CollectiveSchedule::new(ScheduleKind::Ring, 0).is_err());
    }

    #[test]
    fn chunk_sizes_round_up_so_no_bytes_are_lost() {
        let s = CollectiveSchedule::new(ScheduleKind::Ring, 3).unwrap();
        let ts = s.transfers(0, 10);
        assert_eq!(ts[0].bytes, 4); // ceil(10/3)
    }
}
