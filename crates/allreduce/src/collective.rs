//! Timing models for collective gradient aggregation.
//!
//! The paper's §2 notes that parameter servers are only one aggregation
//! mechanism — "many variations of MPI all-reduce" serve the same role —
//! and claims P3's design principles (slicing, priority propagation)
//! "are general enough to be applied to any gradient aggregation method".
//! This module supplies the standard cost models for ring and tree
//! allreduce so the claim can be tested quantitatively.

use p3_des::SimDuration;

/// Which collective algorithm aggregates a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Bandwidth-optimal ring: `2(N−1)` steps moving `S/N` bytes each —
    /// total bytes on the busiest link `2S(N−1)/N`.
    Ring,
    /// Binary-tree reduce + broadcast: `2·log₂N` rounds of the full
    /// payload — latency-friendly, bandwidth-suboptimal.
    Tree,
    /// Recursive halving–doubling (Rabenseifner): bandwidth-optimal like
    /// the ring (`2S(N−1)/N` per NIC) but only `2·log₂N` latency-bearing
    /// steps. Requires a power-of-two machine count.
    HalvingDoubling,
}

impl Collective {
    /// Wall time for one allreduce of `bytes` across `machines`, given the
    /// per-link effective bandwidth (bytes/sec) and per-step latency +
    /// message overhead.
    ///
    /// # Panics
    ///
    /// Panics if `machines == 0`, `bytes == 0`, `link_bytes_per_sec` is
    /// not positive, or halving–doubling runs on a non-power-of-two
    /// cluster.
    pub fn duration(
        &self,
        bytes: u64,
        machines: usize,
        link_bytes_per_sec: f64,
        per_step: SimDuration,
    ) -> SimDuration {
        assert!(machines > 0, "no machines");
        assert!(bytes > 0, "empty allreduce");
        assert!(
            link_bytes_per_sec > 0.0 && link_bytes_per_sec.is_finite(),
            "invalid link rate {link_bytes_per_sec}"
        );
        if machines == 1 {
            return SimDuration::ZERO;
        }
        let n = machines as f64;
        match self {
            Collective::Ring => {
                let steps = 2 * (machines - 1);
                let chunk = bytes as f64 / n;
                let transfer = SimDuration::from_secs_f64(chunk / link_bytes_per_sec);
                (transfer + per_step) * steps as u64
            }
            Collective::Tree => {
                let rounds = 2 * (machines as f64).log2().ceil() as u64;
                let transfer = SimDuration::from_secs_f64(bytes as f64 / link_bytes_per_sec);
                (transfer + per_step) * rounds
            }
            Collective::HalvingDoubling => {
                assert!(
                    machines.is_power_of_two(),
                    "halving-doubling requires a power-of-two machine count, got {machines}"
                );
                // Each phase moves S(N−1)/N through every NIC across
                // log₂N steps of halving (then doubling) exchanges.
                let log = machines.trailing_zeros() as u64;
                let wire = 2.0 * bytes as f64 * (n - 1.0) / n;
                SimDuration::from_secs_f64(wire / link_bytes_per_sec) + per_step * (2 * log)
            }
        }
    }

    /// Bytes crossing the busiest NIC for one allreduce — the quantity
    /// that determines bandwidth-boundedness.
    pub fn busiest_link_bytes(&self, bytes: u64, machines: usize) -> f64 {
        if machines <= 1 {
            return 0.0;
        }
        let n = machines as f64;
        match self {
            Collective::Ring | Collective::HalvingDoubling => 2.0 * bytes as f64 * (n - 1.0) / n,
            Collective::Tree => 2.0 * bytes as f64 * n.log2().ceil(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_time_matches_textbook_formula() {
        // 2(N-1) steps of S/N bytes: for S=4 MB, N=4, 100 MB/s, no latency:
        // 6 steps × 1 MB / 100 MB/s = 60 ms.
        let d = Collective::Ring.duration(4_000_000, 4, 100e6, SimDuration::ZERO);
        assert_eq!(d, SimDuration::from_millis(60));
    }

    #[test]
    fn tree_time_matches_formula() {
        // 2·log2(8)=6 rounds of the whole payload.
        let d = Collective::Tree.duration(1_000_000, 8, 100e6, SimDuration::ZERO);
        assert_eq!(d, SimDuration::from_millis(60));
    }

    #[test]
    fn ring_is_bandwidth_optimal_for_large_payloads() {
        let ring = Collective::Ring.duration(100_000_000, 8, 1e9, SimDuration::from_micros(50));
        let tree = Collective::Tree.duration(100_000_000, 8, 1e9, SimDuration::from_micros(50));
        assert!(ring < tree);
    }

    #[test]
    fn tree_wins_for_tiny_payloads_at_scale() {
        // Latency-dominated: ring pays 2(N-1) latencies, tree only 2·logN.
        let per_step = SimDuration::from_millis(1);
        let ring = Collective::Ring.duration(100, 32, 1e9, per_step);
        let tree = Collective::Tree.duration(100, 32, 1e9, per_step);
        assert!(tree < ring);
    }

    #[test]
    fn single_machine_is_free() {
        assert_eq!(
            Collective::Ring.duration(1_000, 1, 1e9, SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(Collective::Tree.busiest_link_bytes(1_000, 1), 0.0);
    }

    #[test]
    fn ring_step_count_scales_with_machines() {
        let d4 = Collective::Ring.duration(4_000_000, 4, 1e9, SimDuration::ZERO);
        let d8 = Collective::Ring.duration(4_000_000, 8, 1e9, SimDuration::ZERO);
        // Busiest-link bytes: 2S(N-1)/N grows with N, so time grows too.
        assert!(d8 > d4);
        let ratio = d8.as_secs_f64() / d4.as_secs_f64();
        assert!((ratio - (2.0 * 7.0 / 8.0) / (2.0 * 3.0 / 4.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty allreduce")]
    fn zero_bytes_rejected() {
        Collective::Ring.duration(0, 4, 1e9, SimDuration::ZERO);
    }

    #[test]
    fn halving_doubling_matches_ring_bandwidth_with_fewer_steps() {
        // Same 2S(N−1)/N wire bytes, so identical at zero latency…
        let hd = Collective::HalvingDoubling.duration(8_000_000, 8, 1e9, SimDuration::ZERO);
        let ring = Collective::Ring.duration(8_000_000, 8, 1e9, SimDuration::ZERO);
        assert_eq!(hd, ring);
        // …but 2·log₂N latency steps instead of 2(N−1): faster when
        // per-step costs dominate.
        let per_step = SimDuration::from_millis(1);
        let hd = Collective::HalvingDoubling.duration(100, 32, 1e9, per_step);
        let ring = Collective::Ring.duration(100, 32, 1e9, per_step);
        assert!(hd < ring);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn halving_doubling_rejects_odd_clusters() {
        Collective::HalvingDoubling.duration(1_000, 6, 1e9, SimDuration::ZERO);
    }
}
