//! # p3-allreduce — P3's principles on collective aggregation
//!
//! The paper closes §2 with a claim it never evaluates: *"we believe, P3
//! design principles (namely, parameter slicing and priority-based
//! propagation) are general enough to be applied to any gradient
//! aggregation methods."* This crate tests that claim quantitatively:
//! standard ring / tree allreduce cost models ([`Collective`]) under a
//! scheduler that aggregates gradients either layer-wise in generation
//! order (Horovod-without-fusion baseline) or as bounded slices in
//! consumption-order priority (P3 generalized).
//!
//! # Examples
//!
//! ```no_run
//! use p3_allreduce::{run_allreduce, AllreduceConfig};
//! use p3_models::ModelSpec;
//! use p3_net::Bandwidth;
//!
//! let bw = Bandwidth::from_gbps(5.0);
//! let p3ish = run_allreduce(&AllreduceConfig::new(ModelSpec::vgg19(), 4, bw));
//! let horovod = run_allreduce(&AllreduceConfig::layerwise_fifo(ModelSpec::vgg19(), 4, bw));
//! println!("sliced+priority allreduce: {:.2}x", p3ish.throughput / horovod.throughput);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collective;
mod schedule;
mod sim;

pub use collective::Collective;
pub use schedule::{CollectiveSchedule, ScheduleKind, Transfer};
pub use sim::{run_allreduce, AllreduceConfig, AllreduceResult, DEFAULT_COLLECTIVE_SLICE};
