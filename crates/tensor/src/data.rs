//! Synthetic classification datasets.
//!
//! The paper's accuracy experiments use ResNet-110 on CIFAR-10; we
//! substitute tractable synthetic tasks (DESIGN.md §2) whose difficulty is
//! tunable, because Figures 11 and 15 compare *algorithms* — exact
//! synchronous SGD (≡ P3) vs lossy DGC vs stale ASGD — and the ordering of
//! those algorithms is what the reproduction must preserve.

use crate::matrix::Matrix;
use p3_des::SplitMix64;

/// A labelled dataset split into train and validation parts.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training inputs, one sample per row.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Validation inputs.
    pub val_x: Matrix,
    /// Validation labels.
    pub val_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.train_x.cols()
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// The shard of training data belonging to worker `w` of `n` (round-
    /// robin by index, matching the paper's equal sharding).
    ///
    /// # Panics
    ///
    /// Panics if `w >= n` or `n == 0`.
    pub fn shard(&self, w: usize, n: usize) -> (Matrix, Vec<usize>) {
        assert!(n > 0 && w < n, "bad shard {w}/{n}");
        let rows: Vec<usize> = (w..self.train_len()).step_by(n).collect();
        let mut data = Vec::with_capacity(rows.len() * self.dim());
        let mut labels = Vec::with_capacity(rows.len());
        for &r in &rows {
            data.extend_from_slice(self.train_x.row(r));
            labels.push(self.train_y[r]);
        }
        (Matrix::from_vec(rows.len(), self.dim(), data), labels)
    }
}

/// Gaussian blobs: `classes` isotropic clusters in `dim` dimensions with
/// the given within-class standard deviation. Larger `noise` makes the
/// task harder (classes overlap).
///
/// # Panics
///
/// Panics on degenerate arguments.
///
/// # Examples
///
/// ```
/// use p3_tensor::gaussian_blobs;
///
/// let d = gaussian_blobs(4, 10, 1000, 200, 1.0, 42);
/// assert_eq!(d.train_len(), 1000);
/// assert_eq!(d.classes, 4);
/// ```
pub fn gaussian_blobs(
    classes: usize,
    dim: usize,
    train: usize,
    val: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    assert!(
        classes >= 2 && dim > 0 && train > 0 && val > 0,
        "degenerate dataset"
    );
    assert!(noise > 0.0, "non-positive noise");
    let mut rng = SplitMix64::new(seed);
    // Random unit-ish centers scaled so classes are separable at noise≈1.
    let centers: Vec<Vec<f64>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.normal() * 2.0).collect())
        .collect();
    let sample = |rng: &mut SplitMix64, n: usize| {
        let mut xs = Vec::with_capacity(n * dim);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            for &cd in centers[c].iter().take(dim) {
                xs.push((cd + rng.normal() * noise) as f32);
            }
            ys.push(c);
        }
        (Matrix::from_vec(n, dim, xs), ys)
    };
    let (train_x, train_y) = sample(&mut rng, train);
    let (val_x, val_y) = sample(&mut rng, val);
    Dataset {
        train_x,
        train_y,
        val_x,
        val_y,
        classes,
    }
}

/// Interleaved 2-D spirals lifted into `dim` dimensions via a random linear
/// map — a task that genuinely requires the hidden layer.
///
/// # Panics
///
/// Panics on degenerate arguments.
pub fn spirals(classes: usize, dim: usize, train: usize, val: usize, seed: u64) -> Dataset {
    assert!(
        classes >= 2 && dim >= 2 && train > 0 && val > 0,
        "degenerate dataset"
    );
    let mut rng = SplitMix64::new(seed);
    // Random projection from 2-D spiral space into dim dimensions.
    let proj: Vec<f64> = (0..2 * dim).map(|_| rng.normal() * 0.7).collect();
    let sample = |rng: &mut SplitMix64, n: usize| {
        let mut xs = Vec::with_capacity(n * dim);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let t = rng.next_f64() * 3.0 + 0.2; // radius parameter
            let angle = t * 2.5 + (c as f64) * std::f64::consts::TAU / classes as f64;
            let (px, py) = (t * angle.cos(), t * angle.sin());
            let (px, py) = (px + rng.normal() * 0.08, py + rng.normal() * 0.08);
            for d in 0..dim {
                xs.push((px * proj[2 * d] + py * proj[2 * d + 1]) as f32);
            }
            ys.push(c);
        }
        (Matrix::from_vec(n, dim, xs), ys)
    };
    let (train_x, train_y) = sample(&mut rng, train);
    let (val_x, val_y) = sample(&mut rng, val);
    Dataset {
        train_x,
        train_y,
        val_x,
        val_y,
        classes,
    }
}

/// A deterministic shuffled mini-batch schedule: epoch `e` yields batches
/// of `batch` indices drawn from a seeded permutation of `0..n`.
#[derive(Debug, Clone)]
pub struct BatchSchedule {
    n: usize,
    batch: usize,
    seed: u64,
}

impl BatchSchedule {
    /// Creates a schedule over `n` samples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `batch == 0`.
    pub fn new(n: usize, batch: usize, seed: u64) -> BatchSchedule {
        assert!(n > 0 && batch > 0, "degenerate schedule");
        BatchSchedule { n, batch, seed }
    }

    /// Number of batches per epoch (floor; a trailing partial batch is
    /// dropped, as most training loops do).
    pub fn batches_per_epoch(&self) -> usize {
        (self.n / self.batch).max(1)
    }

    /// The index batches of epoch `epoch`, in order.
    pub fn epoch(&self, epoch: u64) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.n).collect();
        let mut rng = SplitMix64::new(self.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for i in (1..order.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        order
            .chunks(self.batch)
            .filter(|c| c.len() == self.batch || self.n < self.batch)
            .map(|c| c.to_vec())
            .collect()
    }
}

/// Gathers rows of `x` (and labels) by index into a batch.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather(x: &Matrix, y: &[usize], idx: &[usize]) -> (Matrix, Vec<usize>) {
    let dim = x.cols();
    let mut data = Vec::with_capacity(idx.len() * dim);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        data.extend_from_slice(x.row(i));
        labels.push(y[i]);
    }
    (Matrix::from_vec(idx.len(), dim, data), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_balanced_classes() {
        let d = gaussian_blobs(5, 8, 500, 100, 1.0, 3);
        for c in 0..5 {
            let count = d.train_y.iter().filter(|&&y| y == c).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn blobs_are_learnable_at_low_noise() {
        use crate::mlp::Mlp;
        let d = gaussian_blobs(3, 6, 600, 150, 0.5, 7);
        let mut rng = SplitMix64::new(1);
        let mut mlp = Mlp::new(&[6, 32, 3], &mut rng);
        for _ in 0..100 {
            let (_, g) = mlp.loss_and_grads(&d.train_x, &d.train_y);
            mlp.apply_sgd(&g, 0.5);
        }
        assert!(mlp.accuracy(&d.val_x, &d.val_y) > 0.95);
    }

    #[test]
    fn spirals_need_the_hidden_layer() {
        use crate::mlp::Mlp;
        let d = spirals(3, 2, 900, 300, 11);
        let mut rng = SplitMix64::new(2);
        // Linear model (no hidden layer) cannot fit spirals…
        let mut linear = Mlp::new(&[2, 3], &mut rng);
        for _ in 0..300 {
            let (_, g) = linear.loss_and_grads(&d.train_x, &d.train_y);
            linear.apply_sgd(&g, 0.3);
        }
        let lin_acc = linear.accuracy(&d.val_x, &d.val_y);
        assert!(lin_acc < 0.8, "spirals too easy: linear acc {lin_acc}");
    }

    #[test]
    fn shards_partition_the_training_set() {
        let d = gaussian_blobs(2, 4, 100, 10, 1.0, 5);
        let mut total = 0;
        for w in 0..4 {
            let (x, y) = d.shard(w, 4);
            assert_eq!(x.rows(), y.len());
            total += y.len();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn schedule_is_a_permutation_and_epoch_dependent() {
        let s = BatchSchedule::new(10, 2, 9);
        let e0: Vec<usize> = s.epoch(0).concat();
        let e1: Vec<usize> = s.epoch(1).concat();
        let mut sorted = e0.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_ne!(e0, e1, "epochs should shuffle differently");
        assert_eq!(s.epoch(0), s.epoch(0), "same epoch is deterministic");
    }

    #[test]
    fn gather_picks_rows() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = vec![0, 1, 2];
        let (bx, by) = gather(&x, &y, &[2, 0]);
        assert_eq!(bx, Matrix::from_rows(&[&[3.0], &[1.0]]));
        assert_eq!(by, vec![2, 0]);
    }

    #[test]
    fn partial_batches_are_dropped() {
        let s = BatchSchedule::new(10, 3, 0);
        assert_eq!(s.batches_per_epoch(), 3);
        assert_eq!(s.epoch(0).len(), 3);
        assert!(s.epoch(0).iter().all(|b| b.len() == 3));
    }
}
