//! # p3-tensor — dense tensor-lite with exact backpropagation
//!
//! The real-math substrate for the paper's accuracy experiments (Figures 11
//! and 15): a minimal row-major [`Matrix`], an [`Mlp`] classifier with
//! exact gradients (finite-difference-checked in the test suite), and
//! deterministic synthetic datasets ([`gaussian_blobs`], [`spirals`]) that
//! substitute for CIFAR-10 at laptop scale (DESIGN.md §2).
//!
//! Everything is seeded and deterministic, so the accuracy curves in
//! `EXPERIMENTS.md` regenerate exactly.
//!
//! # Examples
//!
//! ```
//! use p3_des::SplitMix64;
//! use p3_tensor::{gaussian_blobs, Mlp};
//!
//! let data = gaussian_blobs(3, 6, 300, 60, 0.7, 1);
//! let mut rng = SplitMix64::new(2);
//! let mut mlp = Mlp::new(&[6, 16, 3], &mut rng);
//! for _ in 0..50 {
//!     let (_, grads) = mlp.loss_and_grads(&data.train_x, &data.train_y);
//!     mlp.apply_sgd(&grads, 0.5);
//! }
//! assert!(mlp.accuracy(&data.val_x, &data.val_y) > 0.8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod data;
mod matrix;
mod mlp;

pub use data::{gather, gaussian_blobs, spirals, BatchSchedule, Dataset};
pub use matrix::Matrix;
pub use mlp::{DenseGrad, DenseLayer, Mlp};
