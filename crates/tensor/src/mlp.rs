//! A multi-layer perceptron with exact backpropagation, structured as the
//! parameter server sees it: each dense layer contributes a weight array
//! and a bias array, in forward order.

use crate::matrix::Matrix;
use p3_des::SplitMix64;

/// One dense layer (weights `in × out`, bias `out`).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Weight matrix, `input_dim × output_dim`.
    pub w: Matrix,
    /// Bias vector, `output_dim`.
    pub b: Vec<f32>,
}

/// Gradients for one dense layer, same shapes as the layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGrad {
    /// Weight gradient.
    pub w: Matrix,
    /// Bias gradient.
    pub b: Vec<f32>,
}

/// An MLP classifier: dense layers with ReLU between them and a softmax
/// cross-entropy head.
///
/// # Examples
///
/// ```
/// use p3_des::SplitMix64;
/// use p3_tensor::{Matrix, Mlp};
///
/// let mut rng = SplitMix64::new(7);
/// let mut mlp = Mlp::new(&[4, 16, 3], &mut rng);
/// let x = Matrix::randn(8, 4, 1.0, &mut rng);
/// let y = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
/// let (loss, grads) = mlp.loss_and_grads(&x, &y);
/// assert!(loss > 0.0);
/// assert_eq!(grads.len(), 2);
/// mlp.apply_sgd(&grads, 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes (`[input, hidden…,
    /// classes]`), He-initialized.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two sizes or any zero size.
    pub fn new(sizes: &[usize], rng: &mut SplitMix64) -> Mlp {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        assert!(sizes.iter().all(|&s| s > 0), "zero-sized layer");
        let layers = sizes
            .windows(2)
            .map(|w| {
                let std = (2.0 / w[0] as f32).sqrt();
                DenseLayer {
                    w: Matrix::randn(w[0], w[1], std, rng),
                    b: vec![0.0; w[1]],
                }
            })
            .collect();
        Mlp { layers }
    }

    /// The layers, in forward order.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Class logits for a batch (`rows = samples`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for (i, l) in self.layers.iter().enumerate() {
            let mut z = a.matmul(&l.w);
            z.add_bias(&l.b);
            a = if i + 1 < self.layers.len() {
                z.relu()
            } else {
                z
            };
        }
        a
    }

    /// Mean cross-entropy loss and exact gradients for a labelled batch.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()` or any label is out of range.
    pub fn loss_and_grads(&self, x: &Matrix, labels: &[usize]) -> (f32, Vec<DenseGrad>) {
        let n = x.rows();
        assert_eq!(labels.len(), n, "labels/batch mismatch");
        let classes = self.layers.last().expect("nonempty").b.len();
        assert!(labels.iter().all(|&y| y < classes), "label out of range");

        // Forward pass, caching pre-activations and activations.
        let mut acts: Vec<Matrix> = vec![x.clone()];
        let mut pres: Vec<Matrix> = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            let mut z = acts.last().expect("nonempty").matmul(&l.w);
            z.add_bias(&l.b);
            pres.push(z.clone());
            let a = if i + 1 < self.layers.len() {
                z.relu()
            } else {
                z
            };
            acts.push(a);
        }

        // Softmax cross-entropy.
        let probs = acts.last().expect("nonempty").softmax();
        let mut loss = 0.0;
        for (r, &y) in labels.iter().enumerate() {
            loss -= probs.get(r, y).max(1e-12).ln();
        }
        loss /= n as f32;

        // dL/dlogits = (probs - onehot) / n.
        let mut delta = probs;
        for (r, &y) in labels.iter().enumerate() {
            *delta.get_mut(r, y) -= 1.0;
        }
        delta.scale(1.0 / n as f32);

        // Backward pass.
        let mut grads: Vec<DenseGrad> = Vec::with_capacity(self.layers.len());
        for i in (0..self.layers.len()).rev() {
            let input = &acts[i];
            let gw = input.t_matmul(&delta);
            let gb = delta.col_sums();
            if i > 0 {
                // Propagate through the previous ReLU.
                delta = delta
                    .matmul_t(&self.layers[i].w)
                    .relu_backward(&pres[i - 1]);
            }
            grads.push(DenseGrad { w: gw, b: gb });
        }
        grads.reverse();
        (loss, grads)
    }

    /// Applies plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `grads` shapes do not match the model.
    pub fn apply_sgd(&mut self, grads: &[DenseGrad], lr: f32) {
        assert_eq!(grads.len(), self.layers.len(), "gradient count mismatch");
        for (l, g) in self.layers.iter_mut().zip(grads) {
            assert_eq!(l.w.rows(), g.w.rows(), "weight shape mismatch");
            for (w, gw) in l.w.as_mut_slice().iter_mut().zip(g.w.as_slice()) {
                *w -= lr * gw;
            }
            for (b, gb) in l.b.iter_mut().zip(&g.b) {
                *b -= lr * gb;
            }
        }
    }

    /// Predicted class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("nonempty row")
            })
            .collect()
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let preds = self.predict(x);
        let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        correct as f64 / labels.len() as f64
    }

    /// Serializes parameters as parameter-server arrays: for each layer,
    /// the flattened weight then the bias, in forward order — the exact
    /// key layout `p3-train` registers with the `KvServer`.
    pub fn export_arrays(&self) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(self.layers.len() * 2);
        for l in &self.layers {
            out.push(l.w.as_slice().to_vec());
            out.push(l.b.clone());
        }
        out
    }

    /// Loads parameters from the array layout of
    /// [`Mlp::export_arrays`].
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn import_arrays(&mut self, arrays: &[Vec<f32>]) {
        assert_eq!(arrays.len(), self.layers.len() * 2, "array count mismatch");
        for (i, l) in self.layers.iter_mut().enumerate() {
            let w = &arrays[2 * i];
            let b = &arrays[2 * i + 1];
            assert_eq!(w.len(), l.w.as_slice().len(), "weight size mismatch");
            assert_eq!(b.len(), l.b.len(), "bias size mismatch");
            l.w.as_mut_slice().copy_from_slice(w);
            l.b.copy_from_slice(b);
        }
    }

    /// Gradients in the same array layout as [`Mlp::export_arrays`].
    pub fn grads_to_arrays(grads: &[DenseGrad]) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(grads.len() * 2);
        for g in grads {
            out.push(g.w.as_slice().to_vec());
            out.push(g.b.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(
        rng: &mut SplitMix64,
        n: usize,
        dim: usize,
        classes: usize,
    ) -> (Matrix, Vec<usize>) {
        let x = Matrix::randn(n, dim, 1.0, rng);
        let y = (0..n).map(|i| i % classes).collect();
        (x, y)
    }

    #[test]
    fn initial_loss_is_log_classes() {
        let mut rng = SplitMix64::new(1);
        let mlp = Mlp::new(&[5, 8, 4], &mut rng);
        let (x, y) = toy_batch(&mut rng, 64, 5, 4);
        let (loss, _) = mlp.loss_and_grads(&x, &y);
        // Untrained predictions: loss within a He-init constant of ln(4).
        assert!((loss - (4.0f32).ln()).abs() < 0.8, "loss {loss}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SplitMix64::new(5);
        let mut mlp = Mlp::new(&[3, 6, 3], &mut rng);
        let (x, y) = toy_batch(&mut rng, 10, 3, 3);
        let (_, grads) = mlp.loss_and_grads(&x, &y);
        let eps = 1e-3f32;
        // Check a sample of weight coordinates in both layers.
        #[allow(clippy::needless_range_loop)]
        for layer in 0..2 {
            for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 1)] {
                let orig = mlp.layers[layer].w.get(r, c);
                *mlp.layers[layer].w.get_mut(r, c) = orig + eps;
                let (lp, _) = mlp.loss_and_grads(&x, &y);
                *mlp.layers[layer].w.get_mut(r, c) = orig - eps;
                let (lm, _) = mlp.loss_and_grads(&x, &y);
                *mlp.layers[layer].w.get_mut(r, c) = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[layer].w.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-3,
                    "layer {layer} w[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
        // And a bias coordinate.
        let orig = mlp.layers[0].b[1];
        mlp.layers[0].b[1] = orig + eps;
        let (lp, _) = mlp.loss_and_grads(&x, &y);
        mlp.layers[0].b[1] = orig - eps;
        let (lm, _) = mlp.loss_and_grads(&x, &y);
        mlp.layers[0].b[1] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - grads[0].b[1]).abs() < 2e-3);
    }

    #[test]
    fn sgd_reduces_loss_on_fixed_batch() {
        let mut rng = SplitMix64::new(2);
        // Memorize 32 random points (labels independent of inputs): pure
        // capacity test of the optimizer and gradients.
        let mut mlp = Mlp::new(&[4, 48, 3], &mut rng);
        let (x, y) = toy_batch(&mut rng, 32, 4, 3);
        let (initial, _) = mlp.loss_and_grads(&x, &y);
        for _ in 0..600 {
            let (_, grads) = mlp.loss_and_grads(&x, &y);
            mlp.apply_sgd(&grads, 0.5);
        }
        let (final_loss, _) = mlp.loss_and_grads(&x, &y);
        assert!(
            final_loss < initial * 0.25,
            "loss barely moved: {initial} -> {final_loss}"
        );
        assert!(mlp.accuracy(&x, &y) > 0.85);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut rng = SplitMix64::new(11);
        let mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let arrays = mlp.export_arrays();
        assert_eq!(arrays.len(), 4); // 2 layers × (w, b)
        let mut other = Mlp::new(&[3, 5, 2], &mut rng);
        assert_ne!(other, mlp);
        other.import_arrays(&arrays);
        assert_eq!(other, mlp);
    }

    #[test]
    fn param_count() {
        let mut rng = SplitMix64::new(0);
        let mlp = Mlp::new(&[10, 20, 5], &mut rng);
        assert_eq!(mlp.num_params(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn predict_shapes() {
        let mut rng = SplitMix64::new(3);
        let mlp = Mlp::new(&[4, 8, 3], &mut rng);
        let x = Matrix::randn(6, 4, 1.0, &mut rng);
        let p = mlp.predict(&x);
        assert_eq!(p.len(), 6);
        assert!(p.iter().all(|&c| c < 3));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_rejected() {
        let mut rng = SplitMix64::new(3);
        let mlp = Mlp::new(&[2, 2], &mut rng);
        let x = Matrix::zeros(1, 2);
        mlp.loss_and_grads(&x, &[5]);
    }
}
