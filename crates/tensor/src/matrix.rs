//! A minimal dense f32 matrix — just enough linear algebra for exact
//! backpropagation through small classifiers.
//!
//! The accuracy experiments (Fig. 11, Fig. 15) compare *algorithms*
//! (synchronous SGD vs lossy compression vs stale asynchrony), so what
//! matters is exact, reproducible math, not BLAS throughput.

use p3_des::SplitMix64;
use std::fmt;

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use p3_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "degenerate matrix {rows}x{cols}");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn eye(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            *m.get_mut(i, i) = 1.0;
        }
        m
    }

    /// A matrix with entries drawn from `N(0, std²)`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut SplitMix64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal() as f32 * std;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty() && !rows[0].is_empty(), "empty matrix");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        assert!(rows > 0 && cols > 0, "degenerate matrix {rows}x{cols}");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major data, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(k, i);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                for (a, b) in self.row(i).iter().zip(other.row(j)) {
                    acc += a * b;
                }
                *out.get_mut(i, j) = acc;
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                *out.get_mut(j, i) = self.get(i, j);
            }
        }
        out
    }

    /// Adds a bias row-vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = v.max(0.0);
        }
        out
    }

    /// Element-wise product with the ReLU mask of `pre` (backprop through
    /// ReLU): `out[i] = self[i] * (pre[i] > 0)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn relu_backward(&self, pre: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (pre.rows, pre.cols),
            "shape mismatch"
        );
        let mut out = self.clone();
        for (v, &p) in out.data.iter_mut().zip(&pre.data) {
            if p <= 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_variants_agree() {
        let mut rng = SplitMix64::new(3);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 1.0, &mut rng);
        let c = Matrix::randn(6, 3, 1.0, &mut rng);
        // aᵀ·b via t_matmul equals explicit transpose.
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        // a·cᵀ via matmul_t equals explicit transpose.
        let direct = a.matmul_t(&c);
        let explicit = a.matmul(&c.transpose());
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = SplitMix64::new(9);
        let a = Matrix::randn(5, 7, 3.0, &mut rng);
        let s = a.softmax();
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(r).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Matrix::from_rows(&[&[1000.0, 1001.0, 999.0]]);
        let s = a.softmax();
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        let b = Matrix::from_rows(&[&[0.0, 1.0, -1.0]]);
        for (x, y) in s.as_slice().iter().zip(b.softmax().as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn relu_and_backward_mask() {
        let pre = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let act = pre.relu();
        assert_eq!(act, Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
        let grad = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        let masked = grad.relu_backward(&pre);
        assert_eq!(masked, Matrix::from_rows(&[&[0.0, 5.0], &[0.0, 0.0]]));
    }

    #[test]
    fn bias_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_bias(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let mut rng = SplitMix64::new(1);
        let a = Matrix::randn(3, 3, 1.0, &mut rng);
        assert_eq!(a.matmul(&Matrix::eye(3)), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = SplitMix64::new(42);
        let mut r2 = SplitMix64::new(42);
        assert_eq!(
            Matrix::randn(4, 4, 0.5, &mut r1),
            Matrix::randn(4, 4, 0.5, &mut r2)
        );
    }
}
