//! Synchronous data-parallel training over the real parameter server.
//!
//! Every worker holds a replica MLP and a shard of the training data; each
//! round the workers compute exact gradients on their minibatches,
//! optionally compress them, and push them to a [`KvServer`] which averages
//! and applies the optimizer — precisely the protocol the cluster simulator
//! times, here executed with real numbers so Figure 11's accuracy
//! comparison is an actual measurement.

use crate::config::{EpochRecord, SyncMode, TrainConfig, TrainRun};
use p3_compress::{Dgc, GradDrop, OneBitSgd, Qsgd, TernGrad};
use p3_des::SplitMix64;
use p3_pserver::{Key, KvServer, OptimizerKind, WorkerId};
use p3_tensor::{gather, BatchSchedule, Dataset, Matrix, Mlp};

/// Per-worker, per-array gradient transformation (compression).
enum Transform {
    Identity,
    Dgc(Vec<Dgc>),
    Drop(Vec<GradDrop>),
    Qsgd(Qsgd),
    Tern(TernGrad),
    OneBit(Vec<OneBitSgd>),
}

impl Transform {
    fn new(mode: SyncMode, array_lens: &[usize], seed: u64) -> Transform {
        match mode {
            SyncMode::FullSync => Transform::Identity,
            SyncMode::Dgc {
                final_sparsity,
                warmup_epochs,
            } => Transform::Dgc(
                array_lens
                    .iter()
                    .map(|&l| Dgc::new(l, 0.9, final_sparsity, warmup_epochs))
                    .collect(),
            ),
            SyncMode::GradDrop { ratio } => Transform::Drop(
                array_lens
                    .iter()
                    .map(|&l| GradDrop::new(l, ratio))
                    .collect(),
            ),
            SyncMode::Qsgd { levels } => Transform::Qsgd(Qsgd::new(levels, seed)),
            SyncMode::TernGrad => Transform::Tern(TernGrad::new(seed)),
            SyncMode::OneBit => {
                Transform::OneBit(array_lens.iter().map(|&l| OneBitSgd::new(l)).collect())
            }
            SyncMode::Async { .. } => {
                unreachable!("async mode uses the asgd module, not the sync loop")
            }
        }
    }

    fn set_epoch(&mut self, epoch: u32) {
        if let Transform::Dgc(states) = self {
            for s in states {
                s.set_epoch(epoch);
            }
        }
    }

    fn apply(&mut self, array: usize, grad: &[f32]) -> Vec<f32> {
        match self {
            Transform::Identity => grad.to_vec(),
            Transform::Dgc(states) => states[array].step(grad).to_dense(),
            Transform::Drop(states) => states[array].step(grad).to_dense(),
            Transform::Qsgd(q) => q.quantize(grad),
            Transform::Tern(t) => t.quantize(grad),
            Transform::OneBit(states) => states[array].quantize(grad),
        }
    }
}

/// Runs synchronous data-parallel training of an MLP on `data` under the
/// given gradient treatment, returning per-epoch validation accuracy.
///
/// All modes share identical initialization, data order and server
/// optimizer for a given config, so accuracy differences are attributable
/// to the gradient treatment alone.
///
/// # Panics
///
/// Panics if the config is degenerate or `mode` is [`SyncMode::Async`]
/// (use [`crate::train_async`]).
///
/// # Examples
///
/// ```
/// use p3_tensor::gaussian_blobs;
/// use p3_train::{train_sync, SyncMode, TrainConfig};
///
/// let data = gaussian_blobs(3, 8, 480, 120, 0.8, 5);
/// let mut cfg = TrainConfig::new(3);
/// cfg.hidden = vec![16];
/// let run = train_sync(&data, &cfg, SyncMode::FullSync);
/// assert_eq!(run.records.len(), 3);
/// assert!(run.final_accuracy > 0.5);
/// ```
pub fn train_sync(data: &Dataset, cfg: &TrainConfig, mode: SyncMode) -> TrainRun {
    cfg.validate();
    assert!(
        !matches!(mode, SyncMode::Async { .. }),
        "async mode uses train_async"
    );

    // Architecture: input → hidden… → classes.
    let mut sizes = vec![data.dim()];
    sizes.extend_from_slice(&cfg.hidden);
    sizes.push(data.classes);
    let mut init_rng = SplitMix64::new(cfg.seed);
    let reference = Mlp::new(&sizes, &mut init_rng);
    let init_arrays = reference.export_arrays();
    let array_lens: Vec<usize> = init_arrays.iter().map(Vec::len).collect();

    // Server: DGC applies worker-side momentum correction, so its server
    // runs plain SGD; everything else uses server momentum (MXNet default).
    let server_opt = match mode {
        SyncMode::Dgc { .. } => OptimizerKind::Sgd { lr: cfg.lr },
        _ => OptimizerKind::Momentum {
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
        },
    };
    let mut server = KvServer::new(cfg.workers, server_opt);
    for (k, a) in init_arrays.iter().enumerate() {
        server.init(Key(k as u64), a.clone());
    }

    // Workers: shard, schedule, replica, transform.
    struct Worker {
        x: Matrix,
        y: Vec<usize>,
        schedule: BatchSchedule,
        model: Mlp,
        transform: Transform,
    }
    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|w| {
            let (x, y) = data.shard(w, cfg.workers);
            let schedule =
                BatchSchedule::new(y.len(), cfg.batch_per_worker, cfg.seed ^ (w as u64 + 1));
            let mut model = reference.clone();
            model.import_arrays(&init_arrays);
            Worker {
                x,
                y,
                schedule,
                model,
                transform: Transform::new(mode, &array_lens, cfg.seed ^ (0xABCD + w as u64)),
            }
        })
        .collect();

    let rounds_per_epoch = workers
        .iter()
        .map(|w| w.schedule.batches_per_epoch())
        .min()
        .expect("workers");
    let mut records = Vec::with_capacity(cfg.epochs as usize);

    for epoch in 0..cfg.epochs {
        for w in &mut workers {
            w.transform.set_epoch(epoch);
        }
        if let Some(decay) = cfg.lr_decay {
            server.set_learning_rate(decay.lr_at(cfg.lr, epoch));
        }
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0u64;
        for round in 0..rounds_per_epoch {
            // Each worker: local batch → exact grads → transform → push.
            for (wid, w) in workers.iter_mut().enumerate() {
                let batch_idx = &w.schedule.epoch(epoch as u64)[round];
                let (bx, by) = gather(&w.x, &w.y, batch_idx);
                let (loss, grads) = w.model.loss_and_grads(&bx, &by);
                loss_sum += loss as f64;
                loss_n += 1;
                let arrays = Mlp::grads_to_arrays(&grads);
                for (k, g) in arrays.iter().enumerate() {
                    let sent = w.transform.apply(k, g);
                    server.push(WorkerId(wid), Key(k as u64), &sent);
                }
            }
            // Pull: all keys updated this round (synchronous barrier).
            let fresh: Vec<Vec<f32>> = (0..array_lens.len())
                .map(|k| server.pull(Key(k as u64)).0.to_vec())
                .collect();
            for w in &mut workers {
                w.model.import_arrays(&fresh);
            }
        }
        let val_accuracy = workers[0].model.accuracy(&data.val_x, &data.val_y);
        records.push(EpochRecord {
            epoch,
            train_loss: loss_sum / loss_n.max(1) as f64,
            val_accuracy,
        });
    }

    let final_accuracy = records.last().expect("at least one epoch").val_accuracy;
    TrainRun {
        mode_name: mode.name().to_string(),
        records,
        final_accuracy,
        iterations_per_epoch: rounds_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_tensor::gaussian_blobs;

    fn quick_cfg(epochs: u32) -> TrainConfig {
        let mut cfg = TrainConfig::new(epochs);
        cfg.hidden = vec![24];
        cfg.batch_per_worker = 16;
        cfg
    }

    #[test]
    fn full_sync_learns_blobs() {
        let data = gaussian_blobs(4, 8, 800, 200, 0.9, 3);
        let run = train_sync(&data, &quick_cfg(8), SyncMode::FullSync);
        assert!(run.final_accuracy > 0.9, "accuracy {}", run.final_accuracy);
        // Loss decreases over training.
        assert!(run.records.last().unwrap().train_loss < run.records[0].train_loss);
    }

    #[test]
    fn full_sync_is_deterministic() {
        let data = gaussian_blobs(3, 6, 300, 60, 1.0, 9);
        let a = train_sync(&data, &quick_cfg(2), SyncMode::FullSync);
        let b = train_sync(&data, &quick_cfg(2), SyncMode::FullSync);
        assert_eq!(a, b);
    }

    #[test]
    fn full_sync_matches_single_worker_large_batch() {
        // K workers with batch B ≡ one worker with batch K·B when shards
        // and shuffling align — here we check the weaker, guaranteed
        // property: the PS average equals the mean of worker gradients,
        // i.e. training with 1 worker and the same total data converges to
        // similar accuracy.
        let data = gaussian_blobs(3, 6, 600, 150, 0.8, 4);
        let multi = train_sync(&data, &quick_cfg(6), SyncMode::FullSync);
        let mut solo_cfg = quick_cfg(6);
        solo_cfg.workers = 1;
        solo_cfg.batch_per_worker = 64;
        let solo = train_sync(&data, &solo_cfg, SyncMode::FullSync);
        assert!((multi.final_accuracy - solo.final_accuracy).abs() < 0.1);
    }

    #[test]
    fn dgc_trains_but_full_sync_is_at_least_as_good() {
        let data = gaussian_blobs(4, 10, 1200, 300, 1.1, 8);
        let cfg = quick_cfg(10);
        let full = train_sync(&data, &cfg, SyncMode::FullSync);
        let dgc = train_sync(
            &data,
            &cfg,
            SyncMode::Dgc {
                final_sparsity: 0.999,
                warmup_epochs: 4,
            },
        );
        assert!(
            dgc.final_accuracy > 0.5,
            "DGC failed to train: {}",
            dgc.final_accuracy
        );
        assert!(
            full.final_accuracy >= dgc.final_accuracy - 0.02,
            "full sync {} should not lose to DGC {}",
            full.final_accuracy,
            dgc.final_accuracy
        );
    }

    #[test]
    fn quantizers_train() {
        let data = gaussian_blobs(3, 6, 600, 150, 0.8, 2);
        let cfg = quick_cfg(6);
        for mode in [
            SyncMode::Qsgd { levels: 4 },
            SyncMode::TernGrad,
            SyncMode::OneBit,
        ] {
            let run = train_sync(&data, &cfg, mode);
            assert!(
                run.final_accuracy > 0.7,
                "{} failed: {}",
                mode.name(),
                run.final_accuracy
            );
        }
    }

    #[test]
    #[should_panic(expected = "uses train_async")]
    fn async_mode_rejected() {
        let data = gaussian_blobs(2, 4, 100, 20, 1.0, 1);
        train_sync(&data, &quick_cfg(1), SyncMode::Async { staleness: 3 });
    }
}
