//! Parallel hyper-parameter sweeps.
//!
//! Figure 11 trains P3 and DGC under **five hyper-parameter settings** and
//! plots the band between the worst and best validation accuracy. Each
//! setting is an independent deterministic run, so we fan the settings out
//! across OS threads; results are ordered by input, never by completion,
//! keeping the sweep reproducible.

use crate::asgd::train_async;
use crate::config::{SyncMode, TrainConfig, TrainRun};
use crate::sync::train_sync;
use p3_tensor::Dataset;
use std::sync::Mutex;

/// Runs one training job per `(config, mode)` pair, in parallel, returning
/// results in input order.
///
/// # Panics
///
/// Propagates panics from worker threads (a failed run is a bug, not a
/// result).
///
/// # Examples
///
/// ```
/// use p3_tensor::gaussian_blobs;
/// use p3_train::{sweep, SyncMode, TrainConfig};
///
/// let data = gaussian_blobs(3, 6, 300, 60, 0.8, 5);
/// let mut cfg = TrainConfig::new(2);
/// cfg.hidden = vec![8];
/// let jobs = vec![(cfg.clone(), SyncMode::FullSync), (cfg, SyncMode::TernGrad)];
/// let runs = sweep(&data, &jobs);
/// assert_eq!(runs.len(), 2);
/// assert_eq!(runs[0].mode_name, "P3/FullSync");
/// ```
pub fn sweep(data: &Dataset, jobs: &[(TrainConfig, SyncMode)]) -> Vec<TrainRun> {
    let results: Mutex<Vec<Option<TrainRun>>> = Mutex::new(vec![None; jobs.len()]);
    std::thread::scope(|scope| {
        for (i, (cfg, mode)) in jobs.iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let run = match mode {
                    SyncMode::Async { staleness } => train_async(data, cfg, *staleness),
                    other => train_sync(data, cfg, *other),
                };
                results.lock().expect("sweep mutex poisoned")[i] = Some(run);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every job produces a run"))
        .collect()
}

/// The per-epoch min/max band across runs — the shaded region of
/// Figure 11.
///
/// # Panics
///
/// Panics if `runs` is empty or epochs are ragged.
pub fn accuracy_band(runs: &[TrainRun]) -> Vec<(u32, f64, f64)> {
    assert!(!runs.is_empty(), "no runs");
    let epochs = runs[0].records.len();
    for r in runs {
        assert_eq!(r.records.len(), epochs, "ragged epoch counts");
    }
    (0..epochs)
        .map(|e| {
            let accs: Vec<f64> = runs.iter().map(|r| r.records[e].val_accuracy).collect();
            let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = accs.iter().copied().fold(0.0, f64::max);
            (runs[0].records[e].epoch, min, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3_tensor::gaussian_blobs;

    #[test]
    fn sweep_matches_serial_runs() {
        let data = gaussian_blobs(3, 6, 300, 60, 0.9, 3);
        let mut cfg = TrainConfig::new(2);
        cfg.hidden = vec![12];
        let jobs = vec![
            (cfg.clone(), SyncMode::FullSync),
            (cfg.clone(), SyncMode::TernGrad),
            (cfg.clone(), SyncMode::Async { staleness: 3 }),
        ];
        let parallel = sweep(&data, &jobs);
        let serial: Vec<TrainRun> = vec![
            train_sync(&data, &cfg, SyncMode::FullSync),
            train_sync(&data, &cfg, SyncMode::TernGrad),
            train_async(&data, &cfg, 3),
        ];
        assert_eq!(parallel, serial, "thread fan-out changed results");
    }

    #[test]
    fn band_covers_all_runs() {
        let data = gaussian_blobs(2, 4, 200, 50, 1.0, 1);
        let mut jobs = Vec::new();
        for seed in 0..3 {
            let mut cfg = TrainConfig::new(3);
            cfg.hidden = vec![8];
            cfg.seed = seed;
            jobs.push((cfg, SyncMode::FullSync));
        }
        let runs = sweep(&data, &jobs);
        let band = accuracy_band(&runs);
        assert_eq!(band.len(), 3);
        for (e, lo, hi) in band {
            assert!(lo <= hi);
            for r in &runs {
                let a = r.records[e as usize].val_accuracy;
                assert!(a >= lo - 1e-12 && a <= hi + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no runs")]
    fn empty_band_rejected() {
        accuracy_band(&[]);
    }
}
