//! # p3-train — real data-parallel training
//!
//! The accuracy half of the reproduction (Figures 11 and 15): actual
//! multi-worker training of MLP classifiers over the real
//! [`KvServer`](p3_pserver::KvServer), with the gradient treatment as the
//! only variable —
//!
//! * [`SyncMode::FullSync`] — synchronous SGD on full gradients; P3's
//!   convergence is *identical* to this by construction (it never alters
//!   values, only transmission order);
//! * [`SyncMode::Dgc`] and friends — the lossy compression baselines from
//!   `p3-compress`;
//! * [`train_async`] — barrier-free ASGD with delayed gradients.
//!
//! Every run is deterministic given its seed; [`sweep`] fans independent
//! hyper-parameter settings across threads without changing any result.
//!
//! # Examples
//!
//! ```
//! use p3_tensor::gaussian_blobs;
//! use p3_train::{train_sync, SyncMode, TrainConfig};
//!
//! let data = gaussian_blobs(4, 8, 400, 100, 0.9, 7);
//! let mut cfg = TrainConfig::new(4);
//! cfg.hidden = vec![24];
//! let full = train_sync(&data, &cfg, SyncMode::FullSync);
//! let dgc = train_sync(&data, &cfg,
//!     SyncMode::Dgc { final_sparsity: 0.999, warmup_epochs: 2 });
//! // P3 transmits full gradients: it cannot do worse than DGC by more
//! // than noise (and in the paper is consistently better).
//! assert!(full.final_accuracy + 0.05 >= dgc.final_accuracy);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asgd;
mod config;
mod localsgd;
mod parallel;
mod sync;

pub use asgd::train_async;
pub use config::{EpochRecord, LrDecay, SyncMode, TrainConfig, TrainRun};
pub use localsgd::train_local_sgd;
pub use parallel::{accuracy_band, sweep};
pub use sync::train_sync;
