//! Local SGD (periodic parameter averaging): workers train independently
//! for `period` steps, then average parameters. The classic
//! communication-reduction baseline that trades gradient freshness for
//! fewer synchronization rounds — another point on the spectrum the paper
//! positions P3 against (P3 keeps exact synchrony; Local SGD relaxes it).

use crate::config::{EpochRecord, TrainConfig, TrainRun};
use p3_des::SplitMix64;
use p3_pserver::OptimizerKind;
use p3_tensor::{gather, BatchSchedule, Dataset, Matrix, Mlp};

/// Runs Local SGD: each worker applies momentum SGD locally and parameters
/// are averaged across workers every `period` steps.
///
/// # Panics
///
/// Panics if the config is degenerate or `period == 0`.
///
/// # Examples
///
/// ```
/// use p3_tensor::gaussian_blobs;
/// use p3_train::{train_local_sgd, TrainConfig};
///
/// let data = gaussian_blobs(3, 8, 480, 120, 0.8, 5);
/// let mut cfg = TrainConfig::new(3);
/// cfg.hidden = vec![16];
/// let run = train_local_sgd(&data, &cfg, 4);
/// assert_eq!(run.records.len(), 3);
/// ```
pub fn train_local_sgd(data: &Dataset, cfg: &TrainConfig, period: u32) -> TrainRun {
    cfg.validate();
    assert!(period > 0, "zero averaging period");

    let mut sizes = vec![data.dim()];
    sizes.extend_from_slice(&cfg.hidden);
    sizes.push(data.classes);
    let mut init_rng = SplitMix64::new(cfg.seed);
    let reference = Mlp::new(&sizes, &mut init_rng);
    let opt_kind = OptimizerKind::Momentum {
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
    };

    struct Worker {
        x: Matrix,
        y: Vec<usize>,
        schedule: BatchSchedule,
        model: Mlp,
        opts: Vec<p3_pserver::Optimizer>,
    }
    let array_lens: Vec<usize> = reference.export_arrays().iter().map(Vec::len).collect();
    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|w| {
            let (x, y) = data.shard(w, cfg.workers);
            let schedule =
                BatchSchedule::new(y.len(), cfg.batch_per_worker, cfg.seed ^ (w as u64 + 1));
            Worker {
                x,
                y,
                schedule,
                model: reference.clone(),
                opts: array_lens.iter().map(|&l| opt_kind.build(l)).collect(),
            }
        })
        .collect();

    let rounds_per_epoch = workers
        .iter()
        .map(|w| w.schedule.batches_per_epoch())
        .min()
        .expect("workers");
    let mut records = Vec::with_capacity(cfg.epochs as usize);
    let mut step: u32 = 0;

    for epoch in 0..cfg.epochs {
        if let Some(decay) = cfg.lr_decay {
            let lr = decay.lr_at(cfg.lr, epoch);
            for w in &mut workers {
                for o in &mut w.opts {
                    o.set_lr(lr);
                }
            }
        }
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0u64;
        for round in 0..rounds_per_epoch {
            for w in workers.iter_mut() {
                let idx = &w.schedule.epoch(epoch as u64)[round];
                let (bx, by) = gather(&w.x, &w.y, idx);
                let (loss, grads) = w.model.loss_and_grads(&bx, &by);
                loss_sum += loss as f64;
                loss_n += 1;
                // Local momentum update.
                let mut arrays = w.model.export_arrays();
                let garrays = Mlp::grads_to_arrays(&grads);
                for ((a, g), o) in arrays.iter_mut().zip(&garrays).zip(&mut w.opts) {
                    o.step(a, g);
                }
                w.model.import_arrays(&arrays);
            }
            step += 1;
            if step.is_multiple_of(period) {
                let mut models: Vec<&mut Mlp> = workers.iter_mut().map(|w| &mut w.model).collect();
                average_parameters(&mut models, &array_lens);
            }
        }
        let val_accuracy = workers[0].model.accuracy(&data.val_x, &data.val_y);
        records.push(EpochRecord {
            epoch,
            train_loss: loss_sum / loss_n.max(1) as f64,
            val_accuracy,
        });
    }

    // Workers may be mid-period at the end; report the averaged model.
    let mut models: Vec<&mut Mlp> = workers.iter_mut().map(|w| &mut w.model).collect();
    average_parameters(&mut models, &array_lens);
    let final_accuracy = workers[0].model.accuracy(&data.val_x, &data.val_y);
    TrainRun {
        mode_name: format!("LocalSGD(H={period})"),
        records,
        final_accuracy,
        iterations_per_epoch: rounds_per_epoch,
    }
}

/// Replaces every model's parameters with the element-wise mean.
fn average_parameters(models: &mut [&mut Mlp], array_lens: &[usize]) {
    let n = models.len() as f32;
    let mut mean: Vec<Vec<f32>> = array_lens.iter().map(|&l| vec![0.0; l]).collect();
    for m in models.iter() {
        for (acc, a) in mean.iter_mut().zip(m.export_arrays()) {
            for (x, v) in acc.iter_mut().zip(&a) {
                *x += v / n;
            }
        }
    }
    for m in models.iter_mut() {
        m.import_arrays(&mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::train_sync;
    use crate::SyncMode;
    use p3_tensor::gaussian_blobs;

    fn cfg(epochs: u32) -> TrainConfig {
        let mut c = TrainConfig::new(epochs);
        c.hidden = vec![24];
        c.batch_per_worker = 16;
        c
    }

    #[test]
    fn local_sgd_trains() {
        let data = gaussian_blobs(3, 6, 600, 150, 0.8, 6);
        let run = train_local_sgd(&data, &cfg(6), 4);
        assert!(
            run.final_accuracy > 0.85,
            "LocalSGD: {}",
            run.final_accuracy
        );
        assert!(run.mode_name.contains("H=4"));
    }

    #[test]
    fn period_one_close_to_full_sync() {
        // Averaging every step ≈ synchronous training (not identical:
        // parameter averaging with local momentum vs gradient averaging
        // with server momentum), but accuracy should be comparable.
        let data = gaussian_blobs(3, 6, 600, 150, 0.8, 4);
        let c = cfg(6);
        let local = train_local_sgd(&data, &c, 1);
        let sync = train_sync(&data, &c, SyncMode::FullSync);
        assert!(
            (local.final_accuracy - sync.final_accuracy).abs() < 0.1,
            "H=1 {} vs sync {}",
            local.final_accuracy,
            sync.final_accuracy
        );
    }

    #[test]
    fn infrequent_averaging_does_not_beat_sync() {
        let data = gaussian_blobs(5, 12, 1500, 400, 1.3, 9);
        let c = cfg(8);
        let sync = train_sync(&data, &c, SyncMode::FullSync);
        let sparse = train_local_sgd(&data, &c, 16);
        assert!(
            sync.final_accuracy >= sparse.final_accuracy - 0.03,
            "sync {} vs H=16 {}",
            sync.final_accuracy,
            sparse.final_accuracy
        );
    }

    #[test]
    fn deterministic() {
        let data = gaussian_blobs(2, 4, 200, 40, 1.0, 2);
        assert_eq!(
            train_local_sgd(&data, &cfg(2), 3),
            train_local_sgd(&data, &cfg(2), 3)
        );
    }

    #[test]
    #[should_panic(expected = "zero averaging period")]
    fn zero_period_rejected() {
        let data = gaussian_blobs(2, 4, 100, 20, 1.0, 1);
        train_local_sgd(&data, &cfg(1), 0);
    }
}
