//! Asynchronous SGD (the paper's Appendix B.2 comparison).
//!
//! ASGD removes the synchronization barrier: each worker pushes its
//! gradient and continues immediately, so updates are computed against
//! parameters that are several updates stale. We model a fully pipelined
//! ASGD cluster deterministically: workers take turns applying updates,
//! and each gradient was computed on the parameter snapshot from
//! `staleness` updates earlier — the canonical delayed-gradient model of
//! asynchronous training.

use crate::config::{EpochRecord, SyncMode, TrainConfig, TrainRun};
use p3_des::SplitMix64;
use p3_pserver::OptimizerKind;
use p3_tensor::{gather, BatchSchedule, Dataset, Matrix, Mlp};
use std::collections::VecDeque;

/// Runs asynchronous data-parallel training with the given staleness
/// (typically `workers − 1`).
///
/// # Panics
///
/// Panics if the config is degenerate.
///
/// # Examples
///
/// ```
/// use p3_tensor::gaussian_blobs;
/// use p3_train::{train_async, TrainConfig};
///
/// let data = gaussian_blobs(3, 8, 480, 120, 0.8, 5);
/// let mut cfg = TrainConfig::new(3);
/// cfg.hidden = vec![16];
/// let run = train_async(&data, &cfg, 3);
/// assert_eq!(run.records.len(), 3);
/// ```
pub fn train_async(data: &Dataset, cfg: &TrainConfig, staleness: usize) -> TrainRun {
    cfg.validate();

    let mut sizes = vec![data.dim()];
    sizes.extend_from_slice(&cfg.hidden);
    sizes.push(data.classes);
    let mut init_rng = SplitMix64::new(cfg.seed);
    let mut global = Mlp::new(&sizes, &mut init_rng);

    // One momentum optimizer per array, applied at the (lock-free) server.
    let array_lens: Vec<usize> = global.export_arrays().iter().map(Vec::len).collect();
    let opt_kind = OptimizerKind::Momentum {
        lr: cfg.lr,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
    };
    let mut opts: Vec<_> = array_lens.iter().map(|&l| opt_kind.build(l)).collect();

    // Worker shards and schedules.
    let shards: Vec<(Matrix, Vec<usize>)> = (0..cfg.workers)
        .map(|w| data.shard(w, cfg.workers))
        .collect();
    let schedules: Vec<BatchSchedule> = shards
        .iter()
        .enumerate()
        .map(|(w, (_, y))| {
            BatchSchedule::new(y.len(), cfg.batch_per_worker, cfg.seed ^ (w as u64 + 1))
        })
        .collect();
    let rounds_per_epoch = schedules
        .iter()
        .map(BatchSchedule::batches_per_epoch)
        .min()
        .expect("workers");

    // Delayed-gradient pipeline: a gradient computed now is applied after
    // `staleness` other updates land.
    let mut pipeline: VecDeque<Vec<Vec<f32>>> = VecDeque::new();
    let mut records = Vec::with_capacity(cfg.epochs as usize);

    for epoch in 0..cfg.epochs {
        if let Some(decay) = cfg.lr_decay {
            let lr = decay.lr_at(cfg.lr, epoch);
            for o in &mut opts {
                o.set_lr(lr);
            }
        }
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0u64;
        for round in 0..rounds_per_epoch {
            for w in 0..cfg.workers {
                // Worker w reads the CURRENT parameters, computes a
                // gradient, and enqueues it; meanwhile older gradients in
                // the pipeline (computed on stale parameters) are applied.
                let batch_idx = &schedules[w].epoch(epoch as u64)[round];
                let (bx, by) = gather(&shards[w].0, &shards[w].1, batch_idx);
                let (loss, grads) = global.loss_and_grads(&bx, &by);
                loss_sum += loss as f64;
                loss_n += 1;
                pipeline.push_back(Mlp::grads_to_arrays(&grads));

                // Apply the gradient that has now aged `staleness` steps.
                if pipeline.len() > staleness {
                    let stale = pipeline.pop_front().expect("nonempty");
                    apply(&mut global, &mut opts, &stale);
                }
            }
        }
        // Drain nothing between epochs — the pipeline persists, as in a
        // real ASGD cluster.
        let val_accuracy = global.accuracy(&data.val_x, &data.val_y);
        records.push(EpochRecord {
            epoch,
            train_loss: loss_sum / loss_n.max(1) as f64,
            val_accuracy,
        });
    }

    let final_accuracy = records.last().expect("epochs > 0").val_accuracy;
    TrainRun {
        mode_name: SyncMode::Async { staleness }.name().to_string(),
        records,
        final_accuracy,
        iterations_per_epoch: rounds_per_epoch * cfg.workers,
    }
}

fn apply(model: &mut Mlp, opts: &mut [p3_pserver::Optimizer], grads: &[Vec<f32>]) {
    let mut arrays = model.export_arrays();
    for ((a, g), opt) in arrays.iter_mut().zip(grads).zip(opts) {
        opt.step(a, g);
    }
    model.import_arrays(&arrays);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::train_sync;
    use p3_tensor::gaussian_blobs;

    fn cfg(epochs: u32) -> TrainConfig {
        let mut c = TrainConfig::new(epochs);
        c.hidden = vec![24];
        c.batch_per_worker = 16;
        c
    }

    #[test]
    fn asgd_trains_at_all() {
        let data = gaussian_blobs(3, 6, 600, 150, 0.8, 6);
        let run = train_async(&data, &cfg(6), 3);
        assert!(
            run.final_accuracy > 0.6,
            "ASGD collapsed: {}",
            run.final_accuracy
        );
    }

    #[test]
    fn asgd_is_deterministic() {
        let data = gaussian_blobs(2, 4, 200, 40, 1.0, 2);
        assert_eq!(
            train_async(&data, &cfg(2), 3),
            train_async(&data, &cfg(2), 3)
        );
    }

    #[test]
    fn staleness_zero_tracks_sequential_sgd() {
        // With no staleness the pipeline applies immediately: equivalent to
        // plain sequential minibatch SGD; accuracy should be solid.
        let data = gaussian_blobs(3, 6, 600, 150, 0.8, 10);
        let run = train_async(&data, &cfg(5), 0);
        assert!(
            run.final_accuracy > 0.85,
            "no-staleness ASGD: {}",
            run.final_accuracy
        );
    }

    #[test]
    fn sync_beats_stale_async_on_hard_task() {
        // The paper's Appendix B: P3 (synchronous) reaches higher accuracy
        // than ASGD with realistic staleness.
        let data = gaussian_blobs(5, 12, 1500, 400, 1.35, 13);
        let mut c = cfg(10);
        c.lr = 0.1; // staleness damage grows with lr
        let sync = train_sync(&data, &c, SyncMode::FullSync);
        let async_run = train_async(&data, &c, 3);
        assert!(
            sync.final_accuracy >= async_run.final_accuracy,
            "sync {} vs async {}",
            sync.final_accuracy,
            async_run.final_accuracy
        );
    }
}
