//! Training-run configuration and result records.

/// How workers exchange gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncMode {
    /// Synchronous SGD with full gradients — the convergence behaviour of
    /// both the baseline and P3 (P3 never alters the math, §5.6).
    FullSync,
    /// Deep Gradient Compression (Lin et al. 2018).
    Dgc {
        /// Final sparsity after warm-up (paper uses 0.999).
        final_sparsity: f64,
        /// Warm-up epochs of ramped sparsity.
        warmup_epochs: u32,
    },
    /// Threshold gradient dropping (Aji & Heafield 2017).
    GradDrop {
        /// Keep one in `ratio` coordinates.
        ratio: f64,
    },
    /// QSGD stochastic quantization (Alistarh et al. 2017).
    Qsgd {
        /// Quantization levels.
        levels: u32,
    },
    /// TernGrad three-level quantization (Wen et al. 2017).
    TernGrad,
    /// 1-bit SGD with error feedback (Seide et al. 2014).
    OneBit,
    /// Asynchronous SGD: no barrier; each gradient is applied with the
    /// given staleness (in update steps).
    Async {
        /// Updates applied between a gradient's read and its write
        /// (`workers − 1` models a fully pipelined ASGD cluster).
        staleness: usize,
    },
}

impl SyncMode {
    /// Display name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            SyncMode::FullSync => "P3/FullSync",
            SyncMode::Dgc { .. } => "DGC",
            SyncMode::GradDrop { .. } => "GradDrop",
            SyncMode::Qsgd { .. } => "QSGD",
            SyncMode::TernGrad => "TernGrad",
            SyncMode::OneBit => "1bitSGD",
            SyncMode::Async { .. } => "ASGD",
        }
    }
}

/// Step learning-rate decay: divide the learning rate by `factor` every
/// `every` epochs (the schedule the paper's CIFAR experiments use).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrDecay {
    /// Epoch interval between decays.
    pub every: u32,
    /// Division factor (> 1).
    pub factor: f32,
}

impl LrDecay {
    /// Learning rate in force at `epoch` given the base rate.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` or `factor <= 1`.
    pub fn lr_at(&self, base: f32, epoch: u32) -> f32 {
        assert!(self.every > 0, "zero decay interval");
        assert!(self.factor > 1.0, "decay factor must exceed 1");
        base / self.factor.powi((epoch / self.every) as i32)
    }
}

/// Hyper-parameters of one data-parallel training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of data-parallel workers.
    pub workers: usize,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum (server-side for full sync; worker-side correction for
    /// DGC).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Training epochs.
    pub epochs: u32,
    /// Hidden-layer sizes of the MLP classifier.
    pub hidden: Vec<usize>,
    /// Master seed: controls initialization, shuffling and quantization
    /// randomness. One seed ⇒ bit-identical run.
    pub seed: u64,
    /// Optional step learning-rate decay.
    pub lr_decay: Option<LrDecay>,
}

impl TrainConfig {
    /// The defaults used by the Figure 11 reproduction: 4 workers (the
    /// paper's cluster), momentum SGD.
    pub fn new(epochs: u32) -> TrainConfig {
        TrainConfig {
            workers: 4,
            batch_per_worker: 32,
            lr: 0.08,
            momentum: 0.9,
            weight_decay: 1e-4,
            epochs,
            hidden: vec![64, 32],
            seed: 1,
            lr_decay: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate values.
    pub fn validate(&self) {
        assert!(self.workers > 0, "zero workers");
        assert!(self.batch_per_worker > 0, "zero batch");
        assert!(self.lr > 0.0 && self.lr.is_finite(), "bad lr");
        assert!((0.0..1.0).contains(&self.momentum), "bad momentum");
        assert!(self.epochs > 0, "zero epochs");
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation accuracy after the epoch.
    pub val_accuracy: f64,
}

/// A completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainRun {
    /// Mode that produced this run.
    pub mode_name: String,
    /// Per-epoch records.
    pub records: Vec<EpochRecord>,
    /// Validation accuracy after the final epoch.
    pub final_accuracy: f64,
    /// Optimizer update rounds per epoch (for wall-clock mapping).
    pub iterations_per_epoch: usize,
}

impl TrainRun {
    /// Best validation accuracy across epochs.
    pub fn best_accuracy(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.val_accuracy)
            .fold(0.0, f64::max)
    }

    /// First epoch reaching `target` validation accuracy, if any.
    pub fn epochs_to_reach(&self, target: f64) -> Option<u32> {
        self.records
            .iter()
            .find(|r| r.val_accuracy >= target)
            .map(|r| r.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_decay_schedule() {
        let d = LrDecay {
            every: 10,
            factor: 10.0,
        };
        assert_eq!(d.lr_at(0.1, 0), 0.1);
        assert_eq!(d.lr_at(0.1, 9), 0.1);
        assert!((d.lr_at(0.1, 10) - 0.01).abs() < 1e-9);
        assert!((d.lr_at(0.1, 25) - 0.001).abs() < 1e-9);
    }

    #[test]
    fn names() {
        assert_eq!(SyncMode::FullSync.name(), "P3/FullSync");
        assert_eq!(
            SyncMode::Dgc {
                final_sparsity: 0.999,
                warmup_epochs: 4
            }
            .name(),
            "DGC"
        );
        assert_eq!(SyncMode::Async { staleness: 3 }.name(), "ASGD");
    }

    #[test]
    fn run_helpers() {
        let run = TrainRun {
            mode_name: "x".into(),
            records: vec![
                EpochRecord {
                    epoch: 0,
                    train_loss: 1.0,
                    val_accuracy: 0.5,
                },
                EpochRecord {
                    epoch: 1,
                    train_loss: 0.5,
                    val_accuracy: 0.9,
                },
                EpochRecord {
                    epoch: 2,
                    train_loss: 0.4,
                    val_accuracy: 0.85,
                },
            ],
            final_accuracy: 0.85,
            iterations_per_epoch: 10,
        };
        assert_eq!(run.best_accuracy(), 0.9);
        assert_eq!(run.epochs_to_reach(0.8), Some(1));
        assert_eq!(run.epochs_to_reach(0.95), None);
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn degenerate_config_rejected() {
        let mut cfg = TrainConfig::new(1);
        cfg.workers = 0;
        cfg.validate();
    }
}
