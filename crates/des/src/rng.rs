//! A small, fast, deterministic pseudo-random generator for simulation
//! jitter.
//!
//! The kernel deliberately does not depend on the `rand` crate: experiment
//! reproducibility requires that a seed fully determines a run on every
//! platform and across dependency upgrades. [`SplitMix64`] (Steele, Lea &
//! Flood, OOPSLA 2014) is tiny, passes BigCrush when used as intended, and is
//! the standard seeding generator for the xoshiro family.

/// A deterministic 64-bit pseudo-random generator (SplitMix64).
///
/// # Examples
///
/// ```
/// use p3_des::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including zero, is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        // Rejection sampling on the widening multiply keeps the result
        // exactly uniform.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "bad std_dev {std_dev}"
        );
        mean + std_dev * self.normal()
    }

    /// The generator's current internal state. Feeding it back through
    /// [`SplitMix64::new`] reconstructs a generator whose future stream is
    /// bit-identical — the basis for simulator snapshot/restore.
    pub const fn state(&self) -> u64 {
        self.state
    }

    /// Forks an independent generator; the fork's stream is decorrelated from
    /// the parent's continuation.
    pub fn fork(&mut self) -> SplitMix64 {
        // Golden-ratio offset per the SplitMix64 split() recipe.
        SplitMix64::new(self.next_u64() ^ 0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical C implementation with seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_bounded_and_covers() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = SplitMix64::new(1234);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SplitMix64::new(8);
        for _ in 0..1000 {
            let x = r.uniform(3.0, 4.5);
            assert!((3.0..4.5).contains(&x));
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = SplitMix64::new(11);
        let mut child = parent.fork();
        // The two streams should not be identical going forward.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
