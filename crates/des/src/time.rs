//! Simulated-time instants and durations.
//!
//! The kernel measures time in integer nanoseconds. Using integers (rather
//! than `f64` seconds) keeps event ordering exact and the simulation
//! deterministic across platforms: two events scheduled at the same tick
//! always compare equal, and accumulation never drifts.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is an *instant*; the difference of two instants is a
/// [`SimDuration`]. Arithmetic that would overflow panics in debug builds and
/// wraps in release builds, like the built-in integer types; use the
/// `saturating_*`/`checked_*` helpers when overflow is plausible.
///
/// # Examples
///
/// ```
/// use p3_des::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1 - t0, SimDuration::from_micros(5_000));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use p3_des::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d.as_secs_f64(), 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel when searching for the earliest event.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_f64_to_nanos(secs))
    }

    /// Returns the number of whole nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant, or `None` if `earlier` is later.
    #[inline]
    pub const fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(d) => Some(SimDuration(d)),
            None => None,
        }
    }

    /// Duration since an earlier instant, clamping to zero if `earlier` is
    /// actually later.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_f64_to_nanos(secs))
    }

    /// Returns the number of whole nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    #[inline]
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts, clamping at zero.
    #[inline]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a dimensionless fraction, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, non-finite, or the result overflows.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        let nanos = self.0 as f64 * factor;
        assert!(nanos <= u64::MAX as f64, "duration overflow in mul_f64");
        SimDuration(nanos.round() as u64)
    }

    /// The ratio of two durations as a float. Returns `f64::INFINITY` if
    /// `other` is zero and `self` is not, and `0.0` if both are zero.
    #[inline]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

fn secs_f64_to_nanos(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "simulated seconds must be finite and non-negative, got {secs}"
    );
    let nanos = secs * 1e9;
    assert!(
        nanos <= u64::MAX as f64,
        "simulated time overflow: {secs} seconds"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn instant_duration_arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5e-9),
            SimDuration::from_nanos(2)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_nan() {
        let _ = SimTime::from_secs_f64(f64::NAN);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(5).checked_duration_since(SimTime::from_secs(6)),
            None
        );
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let one = SimDuration::from_secs(1);
        assert_eq!(one.ratio(SimDuration::ZERO), f64::INFINITY);
        assert_eq!(SimDuration::ZERO.ratio(SimDuration::ZERO), 0.0);
        assert!((SimDuration::from_millis(500).ratio(one) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mul_and_div_scale() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d * 3, SimDuration::from_micros(300));
        assert_eq!(d / 4, SimDuration::from_micros(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(50));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
