//! # p3-des — deterministic discrete-event simulation kernel
//!
//! The foundation of the P3 reproduction: integer-nanosecond simulated time
//! ([`SimTime`], [`SimDuration`]), a deterministic FIFO-tie-breaking event
//! calendar ([`EventQueue`]), a seedable generator for workload jitter
//! ([`SplitMix64`]), and streaming statistics ([`Summary`]) used by the
//! experiment harnesses.
//!
//! Determinism is a design requirement, not an accident: every experiment in
//! the paper reproduction is a pure function of its configuration and seed,
//! so results in `EXPERIMENTS.md` can be regenerated bit-for-bit.
//!
//! # Examples
//!
//! A two-event simulation:
//!
//! ```
//! use p3_des::{EventQueue, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { ComputeDone, TransferDone }
//!
//! let mut q = EventQueue::new();
//! q.schedule_in(SimDuration::from_millis(3), Ev::ComputeDone);
//! q.schedule_in(SimDuration::from_millis(5), Ev::TransferDone);
//!
//! let mut log = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     log.push((t.as_secs_f64(), ev));
//! }
//! assert_eq!(log[0].1, Ev::ComputeDone);
//! assert_eq!(log[1].0, 0.005);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod queue;
mod rng;
mod stats;
mod time;

pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use stats::{mean, quantile, Histogram, Summary};
pub use time::{SimDuration, SimTime};
