//! Lightweight descriptive statistics used by the experiment harnesses.

/// Running summary statistics over a stream of `f64` samples (Welford's
/// online algorithm, numerically stable).
///
/// # Examples
///
/// ```
/// use p3_des::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — a NaN sample silently poisons every statistic.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample, or +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divides by `n`), or 0.0 with fewer than one
    /// sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by `n − 1`), or 0.0 with fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-layout histogram with exponentially growing bucket bounds, plus
/// the full [`Summary`] statistics of everything recorded.
///
/// Buckets are `[0, b0), [b0, b1), …` with `b(i+1) = b(i) * growth`, and one
/// implicit overflow bucket for samples at or above the last bound. The
/// layout is fixed at construction so histograms from different runs of the
/// same configuration are directly comparable bucket-by-bucket.
///
/// # Examples
///
/// ```
/// use p3_des::Histogram;
///
/// // 4 buckets: [0,1e-6), [1e-6,1e-5), [1e-5,1e-4), [1e-4,1e-3), overflow.
/// let mut h = Histogram::exponential(1e-6, 10.0, 4);
/// h.record(5e-6);
/// h.record(2.0);
/// assert_eq!(h.counts()[1], 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.summary().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram whose `buckets` upper bounds start at `first`
    /// and grow by `growth` per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `first` is not positive, `growth` is not greater than 1,
    /// or `buckets` is zero.
    pub fn exponential(first: f64, growth: f64, buckets: usize) -> Self {
        assert!(
            first > 0.0 && first.is_finite(),
            "first bound must be positive"
        );
        assert!(growth > 1.0 && growth.is_finite(), "growth must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = first;
        for _ in 0..buckets {
            bounds.push(b);
            b *= growth;
        }
        Histogram {
            counts: vec![0; buckets],
            bounds,
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// Records one sample into its bucket and the running summary.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or negative — histogram samples are
    /// durations/depths, which are non-negative by construction.
    pub fn record(&mut self, x: f64) {
        assert!(x >= 0.0, "histogram samples must be non-negative, got {x}");
        self.summary.record(x);
        match self.bounds.iter().position(|&b| x < b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Upper bounds of the buckets (exclusive).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket sample counts, parallel to [`Histogram::bounds`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples at or above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Summary statistics over every recorded sample.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }
}

/// The `q`-th quantile (0 ≤ q ≤ 1) of a slice using linear interpolation,
/// matching NumPy's default.
///
/// Returns `None` on an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
///
/// # Examples
///
/// ```
/// use p3_des::quantile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Arithmetic mean of a slice, or `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var = xs
            .iter()
            .map(|x| (x - naive_mean) * (x - naive_mean))
            .sum::<f64>()
            / xs.len() as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-9);
        assert!((s.population_variance() - naive_var).abs() < 1e-6);
    }

    #[test]
    fn merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.7).collect();
        let mut whole = Summary::new();
        let mut left = Summary::new();
        let mut right = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 37 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn quantile_edges_and_interpolation() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 0.5), Some(20.0));
        assert_eq!(quantile(&xs, 1.0), Some(30.0));
        assert_eq!(quantile(&xs, 0.25), Some(15.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::exponential(1.0, 2.0, 3); // bounds 1, 2, 4
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0]);
        for x in [0.0, 0.5, 1.0, 1.9, 3.0, 4.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert_eq!(h.summary().max(), 100.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn histogram_rejects_negative() {
        Histogram::exponential(1.0, 2.0, 2).record(-0.5);
    }
}
