//! The event calendar: a deterministic time-ordered priority queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence of an event of type `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    /// Monotone tie-breaker: events scheduled earlier (by call order) at the
    /// same instant fire first, which makes the simulation fully
    /// deterministic regardless of heap internals.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event calendar holding events of type `E`.
///
/// Events pop in nondecreasing time order; events at the same instant pop in
/// the order they were scheduled (FIFO), so a simulation driven by this queue
/// is deterministic.
///
/// The calendar also tracks the current simulation clock: [`EventQueue::pop`]
/// advances the clock to the popped event's timestamp, and
/// [`EventQueue::schedule_in`]/[`EventQueue::schedule_at`] refuse to schedule
/// into the past.
///
/// # Examples
///
/// ```
/// use p3_des::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimDuration::from_millis(2), "late");
/// q.schedule_in(SimDuration::from_millis(1), "early");
/// q.schedule_in(SimDuration::from_millis(1), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            high_water: 0,
        }
    }

    /// The largest number of events that were ever pending at once — a
    /// cheap load signal for observability without walking the calendar.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total number of events ever scheduled on this calendar.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// The current simulation clock: the timestamp of the most recently
    /// popped event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock — an event in the past
    /// indicates a logic error in the model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Schedules `event` to fire `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` to fire now (after all other events already
    /// scheduled for the current instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "event calendar went backwards");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Drops all pending events without moving the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: Clone> EventQueue<E> {
    /// All pending events in pop order (`(time, seq)` ascending), without
    /// disturbing the calendar. This is the serialization view for
    /// snapshots: re-scheduling the returned events in order onto a fresh
    /// calendar (see [`EventQueue::from_pending`]) reproduces the exact pop
    /// sequence, because fresh sequence numbers assigned in pop order
    /// preserve the FIFO tie-break and any later event gets a larger
    /// sequence number in both calendars.
    pub fn pending_sorted(&self) -> Vec<(SimTime, E)> {
        let mut pending: Vec<&Scheduled<E>> = self.heap.iter().collect();
        pending.sort_by_key(|s| (s.time, s.seq));
        pending
            .into_iter()
            .map(|s| (s.time, s.event.clone()))
            .collect()
    }
}

impl<E> EventQueue<E> {
    /// Rebuilds a calendar from a snapshot: the clock is set to `now` and
    /// `pending` (in pop order, as produced by
    /// [`EventQueue::pending_sorted`]) is re-scheduled with fresh sequence
    /// numbers. The restored calendar pops the same `(time, event)`
    /// sequence as the original.
    ///
    /// # Panics
    ///
    /// Panics if any pending event is earlier than `now`.
    pub fn from_pending(now: SimTime, pending: Vec<(SimTime, E)>) -> Self {
        let mut q = EventQueue::new();
        q.now = now;
        for (at, event) in pending {
            q.schedule_at(at, event);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_secs(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn rejects_events_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(4), ());
    }

    #[test]
    fn schedule_in_is_relative_to_clock() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2), "a");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(4), "b")));
    }

    #[test]
    fn schedule_now_fires_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), "first");
        q.pop();
        q.schedule_now("second");
        q.schedule_now("third");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "second")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "third")));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_now(1);
        q.schedule_now(2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn high_water_and_scheduled_total_track_load() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule_now(1);
        q.schedule_now(2);
        q.schedule_now(3);
        q.pop();
        q.pop();
        q.schedule_now(4);
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.scheduled_total(), 4);
    }
}
