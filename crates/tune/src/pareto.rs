//! Pareto frontier over the tuner's three objectives, with a
//! deterministic total order for presentation and tie-breaking.

use crate::eval::Evaluation;
use std::cmp::Ordering;

/// Indices of the non-dominated feasible evaluations, sorted by
/// [`presentation_order`] (fastest first). Infeasible evaluations never
/// make the frontier. Duplicate objective vectors all survive (none
/// dominates the other); the caller deduplicates candidates upstream.
pub fn frontier(evals: &[Evaluation]) -> Vec<usize> {
    let mut out: Vec<usize> = (0..evals.len())
        .filter(|&i| {
            let Some(oi) = evals[i].objectives() else {
                return false;
            };
            !evals
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.objectives().is_some_and(|oj| oj.dominates(oi)))
        })
        .collect();
    out.sort_by(|&a, &b| presentation_order(&evals[a], &evals[b]));
    out
}

/// Total order for reporting: iteration time, then wire bytes, then p99
/// stall, then the candidate key — every comparison deterministic, so
/// frontier listings and "recommended" picks are byte-stable. Infeasible
/// evaluations sort last (they only meet this comparator in population
/// rankings, never on a frontier).
pub fn presentation_order(a: &Evaluation, b: &Evaluation) -> Ordering {
    match (a.objectives(), b.objectives()) {
        (Some(oa), Some(ob)) => oa
            .iter_secs
            .total_cmp(&ob.iter_secs)
            .then(oa.wire_bytes.cmp(&ob.wire_bytes))
            .then(oa.stall_p99_secs.total_cmp(&ob.stall_p99_secs))
            .then_with(|| a.candidate.key().cmp(&b.candidate.key())),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => a.candidate.key().cmp(&b.candidate.key()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Objectives;
    use crate::space::{Candidate, PriorityPolicy};
    use p3_cluster::BackendKind;
    use p3_topo::Placement;

    fn eval(slice: u64, iter: f64, wire: u64, stall: f64) -> Evaluation {
        Evaluation {
            candidate: Candidate {
                slice,
                policy: PriorityPolicy::Consumption,
                backend: BackendKind::Ps,
                channels: 4,
                placement: Placement::Spread,
            },
            outcome: Ok(Objectives {
                iter_secs: iter,
                wire_bytes: wire,
                stall_p99_secs: stall,
            }),
            refined: false,
            events: 0,
            event_hash: 0,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let evals = vec![
            eval(1, 1.0, 100, 0.1), // dominated by the next one
            eval(2, 0.9, 90, 0.1),
            eval(3, 1.5, 10, 0.2), // cheaper on wire: survives
        ];
        assert_eq!(frontier(&evals), vec![1, 2]);
    }

    #[test]
    fn infeasible_never_on_frontier() {
        let mut bad = eval(9, 0.0, 0, 0.0);
        bad.outcome = Err("rejected".into());
        let evals = vec![bad, eval(1, 1.0, 1, 0.0)];
        assert_eq!(frontier(&evals), vec![1]);
    }

    #[test]
    fn order_is_total_and_key_tied() {
        let a = eval(1, 1.0, 1, 0.0);
        let b = eval(2, 1.0, 1, 0.0);
        assert_eq!(presentation_order(&a, &b), Ordering::Less); // slice=1 < slice=2 in key
    }
}
