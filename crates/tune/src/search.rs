//! The search driver: grid screening, seeded genetic refinement,
//! Pareto-frontier confirmation — every stage fanned across the
//! deterministic runner and merged in candidate order, so the outcome is
//! byte-identical for any `jobs` count.

use crate::eval::{audit_replay, refine, screen, EvalParams, Evaluation, RefinePath, Screened};
use crate::pareto::{frontier, presentation_order};
use crate::runner::run_indexed;
use crate::space::{Candidate, Cell, SearchSpace};
use p3_des::SplitMix64;
use p3_prof::{ProfileReport, SimProfiler};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Snapshots kept per cell for warm-starting refinement. Beyond this the
/// tuner falls back to fresh confirmation runs (bit-identical, just
/// slower) instead of holding every warmup snapshot in memory. The cap
/// applies in deterministic merge order, so which candidates warm-start
/// never depends on thread timing.
const SNAPSHOT_CAP_PER_CELL: usize = 512;

/// Everything that parameterizes one `tune` invocation besides the cells.
#[derive(Debug, Clone)]
pub struct TuneSettings {
    /// Candidate axes.
    pub space: SearchSpace,
    /// Iteration counts for screening/refinement runs.
    pub params: EvalParams,
    /// Genetic generations after the grid (0 = grid only).
    pub generations: u64,
    /// Genetic population per cell.
    pub population: usize,
    /// Master seed: feeds both the simulations and the genetic RNG.
    pub seed: u64,
    /// Worker threads for the fan-out (1 = inline).
    pub jobs: usize,
}

impl Default for TuneSettings {
    fn default() -> Self {
        TuneSettings {
            space: SearchSpace::default_space(),
            params: EvalParams::default(),
            generations: 2,
            population: 8,
            seed: 42,
            jobs: 1,
        }
    }
}

/// Deterministic counters describing what the search spent — these go
/// into the report (wall-clock time deliberately does not: the report
/// must be byte-identical run-to-run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCost {
    /// Screening simulations launched (grid + genetic, feasible or not).
    pub screening_runs: u64,
    /// Confirmation simulations of frontier members.
    pub refinement_runs: u64,
    /// Refinements served from a warmup snapshot.
    pub warm_restores: u64,
    /// Refinements that fell back to a fresh full run.
    pub warm_fallbacks: u64,
    /// Genetic children that had already been evaluated (no run needed).
    pub cache_hits: u64,
    /// Candidates the engine rejected or that failed to complete.
    pub infeasible: u64,
    /// Total simulator events dispatched across every run.
    pub sim_events: u64,
}

/// One cell's search result.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The deployment searched.
    pub cell: Cell,
    /// Every candidate evaluated, sorted by candidate key.
    pub evaluations: Vec<Evaluation>,
    /// Indices into `evaluations`: the Pareto frontier (post-refinement),
    /// fastest first.
    pub frontier: Vec<usize>,
    /// Index into `evaluations` of the recommended configuration — the
    /// frontier member with the lowest confirmed iteration time (ties:
    /// wire bytes, then candidate key). `None` when nothing was feasible.
    pub recommended: Option<usize>,
}

/// The full result of [`tune`].
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Per-cell results, in input cell order.
    pub cells: Vec<CellOutcome>,
    /// Deterministic search-cost counters.
    pub cost: SearchCost,
    /// Wall-clock profile of the search stages (`tune/screen`,
    /// `tune/genetic`, `tune/refine` spans). Informational only — never
    /// serialized into the byte-stable report.
    pub profile: ProfileReport,
}

/// Why a search could not run (as opposed to individual candidates
/// failing, which the report records as infeasible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// Empty/malformed space, no cells, or zero-iteration windows.
    InvalidSearch(String),
    /// A recommended configuration failed its audit replay.
    AuditFailed {
        /// Cell whose recommendation failed.
        cell: String,
        /// Candidate key.
        candidate: String,
        /// Audit report.
        why: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::InvalidSearch(why) => write!(f, "invalid search: {why}"),
            TuneError::AuditFailed {
                cell,
                candidate,
                why,
            } => write!(
                f,
                "recommended config for {cell} ({candidate}) failed its audit replay: {why}"
            ),
        }
    }
}

impl std::error::Error for TuneError {}

/// Per-cell working state while the search runs.
struct CellState {
    cell: Cell,
    evals: BTreeMap<String, Evaluation>,
    snapshots: BTreeMap<String, Vec<u8>>,
}

impl CellState {
    fn absorb(&mut self, key: String, screened: Screened, cost: &mut SearchCost) {
        cost.screening_runs += 1;
        cost.sim_events += screened.evaluation.events;
        if let Some(bytes) = screened.snapshot {
            if self.snapshots.len() < SNAPSHOT_CAP_PER_CELL {
                self.snapshots.insert(key.clone(), bytes);
            }
        }
        self.evals.insert(key, screened.evaluation);
    }

    /// Evaluated keys ranked by the presentation order (feasible and
    /// fastest first) — the genetic selection pressure.
    fn ranked_keys(&self) -> Vec<String> {
        let mut keys: Vec<&String> = self.evals.keys().collect();
        keys.sort_by(|a, b| presentation_order(&self.evals[*a], &self.evals[*b]));
        keys.into_iter().cloned().collect()
    }
}

/// Runs the whole search: grid screening over every cell, `generations`
/// rounds of genetic refinement, then warm-started confirmation of each
/// cell's Pareto frontier.
///
/// # Errors
///
/// [`TuneError::InvalidSearch`] on an empty space/cell list or
/// zero-iteration measurement windows. Individual candidate failures are
/// recorded in the outcome, not raised.
pub fn tune(cells: &[Cell], settings: &TuneSettings) -> Result<TuneOutcome, TuneError> {
    settings
        .space
        .validate()
        .map_err(TuneError::InvalidSearch)?;
    if cells.is_empty() {
        return Err(TuneError::InvalidSearch("no cells to tune".into()));
    }
    if settings.params.screen_measure == 0 || settings.params.measure == 0 {
        return Err(TuneError::InvalidSearch(
            "screening and refinement need at least one measured iteration".into(),
        ));
    }
    if settings.generations > 0 && settings.population < 2 {
        return Err(TuneError::InvalidSearch(
            "genetic refinement needs a population of at least 2".into(),
        ));
    }
    let mut prof = SimProfiler::new();
    let mut cost = SearchCost::default();
    let base_channels = settings.space.channels[0];
    let mut states: Vec<CellState> = cells
        .iter()
        .map(|c| CellState {
            cell: c.clone(),
            evals: BTreeMap::new(),
            snapshots: BTreeMap::new(),
        })
        .collect();

    // --- Stage 1: grid screening across every cell. -------------------
    let grid = settings.space.grid();
    let mut pending: Vec<(usize, Candidate)> = Vec::new();
    for (ci, state) in states.iter().enumerate() {
        let mut seen = BTreeSet::new();
        for cand in &grid {
            let n = cand.normalized_for(&state.cell, base_channels);
            if seen.insert(n.key()) {
                pending.push((ci, n));
            }
        }
    }
    screen_pending(&mut states, &pending, settings, &mut cost, &mut prof);

    // --- Stage 2: genetic refinement, one population per cell. --------
    let span = prof.begin();
    let mut populations: Vec<Vec<String>> = states
        .iter()
        .map(|s| truncate_ranked(s.ranked_keys(), settings.population))
        .collect();
    for g in 0..settings.generations {
        let mut pending: Vec<(usize, Candidate)> = Vec::new();
        for (ci, state) in states.iter().enumerate() {
            let pop = &populations[ci];
            if pop.len() < 2 {
                continue;
            }
            let mut rng = SplitMix64::new(generation_seed(settings.seed, ci, g));
            let mut scheduled = BTreeSet::new();
            for _ in 0..settings.population {
                let a = tournament(state, pop, &mut rng);
                let b = tournament(state, pop, &mut rng);
                let child = settings.space.crossover(a, b, &mut rng);
                let child = settings.space.mutate(&child, &mut rng);
                let child = child.normalized_for(&state.cell, base_channels);
                let key = child.key();
                if state.evals.contains_key(&key) || !scheduled.insert(key) {
                    cost.cache_hits += 1;
                } else {
                    pending.push((ci, child));
                }
            }
        }
        screen_pending(&mut states, &pending, settings, &mut cost, &mut prof);
        for (ci, state) in states.iter().enumerate() {
            // Elitist reselection over everything evaluated so far: the
            // best `population` keys survive into the next generation.
            populations[ci] = truncate_ranked(state.ranked_keys(), settings.population);
        }
    }
    prof.record("tune/genetic", span);

    // --- Stage 3: confirm each cell's frontier (warm-started). --------
    let mut outcomes: Vec<CellOutcome> = states
        .iter()
        .map(|s| {
            let evaluations: Vec<Evaluation> = s.evals.values().cloned().collect();
            let front = frontier(&evaluations);
            CellOutcome {
                cell: s.cell.clone(),
                evaluations,
                frontier: front,
                recommended: None,
            }
        })
        .collect();
    let refine_jobs: Vec<(usize, usize)> = outcomes
        .iter()
        .enumerate()
        .flat_map(|(ci, o)| o.frontier.iter().map(move |&ei| (ci, ei)))
        .collect();
    let span = prof.begin();
    let refined = run_indexed(settings.jobs, refine_jobs.len(), |i| {
        let (ci, ei) = refine_jobs[i];
        let state = &states[ci];
        let eval = &outcomes[ci].evaluations[ei];
        let snap = state
            .snapshots
            .get(&eval.candidate.key())
            .map(Vec::as_slice);
        refine(
            &state.cell,
            eval,
            &settings.params,
            cell_seed(settings.seed, ci),
            snap,
        )
    });
    prof.record("tune/refine", span);
    for (&(ci, ei), (eval, path)) in refine_jobs.iter().zip(refined) {
        cost.refinement_runs += 1;
        cost.sim_events += eval.events;
        match path {
            RefinePath::WarmStart => cost.warm_restores += 1,
            RefinePath::Fresh => cost.warm_fallbacks += 1,
        }
        outcomes[ci].evaluations[ei] = eval;
    }
    for o in &mut outcomes {
        // Re-derive the frontier from the confirmed numbers: a member
        // whose refined measurement turns out dominated drops off.
        o.frontier = frontier(&o.evaluations);
        o.recommended = o.frontier.first().copied();
        cost.infeasible += o.evaluations.iter().filter(|e| e.outcome.is_err()).count() as u64;
    }

    record_cost(&mut prof, &cost);
    let profile = prof.report(cost.sim_events, 0.0);
    Ok(TuneOutcome {
        cells: outcomes,
        cost,
        profile,
    })
}

/// Replays every recommended configuration as a fresh full run with the
/// inline audit enabled, in parallel, failing on the first (in cell
/// order) that is not clean. Returns how many were audited.
///
/// # Errors
///
/// [`TuneError::AuditFailed`] naming the cell and candidate.
pub fn verify_recommended(
    outcome: &TuneOutcome,
    settings: &TuneSettings,
) -> Result<u64, TuneError> {
    let jobs: Vec<(usize, &Candidate)> = outcome
        .cells
        .iter()
        .enumerate()
        .filter_map(|(ci, o)| o.recommended.map(|ei| (ci, &o.evaluations[ei].candidate)))
        .collect();
    let verdicts = run_indexed(settings.jobs, jobs.len(), |i| {
        let (ci, cand) = jobs[i];
        audit_replay(
            &outcome.cells[ci].cell,
            cand,
            &settings.params,
            cell_seed(settings.seed, ci),
        )
    });
    for (&(ci, cand), verdict) in jobs.iter().zip(&verdicts) {
        if let Err(why) = verdict {
            return Err(TuneError::AuditFailed {
                cell: outcome.cells[ci].cell.name(),
                candidate: cand.key(),
                why: why.clone(),
            });
        }
    }
    Ok(verdicts.len() as u64)
}

/// Fans the pending (cell, candidate) screening runs across the pool and
/// merges the results in job order.
fn screen_pending(
    states: &mut [CellState],
    pending: &[(usize, Candidate)],
    settings: &TuneSettings,
    cost: &mut SearchCost,
    prof: &mut SimProfiler,
) {
    let span = prof.begin();
    let screened = run_indexed(settings.jobs, pending.len(), |i| {
        let (ci, cand) = &pending[i];
        screen(
            &states[*ci].cell,
            cand,
            &settings.params,
            cell_seed(settings.seed, *ci),
        )
    });
    prof.record("tune/screen", span);
    for ((ci, cand), s) in pending.iter().zip(screened) {
        states[*ci].absorb(cand.key(), s, cost);
    }
}

/// Tournament selection: two uniform draws, the better one (dominance
/// first, presentation order as tie-break) wins.
fn tournament<'a>(state: &'a CellState, pop: &'a [String], rng: &mut SplitMix64) -> &'a Candidate {
    let a = &pop[(rng.next_u64() % pop.len() as u64) as usize];
    let b = &pop[(rng.next_u64() % pop.len() as u64) as usize];
    let ea = &state.evals[a];
    let eb = &state.evals[b];
    let winner = match (ea.objectives(), eb.objectives()) {
        (Some(oa), Some(ob)) if oa.dominates(ob) => ea,
        (Some(oa), Some(ob)) if ob.dominates(oa) => eb,
        _ => {
            if presentation_order(ea, eb).is_le() {
                ea
            } else {
                eb
            }
        }
    };
    &winner.candidate
}

fn truncate_ranked(mut keys: Vec<String>, population: usize) -> Vec<String> {
    keys.truncate(population);
    keys
}

/// The simulation seed every candidate of cell `ci` runs under — fixed
/// within the cell so candidates race on equal terms.
fn cell_seed(seed: u64, ci: usize) -> u64 {
    seed.wrapping_add((ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The genetic RNG stream for (cell, generation) — independent of job
/// count and of every other cell's stream.
fn generation_seed(seed: u64, ci: usize, g: u64) -> u64 {
    seed ^ (ci as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ g.wrapping_mul(0x94D0_49BB_1331_11EB)
}

fn record_cost(prof: &mut SimProfiler, cost: &SearchCost) {
    prof.set("tune/screening_runs", cost.screening_runs);
    prof.set("tune/refinement_runs", cost.refinement_runs);
    prof.set("tune/warm_restores", cost.warm_restores);
    prof.set("tune/warm_fallbacks", cost.warm_fallbacks);
    prof.set("tune/cache_hits", cost.cache_hits);
    prof.set("tune/infeasible", cost.infeasible);
    prof.set("tune/sim_events", cost.sim_events);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::FaultClass;
    use crate::space::PriorityPolicy;
    use p3_cluster::BackendKind;
    use p3_models::ModelSpec;
    use p3_topo::Placement;

    fn tiny_settings() -> TuneSettings {
        TuneSettings {
            space: SearchSpace {
                slices: vec![1_000_000, 4_000_000],
                policies: vec![PriorityPolicy::Consumption, PriorityPolicy::Uniform],
                backends: vec![BackendKind::Ps],
                channels: vec![4],
                placements: vec![Placement::Spread],
            },
            params: EvalParams {
                warmup: 1,
                screen_measure: 2,
                measure: 3,
            },
            generations: 1,
            population: 4,
            seed: 42,
            jobs: 2,
        }
    }

    fn tiny_cells() -> Vec<Cell> {
        vec![Cell {
            model: ModelSpec::alexnet(),
            machines: 3,
            gbps: 10.0,
            topology: None,
            fault: FaultClass::None,
        }]
    }

    #[test]
    fn tune_produces_a_frontier_and_recommendation() {
        let outcome = tune(&tiny_cells(), &tiny_settings()).expect("search runs");
        let cell = &outcome.cells[0];
        assert!(!cell.frontier.is_empty());
        let rec = cell.recommended.expect("recommended config");
        assert!(cell.evaluations[rec].refined);
        assert!(outcome.cost.screening_runs >= 4);
        assert!(outcome.cost.warm_restores + outcome.cost.warm_fallbacks >= 1);
    }

    #[test]
    fn recommended_config_audits_clean() {
        let settings = tiny_settings();
        let outcome = tune(&tiny_cells(), &settings).expect("search runs");
        assert_eq!(verify_recommended(&outcome, &settings), Ok(1));
    }

    #[test]
    fn empty_cells_rejected() {
        assert!(matches!(
            tune(&[], &tiny_settings()),
            Err(TuneError::InvalidSearch(_))
        ));
    }
}
