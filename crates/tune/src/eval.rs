//! Evaluating one (cell, candidate) pair: the screening run that scores
//! every candidate, the warm-start refinement that confirms frontier
//! members without re-simulating their warmup, and the audit replay that
//! `--audit` runs over recommended configs.

use crate::space::{Candidate, Cell};
use p3_cluster::{ClusterConfig, ClusterSim, RunError, RunResult};
use p3_des::quantile;
use p3_net::Bandwidth;
use p3_trace::{TraceEvent, TraceLog};

/// Iteration-count knobs shared by every run the tuner launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalParams {
    /// Warmup iterations excluded from measurement — also the snapshot
    /// point the refinement stage warm-starts from.
    pub warmup: u64,
    /// Measured iterations of a screening run (short: every grid and
    /// genetic candidate pays this).
    pub screen_measure: u64,
    /// Measured iterations of a refinement run (longer: only Pareto
    /// frontier members pay this).
    pub measure: u64,
}

impl Default for EvalParams {
    fn default() -> Self {
        EvalParams {
            warmup: 2,
            screen_measure: 3,
            measure: 10,
        }
    }
}

/// The three objectives the Pareto frontier is computed over. Lower is
/// better on every axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Mean measured iteration time, seconds.
    pub iter_secs: f64,
    /// Total bytes that crossed the wire during the screening run
    /// (warmup included — identical across candidates of a cell, so
    /// comparable).
    pub wire_bytes: u64,
    /// p99 of per-worker total stall time, seconds.
    pub stall_p99_secs: f64,
}

impl Objectives {
    /// Pareto dominance: at least as good on every axis, strictly better
    /// on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.iter_secs <= other.iter_secs
            && self.wire_bytes <= other.wire_bytes
            && self.stall_p99_secs <= other.stall_p99_secs;
        let better = self.iter_secs < other.iter_secs
            || self.wire_bytes < other.wire_bytes
            || self.stall_p99_secs < other.stall_p99_secs;
        no_worse && better
    }
}

/// One scored candidate within a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The (normalized) candidate.
    pub candidate: Candidate,
    /// `Ok` with the measured objectives, or `Err` with the engine's
    /// rejection/failure reason (infeasible in this cell).
    pub outcome: Result<Objectives, String>,
    /// Whether the objectives come from a refinement run rather than the
    /// short screening run.
    pub refined: bool,
    /// Simulator events the run(s) dispatched — the deterministic search
    /// cost this candidate contributed.
    pub events: u64,
    /// Rolling event hash of the scoring run, a determinism breadcrumb.
    pub event_hash: u64,
}

impl Evaluation {
    /// The measured objectives, if the candidate was feasible.
    pub fn objectives(&self) -> Option<&Objectives> {
        self.outcome.as_ref().ok()
    }
}

/// Builds the screening configuration for a candidate in a cell. The
/// refinement stage restores snapshots against this exact configuration
/// (the snapshot codec fingerprints it), so **every** knob must be set
/// the same way here and nowhere else.
pub fn screening_config(
    cell: &Cell,
    cand: &Candidate,
    params: &EvalParams,
    seed: u64,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        cell.model.clone(),
        cand.strategy(),
        cell.machines,
        Bandwidth::from_gbps(cell.gbps),
    )
    .with_iters(params.warmup, params.screen_measure)
    .with_slice_trace()
    .with_seed(seed)
    .with_backend(cand.backend)
    .with_collective_channels(cand.channels)
    .with_faults(cell.fault.plan(cell.machines));
    if let Some(t) = &cell.topology {
        cfg = cfg.with_topology(t.clone()).with_placement(cand.placement);
    }
    cfg
}

/// What a screening run leaves behind: the scored evaluation plus the
/// warmup-boundary snapshot the refinement stage can warm-start from.
#[derive(Debug)]
pub struct Screened {
    /// The scored candidate.
    pub evaluation: Evaluation,
    /// Snapshot at the warmup boundary (absent when the run was
    /// infeasible or finished before the warmup floor was crossed).
    pub snapshot: Option<Vec<u8>>,
}

/// Runs the short screening simulation for one candidate and scores it.
/// Infeasible configurations (engine validation rejections, deadlocks,
/// event-cap blowups) are recorded in the evaluation, not propagated.
pub fn screen(cell: &Cell, cand: &Candidate, params: &EvalParams, seed: u64) -> Screened {
    let cfg = screening_config(cell, cand, params, seed);
    match ClusterSim::new(cfg).try_run_traced_snapshot_at(params.warmup) {
        Ok((result, log, snapshot)) => Screened {
            evaluation: Evaluation {
                candidate: cand.clone(),
                outcome: Ok(objectives_of(&result, log.as_ref())),
                refined: false,
                events: result.events,
                event_hash: result.event_hash,
            },
            snapshot,
        },
        Err(e) => Screened {
            evaluation: Evaluation {
                candidate: cand.clone(),
                outcome: Err(run_error_reason(&e)),
                refined: false,
                events: 0,
                event_hash: 0,
            },
            snapshot: None,
        },
    }
}

/// How a refinement run was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinePath {
    /// Restored the screening run's warmup snapshot and extended the
    /// measurement window — skipped re-simulating the warmup prefix.
    WarmStart,
    /// No usable snapshot (or restore failed): simulated from scratch.
    /// Bit-identical to the warm-start path, just slower.
    Fresh,
}

/// Re-scores a (feasible) screening evaluation over the longer
/// `params.measure` window, warm-starting from `snapshot` when possible.
/// Only `iter_secs` and `stall_p99_secs` are re-measured; `wire_bytes`
/// keeps the screening value (every candidate paid the identical warmup,
/// so screening wire totals stay comparable — and a resumed run's trace
/// covers only the suffix).
pub fn refine(
    cell: &Cell,
    eval: &Evaluation,
    params: &EvalParams,
    seed: u64,
    snapshot: Option<&[u8]>,
) -> (Evaluation, RefinePath) {
    let Some(screen_obj) = eval.objectives().copied() else {
        return (eval.clone(), RefinePath::Fresh);
    };
    let cfg = screening_config(cell, &eval.candidate, params, seed);
    let (run, path) = match snapshot.and_then(|bytes| warm_run(cfg.clone(), bytes, params)) {
        Some(run) => (run, RefinePath::WarmStart),
        None => {
            let fresh = cfg.with_iters(params.warmup, params.measure);
            match ClusterSim::new(fresh).try_run_traced() {
                Ok((result, _log)) => (result, RefinePath::Fresh),
                Err(e) => {
                    // Screening succeeded but the longer run failed
                    // (e.g. event cap): surface it as infeasible.
                    let failed = Evaluation {
                        outcome: Err(run_error_reason(&e)),
                        refined: true,
                        ..eval.clone()
                    };
                    return (failed, RefinePath::Fresh);
                }
            }
        }
    };
    let refined = Evaluation {
        candidate: eval.candidate.clone(),
        outcome: Ok(Objectives {
            iter_secs: run.mean_iteration.as_secs_f64(),
            wire_bytes: screen_obj.wire_bytes,
            stall_p99_secs: stall_p99(&run),
        }),
        refined: true,
        events: run.events,
        event_hash: run.event_hash,
    };
    (refined, path)
}

/// Replays a candidate as a full fresh run with the inline audit enabled.
///
/// # Errors
///
/// The audit report (or any other run failure) as a string.
pub fn audit_replay(
    cell: &Cell,
    cand: &Candidate,
    params: &EvalParams,
    seed: u64,
) -> Result<(), String> {
    let cfg = screening_config(cell, cand, params, seed)
        .with_iters(params.warmup, params.measure)
        .with_audit();
    ClusterSim::new(cfg)
        .try_run_traced()
        .map(|_| ())
        .map_err(|e| run_error_reason(&e))
}

fn warm_run(cfg: ClusterConfig, bytes: &[u8], params: &EvalParams) -> Option<RunResult> {
    let mut sim = ClusterSim::restore(cfg, bytes).ok()?;
    sim.extend_measurement(params.measure).ok()?;
    sim.resume_traced().ok().map(|(result, _log)| result)
}

fn objectives_of(result: &RunResult, log: Option<&TraceLog>) -> Objectives {
    let wire_bytes = log
        .map(|l| {
            l.events()
                .iter()
                .map(|t| match t.event {
                    TraceEvent::WireEnd { bytes, .. } => bytes,
                    _ => 0,
                })
                .sum()
        })
        .unwrap_or(0);
    Objectives {
        iter_secs: result.mean_iteration.as_secs_f64(),
        wire_bytes,
        stall_p99_secs: stall_p99(result),
    }
}

fn stall_p99(result: &RunResult) -> f64 {
    let stalls: Vec<f64> = result
        .stalled_per_worker
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    quantile(&stalls, 0.99).unwrap_or(0.0)
}

fn run_error_reason(e: &RunError) -> String {
    format!("{e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{FaultClass, PriorityPolicy};
    use p3_cluster::BackendKind;
    use p3_models::ModelSpec;
    use p3_topo::Placement;

    fn tiny_cell() -> Cell {
        Cell {
            model: ModelSpec::alexnet(),
            machines: 3,
            gbps: 10.0,
            topology: None,
            fault: FaultClass::None,
        }
    }

    fn cand(backend: BackendKind) -> Candidate {
        Candidate {
            slice: 2_000_000,
            policy: PriorityPolicy::Consumption,
            backend,
            channels: 4,
            placement: Placement::Spread,
        }
    }

    #[test]
    fn screening_scores_and_snapshots() {
        let params = EvalParams {
            warmup: 1,
            screen_measure: 2,
            measure: 4,
        };
        let s = screen(&tiny_cell(), &cand(BackendKind::Ps), &params, 42);
        let obj = s.evaluation.objectives().expect("feasible");
        assert!(obj.iter_secs > 0.0);
        assert!(obj.wire_bytes > 0);
        assert!(s.snapshot.is_some(), "warmup snapshot captured");
    }

    #[test]
    fn warm_refinement_matches_fresh_run_exactly() {
        let params = EvalParams {
            warmup: 1,
            screen_measure: 2,
            measure: 5,
        };
        let cell = tiny_cell();
        let c = cand(BackendKind::Ps);
        let s = screen(&cell, &c, &params, 42);
        let snap = s.snapshot.as_deref().expect("snapshot");
        let (warm, path) = refine(&cell, &s.evaluation, &params, 42, Some(snap));
        assert_eq!(path, RefinePath::WarmStart);
        let (fresh, fresh_path) = refine(&cell, &s.evaluation, &params, 42, None);
        assert_eq!(fresh_path, RefinePath::Fresh);
        // The warm-start claim, pinned: sharing the warmup prefix changes
        // nothing — same result bits, same rolling event hash.
        assert_eq!(warm, fresh);
    }

    #[test]
    fn infeasible_configs_are_recorded_not_fatal() {
        let mut cell = tiny_cell();
        cell.machines = 3; // halving-doubling needs a power of two
        let s = screen(&cell, &cand(BackendKind::HalvingDoubling), &params(), 42);
        assert!(s.evaluation.outcome.is_err());
        assert!(s.snapshot.is_none());
    }

    fn params() -> EvalParams {
        EvalParams {
            warmup: 1,
            screen_measure: 2,
            measure: 4,
        }
    }

    #[test]
    fn audit_replay_is_clean_for_a_sane_config() {
        assert_eq!(
            audit_replay(&tiny_cell(), &cand(BackendKind::Ps), &params(), 42),
            Ok(())
        );
    }
}
