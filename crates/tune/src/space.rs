//! The tuner's configuration space: what a search **cell** is (the
//! deployment you cannot choose — model, cluster size, bandwidth,
//! topology, fault class) and what a **candidate** is (the knobs you can
//! — slice size, priority policy, backend, collective channels, shard
//! placement), plus the [`SearchSpace`] the grid and genetic stages draw
//! candidates from.

use p3_cluster::{BackendKind, FaultPlan, StragglerEpisode, WorkerCrash};
use p3_core::{PriorityMode, SyncStrategy};
use p3_des::{SimDuration, SimTime, SplitMix64};
use p3_models::ModelSpec;
use p3_topo::{Placement, Topology};

/// Smallest slice size the genetic stage will mutate down to.
pub const MIN_SLICE: u64 = 1_000;
/// Largest slice size the genetic stage will mutate up to.
pub const MAX_SLICE: u64 = 64_000_000;

/// How slice priorities are assigned — the tuner's named subset of
/// [`PriorityMode`] (random order is excluded: it exists as an ablation,
/// not a configuration anyone would deploy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityPolicy {
    /// Forward-pass consumption order (the P3 policy).
    Consumption,
    /// Gradient generation order (what plain FIFO achieves).
    Generation,
    /// All slices equal.
    Uniform,
}

impl PriorityPolicy {
    /// Every policy, in the tuner's canonical order.
    pub const ALL: [PriorityPolicy; 3] = [
        PriorityPolicy::Consumption,
        PriorityPolicy::Generation,
        PriorityPolicy::Uniform,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            PriorityPolicy::Consumption => "consumption",
            PriorityPolicy::Generation => "generation",
            PriorityPolicy::Uniform => "uniform",
        }
    }

    /// Parses a name produced by [`PriorityPolicy::name`].
    ///
    /// # Errors
    ///
    /// A message listing the valid names on unknown input.
    pub fn parse(name: &str) -> Result<PriorityPolicy, String> {
        match name {
            "consumption" => Ok(PriorityPolicy::Consumption),
            "generation" => Ok(PriorityPolicy::Generation),
            "uniform" => Ok(PriorityPolicy::Uniform),
            other => Err(format!(
                "unknown priority policy `{other}` (expected consumption|generation|uniform)"
            )),
        }
    }

    /// The engine-level priority mode this policy maps to.
    pub fn mode(self) -> PriorityMode {
        match self {
            PriorityPolicy::Consumption => PriorityMode::Consumption,
            PriorityPolicy::Generation => PriorityMode::Generation,
            PriorityPolicy::Uniform => PriorityMode::Uniform,
        }
    }
}

/// A named fault environment a cell is tuned under. Each class expands to
/// a fixed, deterministic [`FaultPlan`] so two runs of the same cell see
/// identical fault schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Fault-free.
    None,
    /// 0.5% uniform message loss (arms the retransmit machinery).
    Loss,
    /// The last worker computes at 2/3 speed for the whole run.
    Straggler,
    /// The last worker crashes 200 ms in and rejoins 300 ms later.
    Crash,
}

impl FaultClass {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Loss => "loss",
            FaultClass::Straggler => "straggler",
            FaultClass::Crash => "crash",
        }
    }

    /// Parses a name produced by [`FaultClass::name`].
    ///
    /// # Errors
    ///
    /// A message listing the valid names on unknown input.
    pub fn parse(name: &str) -> Result<FaultClass, String> {
        match name {
            "none" => Ok(FaultClass::None),
            "loss" => Ok(FaultClass::Loss),
            "straggler" => Ok(FaultClass::Straggler),
            "crash" => Ok(FaultClass::Crash),
            other => Err(format!(
                "unknown fault class `{other}` (expected none|loss|straggler|crash)"
            )),
        }
    }

    /// The concrete fault schedule for a `machines`-machine cell.
    pub fn plan(self, machines: usize) -> FaultPlan {
        let victim = machines.saturating_sub(1);
        match self {
            FaultClass::None => FaultPlan::none(),
            FaultClass::Loss => FaultPlan {
                loss_probability: 0.005,
                ..FaultPlan::none()
            },
            FaultClass::Straggler => FaultPlan {
                stragglers: vec![StragglerEpisode {
                    worker: victim,
                    start: SimTime::ZERO,
                    duration: SimDuration::from_secs(3600),
                    slowdown: 1.5,
                }],
                ..FaultPlan::none()
            },
            FaultClass::Crash => FaultPlan {
                crashes: vec![WorkerCrash {
                    worker: victim,
                    at: SimTime::ZERO + SimDuration::from_millis(200),
                    rejoin_after: Some(SimDuration::from_millis(300)),
                }],
                ..FaultPlan::none()
            },
        }
    }
}

/// One deployment the tuner searches a configuration for: the facts you
/// cannot choose. Everything here is fixed across every candidate
/// evaluated in the cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload.
    pub model: ModelSpec,
    /// Cluster size (workers, and co-located PS shards under `ps`).
    pub machines: usize,
    /// Per-machine NIC bandwidth in Gbit/s.
    pub gbps: f64,
    /// Rack-level fabric, or `None` for the flat switch.
    pub topology: Option<Topology>,
    /// Fault environment.
    pub fault: FaultClass,
}

impl Cell {
    /// Stable display name, e.g. `resnet50/m8/10gbps/flat/none`.
    pub fn name(&self) -> String {
        let topo = match &self.topology {
            None => "flat".to_string(),
            Some(t) => format!("racks{}x{}o{}", t.racks(), t.rack_size(), t.oversub()),
        };
        format!(
            "{}/m{}/{}gbps/{}/{}",
            self.model.name(),
            self.machines,
            self.gbps,
            topo,
            self.fault.name()
        )
    }
}

/// One point in the configuration space: the knobs the tuner turns.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// P3 slice size (max parameters per slice).
    pub slice: u64,
    /// Priority assignment policy.
    pub policy: PriorityPolicy,
    /// Transport backend.
    pub backend: BackendKind,
    /// Parallel flows per collective transfer (collective backends only).
    pub channels: usize,
    /// PS-shard placement (meaningful only on a rack topology).
    pub placement: Placement,
}

impl Candidate {
    /// Stable sort/dedup key, also the report's candidate label, e.g.
    /// `backend=ps,slice=50000,policy=consumption,channels=4,placement=spread`.
    pub fn key(&self) -> String {
        format!(
            "backend={},slice={},policy={},channels={},placement={}",
            self.backend.name(),
            self.slice,
            self.policy.name(),
            self.channels,
            self.placement.name()
        )
    }

    /// The sync strategy this candidate configures.
    pub fn strategy(&self) -> SyncStrategy {
        SyncStrategy::p3_custom(self.slice, self.policy.mode())
    }

    /// Collapses knobs that do nothing in `cell` onto canonical values so
    /// the grid does not evaluate behaviourally identical duplicates:
    /// `channels` is a collective-only knob (forced to `base_channels`
    /// under `ps`), and `placement` needs a rack topology (forced to
    /// `Spread` on the flat fabric).
    pub fn normalized_for(&self, cell: &Cell, base_channels: usize) -> Candidate {
        let mut c = self.clone();
        if !c.backend.is_collective() {
            c.channels = base_channels;
        }
        if cell.topology.is_none() {
            c.placement = Placement::Spread;
        }
        c
    }
}

/// The axes candidates are drawn from. The grid stage takes the cross
/// product; the genetic stage treats the categorical axes as gene pools
/// and additionally mutates `slice` off-grid (halving/doubling within
/// [`MIN_SLICE`]..=[`MAX_SLICE`]).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Slice sizes.
    pub slices: Vec<u64>,
    /// Priority policies.
    pub policies: Vec<PriorityPolicy>,
    /// Backends.
    pub backends: Vec<BackendKind>,
    /// Collective channel counts.
    pub channels: Vec<usize>,
    /// Placements.
    pub placements: Vec<Placement>,
}

impl SearchSpace {
    /// The default space: the paper's slice sweep anchors, every priority
    /// policy, `ps` vs `ring`, NCCL-style 4 channels, spread placement.
    pub fn default_space() -> SearchSpace {
        SearchSpace {
            slices: vec![25_000, 50_000, 400_000, 1_600_000],
            policies: PriorityPolicy::ALL.to_vec(),
            backends: vec![BackendKind::Ps, BackendKind::Ring],
            channels: vec![4],
            placements: vec![Placement::Spread],
        }
    }

    /// Parses a `--grid` spec: semicolon-separated axes, each
    /// `name=v1,v2,...`, e.g.
    /// `slice=25000,50000;policy=consumption,uniform;backend=ps,ring;channels=2,4;placement=spread`.
    /// Omitted axes keep the default space's values.
    ///
    /// # Errors
    ///
    /// A message naming the offending axis or value.
    pub fn parse(spec: &str) -> Result<SearchSpace, String> {
        let mut space = SearchSpace::default_space();
        for axis in spec.split(';').filter(|a| !a.trim().is_empty()) {
            let (name, values) = axis
                .split_once('=')
                .ok_or_else(|| format!("grid axis `{axis}` is not name=v1,v2,..."))?;
            let values: Vec<&str> = values.split(',').map(str::trim).collect();
            if values.is_empty() || values.iter().any(|v| v.is_empty()) {
                return Err(format!("grid axis `{name}` has an empty value"));
            }
            match name.trim() {
                "slice" => {
                    space.slices = values
                        .iter()
                        .map(|v| {
                            v.parse::<u64>()
                                .map_err(|_| format!("bad slice size `{v}`"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "policy" => {
                    space.policies = values
                        .iter()
                        .map(|v| PriorityPolicy::parse(v))
                        .collect::<Result<_, _>>()?;
                }
                "backend" => {
                    space.backends = values
                        .iter()
                        .map(|v| parse_backend(v))
                        .collect::<Result<_, _>>()?;
                }
                "channels" => {
                    space.channels = values
                        .iter()
                        .map(|v| {
                            v.parse::<usize>()
                                .map_err(|_| format!("bad channel count `{v}`"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "placement" => {
                    space.placements = values
                        .iter()
                        .map(|v| Placement::parse(v))
                        .collect::<Result<_, _>>()?;
                }
                other => {
                    return Err(format!(
                        "unknown grid axis `{other}` \
                         (expected slice|policy|backend|channels|placement)"
                    ));
                }
            }
        }
        space.validate()?;
        Ok(space)
    }

    /// Rejects empty or out-of-range axes.
    ///
    /// # Errors
    ///
    /// A message naming the offending axis.
    pub fn validate(&self) -> Result<(), String> {
        if self.slices.is_empty()
            || self.policies.is_empty()
            || self.backends.is_empty()
            || self.channels.is_empty()
            || self.placements.is_empty()
        {
            return Err("every grid axis needs at least one value".into());
        }
        if let Some(s) = self
            .slices
            .iter()
            .find(|&&s| !(MIN_SLICE..=MAX_SLICE).contains(&s))
        {
            return Err(format!("slice size {s} outside [{MIN_SLICE}, {MAX_SLICE}]"));
        }
        Ok(())
    }

    /// The full cross product, in deterministic axis order.
    pub fn grid(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        for &backend in &self.backends {
            for &slice in &self.slices {
                for &policy in &self.policies {
                    for &channels in &self.channels {
                        for &placement in &self.placements {
                            out.push(Candidate {
                                slice,
                                policy,
                                backend,
                                channels,
                                placement,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// A uniform random candidate from the listed axis values.
    pub fn sample(&self, rng: &mut SplitMix64) -> Candidate {
        Candidate {
            slice: *pick(&self.slices, rng),
            policy: *pick(&self.policies, rng),
            backend: *pick(&self.backends, rng),
            channels: *pick(&self.channels, rng),
            placement: *pick(&self.placements, rng),
        }
    }

    /// Genetic crossover: each gene from one parent, 50/50.
    pub fn crossover(&self, a: &Candidate, b: &Candidate, rng: &mut SplitMix64) -> Candidate {
        Candidate {
            slice: if rng.next_u64() & 1 == 0 {
                a.slice
            } else {
                b.slice
            },
            policy: if rng.next_u64() & 1 == 0 {
                a.policy
            } else {
                b.policy
            },
            backend: if rng.next_u64() & 1 == 0 {
                a.backend
            } else {
                b.backend
            },
            channels: if rng.next_u64() & 1 == 0 {
                a.channels
            } else {
                b.channels
            },
            placement: if rng.next_u64() & 1 == 0 {
                a.placement
            } else {
                b.placement
            },
        }
    }

    /// Genetic mutation. The slice axis is continuous: besides resampling
    /// from the listed values it can halve or double off-grid (clamped to
    /// [`MIN_SLICE`]..=[`MAX_SLICE`]), which is how the genetic stage
    /// escapes the grid. The categorical axes resample from their pools.
    pub fn mutate(&self, c: &Candidate, rng: &mut SplitMix64) -> Candidate {
        let mut m = c.clone();
        // Always perturb the slice: it is the paper's most sensitive knob.
        match rng.next_u64() % 3 {
            0 => m.slice = (m.slice / 2).clamp(MIN_SLICE, MAX_SLICE),
            1 => m.slice = m.slice.saturating_mul(2).clamp(MIN_SLICE, MAX_SLICE),
            _ => m.slice = *pick(&self.slices, rng),
        }
        if rng.next_f64() < 0.3 {
            m.policy = *pick(&self.policies, rng);
        }
        if rng.next_f64() < 0.3 {
            m.backend = *pick(&self.backends, rng);
        }
        if rng.next_f64() < 0.3 {
            m.channels = *pick(&self.channels, rng);
        }
        if rng.next_f64() < 0.3 {
            m.placement = *pick(&self.placements, rng);
        }
        m
    }
}

/// Parses a backend name as accepted by `p3 simulate --backend`.
///
/// # Errors
///
/// A message listing the valid names on unknown input.
pub fn parse_backend(name: &str) -> Result<BackendKind, String> {
    match name {
        "ps" => Ok(BackendKind::Ps),
        "ring" => Ok(BackendKind::Ring),
        "halving-doubling" => Ok(BackendKind::HalvingDoubling),
        other => Err(format!(
            "unknown backend `{other}` (expected ps|ring|halving-doubling)"
        )),
    }
}

fn pick<'a, T>(values: &'a [T], rng: &mut SplitMix64) -> &'a T {
    &values[(rng.next_u64() % values.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_cross_product() {
        let space = SearchSpace::default_space();
        assert_eq!(
            space.grid().len(),
            space.slices.len() * space.policies.len() * space.backends.len()
        );
    }

    #[test]
    fn parse_overrides_only_named_axes() {
        let space = SearchSpace::parse("slice=10000;backend=ring").unwrap();
        assert_eq!(space.slices, vec![10_000]);
        assert_eq!(space.backends, vec![BackendKind::Ring]);
        assert_eq!(space.policies, SearchSpace::default_space().policies);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(SearchSpace::parse("slice=abc").is_err());
        assert!(SearchSpace::parse("warp=9").is_err());
        assert!(SearchSpace::parse("slice=").is_err());
        assert!(SearchSpace::parse("slice=5").is_err(), "below MIN_SLICE");
    }

    #[test]
    fn normalization_collapses_inert_knobs() {
        let cell = Cell {
            model: ModelSpec::resnet50(),
            machines: 4,
            gbps: 10.0,
            topology: None,
            fault: FaultClass::None,
        };
        let c = Candidate {
            slice: 50_000,
            policy: PriorityPolicy::Consumption,
            backend: BackendKind::Ps,
            channels: 8,
            placement: Placement::Packed,
        };
        let n = c.normalized_for(&cell, 4);
        assert_eq!(n.channels, 4);
        assert_eq!(n.placement, Placement::Spread);
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let space = SearchSpace::default_space();
        let mut rng = SplitMix64::new(7);
        let mut c = space.sample(&mut rng);
        for _ in 0..200 {
            c = space.mutate(&c, &mut rng);
            assert!((MIN_SLICE..=MAX_SLICE).contains(&c.slice));
        }
    }
}
