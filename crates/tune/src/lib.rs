//! Deterministic parallel search harness over the P3 cluster simulator —
//! the engine behind `p3 tune`.
//!
//! The simulator is deterministic, snapshot-resumable and cheap, which
//! makes it an embarrassingly-parallel fitness function: this crate
//! searches the configuration space P3's win depends on (slice size,
//! priority policy, backend, collective channels, shard placement) for a
//! user-given set of deployment **cells** (model × machines × bandwidth ×
//! topology × fault class).
//!
//! The search runs in three stages, each fanned across a fixed-size
//! thread pool by [`runner::run_indexed`] and merged **by job index,
//! never completion order** — the invariant that makes the resulting
//! [`TuneReport`] byte-identical run-to-run and across `--jobs` values:
//!
//! 1. **Grid screening** ([`SearchSpace::grid`]): every cross-product
//!    candidate gets a short measured run, which also captures a snapshot
//!    at the warmup boundary.
//! 2. **Genetic refinement** ([`tune`] with `generations > 0`): per-cell
//!    tournament selection + crossover + mutation over the axes, with the
//!    slice axis free to leave the grid. Seeded [`p3_des::SplitMix64`]
//!    streams keyed by (seed, cell, generation) keep it reproducible.
//! 3. **Frontier confirmation**: the Pareto frontier over (iteration
//!    time, bytes on wire, p99 stall) is re-measured over a longer
//!    window, warm-starting from the stage-1 snapshots via
//!    `ClusterSim::restore` + `extend_measurement` so the warmup prefix
//!    is never simulated twice.
//!
//! The recommended configuration per cell is the confirmed frontier's
//! fastest member; `verify_recommended` replays each one under the full
//! trace audit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eval;
pub mod pareto;
pub mod report;
pub mod runner;
pub mod search;
pub mod space;

pub use eval::{EvalParams, Evaluation, Objectives};
pub use report::{CellReport, ConfigEntry, TuneReport, TUNE_FORMAT_VERSION};
pub use runner::run_indexed;
pub use search::{
    tune, verify_recommended, CellOutcome, SearchCost, TuneError, TuneOutcome, TuneSettings,
};
pub use space::{Candidate, Cell, FaultClass, PriorityPolicy, SearchSpace};
