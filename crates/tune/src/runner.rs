//! Deterministic fan-out: run `n` independent jobs on a fixed-size pool
//! of OS threads and return their results **in job-index order**, never
//! completion order. Each simulated run is itself deterministic, so the
//! merged output is byte-identical however many threads raced to produce
//! it — the invariant every tuner artifact rests on. `p3 sweep --jobs`
//! uses the same runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `jobs` worker threads (clamped to `1..=n`) and
/// collects the results indexed by job number. With `jobs <= 1` the jobs
/// run inline on the caller's thread — the reference behaviour the
/// parallel path is pinned against.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope join panics), and panics if the
/// results mutex was poisoned by such a panic.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let out = f(i);
                match slots.lock() {
                    Ok(mut s) => s[i] = Some(out),
                    Err(_) => return, // a sibling panicked; the scope re-raises
                }
            });
        }
    });
    let slots = slots.into_inner().unwrap_or_else(|e| e.into_inner());
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let serial = run_indexed(1, 64, |i| i * i);
        let parallel = run_indexed(8, 64, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[10], 100);
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(100, 2, |i| i), vec![0, 1]);
    }
}
