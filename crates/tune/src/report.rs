//! The versioned `TuneReport`: the search's byte-stable JSON artifact
//! and the human-readable recommended-config table.
//!
//! Hand-rolled like every serialized artifact in the workspace; reading
//! goes through `p3_prof::schema`'s typed accessors so malformed input
//! surfaces as structured [`ReportError`]s, never a panic. The report
//! deliberately contains **no wall-clock values** — search cost appears
//! as deterministic counters — because byte-identity across repeated
//! runs and across `--jobs` values is the contract tests pin.

use crate::eval::Objectives;
use crate::search::{SearchCost, TuneOutcome, TuneSettings};
use p3_prof::schema::{get, get_array, get_f64, get_str, get_u64, parse_checked};
use p3_prof::ReportError;
use p3_trace::json::{escape, format_number, JsonValue};

/// Version stamp of the [`TuneReport`] JSON schema.
pub const TUNE_FORMAT_VERSION: u64 = 1;

/// Discriminator value of the `"format"` member of a tune document.
const TUNE_FORMAT: &str = "p3-tune";

/// One frontier (or recommended) configuration in a cell's report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigEntry {
    /// Candidate key (`backend=...,slice=...,...`).
    pub candidate: String,
    /// Slice size.
    pub slice: u64,
    /// Priority policy name.
    pub policy: String,
    /// Backend name.
    pub backend: String,
    /// Collective channels.
    pub channels: u64,
    /// Placement name.
    pub placement: String,
    /// Measured objectives.
    pub objectives: Objectives,
    /// Whether the numbers come from a refinement run.
    pub refined: bool,
    /// Simulator events the scoring run dispatched.
    pub events: u64,
    /// Rolling event hash of the scoring run.
    pub event_hash: u64,
}

/// One cell in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell display name.
    pub name: String,
    /// Machines in the cell.
    pub machines: u64,
    /// Per-machine bandwidth, Gbit/s.
    pub gbps: f64,
    /// Fault class name.
    pub fault: String,
    /// Candidates evaluated.
    pub evaluated: u64,
    /// Of those, how many the engine rejected or failed.
    pub infeasible: u64,
    /// The Pareto frontier, fastest first.
    pub frontier: Vec<ConfigEntry>,
    /// The recommended configuration (the frontier head), if any
    /// candidate was feasible.
    pub recommended: Option<ConfigEntry>,
}

/// The whole tuning artifact written by `p3 tune --out`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Schema version ([`TUNE_FORMAT_VERSION`]).
    pub version: u64,
    /// Master seed of the search.
    pub seed: u64,
    /// Warmup iterations per run.
    pub warmup: u64,
    /// Measured iterations of screening runs.
    pub screen_measure: u64,
    /// Measured iterations of refinement runs.
    pub measure: u64,
    /// Genetic generations.
    pub generations: u64,
    /// Genetic population per cell.
    pub population: u64,
    /// Deterministic search-cost counters.
    pub cost: SearchCost,
    /// Per-cell results.
    pub cells: Vec<CellReport>,
}

impl TuneReport {
    /// Assembles the report from a finished search. (`jobs` is absent on
    /// purpose: the report must not depend on the thread count.)
    pub fn from_outcome(outcome: &TuneOutcome, settings: &TuneSettings) -> TuneReport {
        let cells = outcome
            .cells
            .iter()
            .map(|o| {
                let entry = |ei: usize| {
                    let e = &o.evaluations[ei];
                    let obj = e.objectives().copied().unwrap_or(Objectives {
                        iter_secs: 0.0,
                        wire_bytes: 0,
                        stall_p99_secs: 0.0,
                    });
                    ConfigEntry {
                        candidate: e.candidate.key(),
                        slice: e.candidate.slice,
                        policy: e.candidate.policy.name().to_string(),
                        backend: e.candidate.backend.name().to_string(),
                        channels: e.candidate.channels as u64,
                        placement: e.candidate.placement.name().to_string(),
                        objectives: obj,
                        refined: e.refined,
                        events: e.events,
                        event_hash: e.event_hash,
                    }
                };
                CellReport {
                    name: o.cell.name(),
                    machines: o.cell.machines as u64,
                    gbps: o.cell.gbps,
                    fault: o.cell.fault.name().to_string(),
                    evaluated: o.evaluations.len() as u64,
                    infeasible: o.evaluations.iter().filter(|e| e.outcome.is_err()).count() as u64,
                    frontier: o.frontier.iter().map(|&ei| entry(ei)).collect(),
                    recommended: o.recommended.map(entry),
                }
            })
            .collect();
        TuneReport {
            version: TUNE_FORMAT_VERSION,
            seed: settings.seed,
            warmup: settings.params.warmup,
            screen_measure: settings.params.screen_measure,
            measure: settings.params.measure,
            generations: settings.generations,
            population: settings.population as u64,
            cost: outcome.cost,
            cells,
        }
    }

    /// Serializes the report as pretty-printed JSON. Deterministic: equal
    /// reports produce equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{TUNE_FORMAT}\",\n"));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"warmup\": {},\n", self.warmup));
        out.push_str(&format!("  \"screen_measure\": {},\n", self.screen_measure));
        out.push_str(&format!("  \"measure\": {},\n", self.measure));
        out.push_str(&format!("  \"generations\": {},\n", self.generations));
        out.push_str(&format!("  \"population\": {},\n", self.population));
        out.push_str("  \"cost\": {\n");
        out.push_str(&format!(
            "    \"screening_runs\": {},\n",
            self.cost.screening_runs
        ));
        out.push_str(&format!(
            "    \"refinement_runs\": {},\n",
            self.cost.refinement_runs
        ));
        out.push_str(&format!(
            "    \"warm_restores\": {},\n",
            self.cost.warm_restores
        ));
        out.push_str(&format!(
            "    \"warm_fallbacks\": {},\n",
            self.cost.warm_fallbacks
        ));
        out.push_str(&format!("    \"cache_hits\": {},\n", self.cost.cache_hits));
        out.push_str(&format!("    \"infeasible\": {},\n", self.cost.infeasible));
        out.push_str(&format!("    \"sim_events\": {}\n", self.cost.sim_events));
        out.push_str("  },\n");
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", escape(&c.name)));
            out.push_str(&format!("      \"machines\": {},\n", c.machines));
            out.push_str(&format!("      \"gbps\": {},\n", format_number(c.gbps)));
            out.push_str(&format!("      \"fault\": \"{}\",\n", escape(&c.fault)));
            out.push_str(&format!("      \"evaluated\": {},\n", c.evaluated));
            out.push_str(&format!("      \"infeasible\": {},\n", c.infeasible));
            out.push_str("      \"frontier\": [");
            for (j, e) in c.frontier.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        ");
                out.push_str(&entry_json(e));
            }
            out.push_str(if c.frontier.is_empty() {
                "],\n"
            } else {
                "\n      ],\n"
            });
            match &c.recommended {
                Some(e) => {
                    out.push_str("      \"recommended\": ");
                    out.push_str(&entry_json(e));
                    out.push('\n');
                }
                None => out.push_str("      \"recommended\": null\n"),
            }
            out.push_str("    }");
        }
        out.push_str(if self.cells.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parses a report back from JSON. Never panics: every malformed
    /// input maps to a [`ReportError`].
    ///
    /// # Errors
    ///
    /// Any [`ReportError`]: not JSON, wrong schema, future version.
    pub fn from_json(text: &str) -> Result<TuneReport, ReportError> {
        let root = parse_checked(text, TUNE_FORMAT, TUNE_FORMAT_VERSION)?;
        let cost_v = get(&root, "cost")?;
        let cost = SearchCost {
            screening_runs: get_u64(cost_v, "screening_runs")?,
            refinement_runs: get_u64(cost_v, "refinement_runs")?,
            warm_restores: get_u64(cost_v, "warm_restores")?,
            warm_fallbacks: get_u64(cost_v, "warm_fallbacks")?,
            cache_hits: get_u64(cost_v, "cache_hits")?,
            infeasible: get_u64(cost_v, "infeasible")?,
            sim_events: get_u64(cost_v, "sim_events")?,
        };
        let mut cells = Vec::new();
        for c in get_array(&root, "cells")? {
            let mut frontier = Vec::new();
            for e in get_array(c, "frontier")? {
                frontier.push(entry_from_json(e)?);
            }
            let recommended = match get(c, "recommended")? {
                JsonValue::Null => None,
                other => Some(entry_from_json(other)?),
            };
            cells.push(CellReport {
                name: get_str(c, "name")?.to_string(),
                machines: get_u64(c, "machines")?,
                gbps: get_f64(c, "gbps")?,
                fault: get_str(c, "fault")?.to_string(),
                evaluated: get_u64(c, "evaluated")?,
                infeasible: get_u64(c, "infeasible")?,
                frontier,
                recommended,
            });
        }
        Ok(TuneReport {
            version: TUNE_FORMAT_VERSION,
            seed: get_u64(&root, "seed")?,
            warmup: get_u64(&root, "warmup")?,
            screen_measure: get_u64(&root, "screen_measure")?,
            measure: get_u64(&root, "measure")?,
            generations: get_u64(&root, "generations")?,
            population: get_u64(&root, "population")?,
            cost,
            cells,
        })
    }

    /// The human-readable recommended-config table `p3 tune` prints.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>16} {:>10} {:>12} {:>3} {:>10} {:>10} {:>10} {:>10}\n",
            "Cell",
            "Backend",
            "Slice",
            "Policy",
            "Ch",
            "Place",
            "Iter(ms)",
            "Wire(MB)",
            "p99 stall"
        ));
        for c in &self.cells {
            match &c.recommended {
                Some(e) => out.push_str(&format!(
                    "{:<42} {:>16} {:>10} {:>12} {:>3} {:>10} {:>10.2} {:>10.1} {:>9.2}ms\n",
                    c.name,
                    e.backend,
                    e.slice,
                    e.policy,
                    e.channels,
                    e.placement,
                    e.objectives.iter_secs * 1e3,
                    e.objectives.wire_bytes as f64 / 1e6,
                    e.objectives.stall_p99_secs * 1e3,
                )),
                None => out.push_str(&format!("{:<42} {:>16}\n", c.name, "(no feasible config)")),
            }
        }
        out
    }
}

fn entry_json(e: &ConfigEntry) -> String {
    format!(
        "{{\"candidate\": \"{}\", \"slice\": {}, \"policy\": \"{}\", \"backend\": \"{}\", \
         \"channels\": {}, \"placement\": \"{}\", \"iter_secs\": {}, \"wire_bytes\": {}, \
         \"stall_p99_secs\": {}, \"refined\": {}, \"events\": {}, \"event_hash\": \"{:#018x}\"}}",
        escape(&e.candidate),
        e.slice,
        escape(&e.policy),
        escape(&e.backend),
        e.channels,
        escape(&e.placement),
        format_number(e.objectives.iter_secs),
        e.objectives.wire_bytes,
        format_number(e.objectives.stall_p99_secs),
        e.refined,
        e.events,
        e.event_hash,
    )
}

fn entry_from_json(v: &JsonValue) -> Result<ConfigEntry, ReportError> {
    let refined = get(v, "refined")?
        .as_bool()
        .ok_or_else(|| ReportError::Schema("member `refined` is not a boolean".into()))?;
    let hash_str = get_str(v, "event_hash")?;
    let event_hash = hash_str
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| {
            ReportError::Schema(format!("member `event_hash` is not a hex hash: {hash_str}"))
        })?;
    Ok(ConfigEntry {
        candidate: get_str(v, "candidate")?.to_string(),
        slice: get_u64(v, "slice")?,
        policy: get_str(v, "policy")?.to_string(),
        backend: get_str(v, "backend")?.to_string(),
        channels: get_u64(v, "channels")?,
        placement: get_str(v, "placement")?.to_string(),
        objectives: Objectives {
            iter_secs: get_f64(v, "iter_secs")?,
            wire_bytes: get_u64(v, "wire_bytes")?,
            stall_p99_secs: get_f64(v, "stall_p99_secs")?,
        },
        refined,
        events: get_u64(v, "events")?,
        event_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneReport {
        let entry = ConfigEntry {
            candidate: "backend=ps,slice=50000,policy=consumption,channels=4,placement=spread"
                .into(),
            slice: 50_000,
            policy: "consumption".into(),
            backend: "ps".into(),
            channels: 4,
            placement: "spread".into(),
            objectives: Objectives {
                iter_secs: 0.125,
                wire_bytes: 123_456_789,
                stall_p99_secs: 0.015,
            },
            refined: true,
            events: 42_000,
            event_hash: 0xDEAD_BEEF_1234_5678,
        };
        TuneReport {
            version: TUNE_FORMAT_VERSION,
            seed: 42,
            warmup: 2,
            screen_measure: 3,
            measure: 10,
            generations: 2,
            population: 8,
            cost: SearchCost {
                screening_runs: 24,
                refinement_runs: 3,
                warm_restores: 2,
                warm_fallbacks: 1,
                cache_hits: 5,
                infeasible: 1,
                sim_events: 1_000_000,
            },
            cells: vec![CellReport {
                name: "resnet50/m4/10gbps/flat/none".into(),
                machines: 4,
                gbps: 10.0,
                fault: "none".into(),
                evaluated: 24,
                infeasible: 1,
                frontier: vec![entry.clone()],
                recommended: Some(entry),
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let back = TuneReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn empty_frontier_round_trips() {
        let mut r = sample();
        r.cells[0].frontier.clear();
        r.cells[0].recommended = None;
        assert_eq!(TuneReport::from_json(&r.to_json()).expect("round trip"), r);
    }

    #[test]
    fn garbage_is_a_json_error() {
        assert!(matches!(
            TuneReport::from_json("nope"),
            Err(ReportError::Json(_))
        ));
    }

    #[test]
    fn wrong_format_is_a_schema_error() {
        assert!(matches!(
            TuneReport::from_json(r#"{"format": "p3-profile", "version": 1}"#),
            Err(ReportError::Schema(_))
        ));
    }

    #[test]
    fn future_version_is_a_version_error() {
        assert!(matches!(
            TuneReport::from_json(r#"{"format": "p3-tune", "version": 99}"#),
            Err(ReportError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn table_lists_recommended_configs() {
        let t = sample().table();
        assert!(t.contains("resnet50/m4/10gbps/flat/none"), "{t}");
        assert!(t.contains("50000"), "{t}");
    }
}
