//! The `p3` binary: parse arguments, dispatch, print.

use p3_cli::{dispatch, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let tokens = if tokens.is_empty() {
        vec!["help".to_string()]
    } else {
        tokens
    };
    match Args::parse(tokens)
        .map_err(Into::into)
        .and_then(|a| dispatch(&a))
    {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
