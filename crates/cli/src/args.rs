//! Dependency-free command-line argument parsing.
//!
//! Grammar: `p3 <command> [positional]... [--flag value]... [--switch]...`.
//! Flags are `--name value` pairs; a flag followed by another flag (or
//! nothing) is a boolean switch. Bare tokens after the command are
//! collected as positionals; commands that take none reject them at
//! dispatch with [`ArgError::UnexpectedPositional`].

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: the command word, positionals, and flag map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    command: String,
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Argument errors, printable as user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No command word given.
    MissingCommand,
    /// A positional token appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A flag's value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `p3 help`)"),
            ArgError::UnexpectedPositional(t) => write!(f, "unexpected argument `{t}`"),
            ArgError::MissingFlag(n) => write!(f, "missing required flag --{n}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on an empty command line.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::UnexpectedPositional(command));
        }
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                positionals.push(tok);
                continue;
            };
            let value = match it.next_if(|v| !v.starts_with("--")) {
                Some(v) => v,
                None => String::from("true"), // boolean switch
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Args {
            command,
            positionals,
            flags,
        })
    }

    /// The command word.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Bare (non-flag) tokens after the command, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Fails if any positional was given — for commands that take none.
    ///
    /// # Errors
    ///
    /// [`ArgError::UnexpectedPositional`] naming the first stray token.
    pub fn reject_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            Some(tok) => Err(ArgError::UnexpectedPositional(tok.clone())),
            None => Ok(()),
        }
    }

    /// Raw flag value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingFlag`] if absent.
    pub fn require(&self, name: &'static str) -> Result<&str, ArgError> {
        self.get(name).ok_or(ArgError::MissingFlag(name))
    }

    /// Typed flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] if present but unparsable.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: name.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Boolean switch (present ⇒ true).
    pub fn switch(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Comma-separated list of floats.
    ///
    /// # Errors
    ///
    /// [`ArgError::BadValue`] on any unparsable element.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
        match self.get(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim().parse().map_err(|_| ArgError::BadValue {
                        flag: name.to_string(),
                        value: v.to_string(),
                        expected: "comma-separated numbers",
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_flags() {
        let a = parse("simulate --model vgg19 --gbps 15 --trace").unwrap();
        assert_eq!(a.command(), "simulate");
        assert_eq!(a.get("model"), Some("vgg19"));
        assert_eq!(a.get_or("gbps", 0.0, "number").unwrap(), 15.0);
        assert!(a.switch("trace"));
        assert!(!a.switch("quick"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("simulate").unwrap();
        assert_eq!(a.get_or("machines", 4usize, "integer").unwrap(), 4);
    }

    #[test]
    fn lists_parse() {
        let a = parse("sweep --gbps 1,2.5,10").unwrap();
        assert_eq!(a.get_f64_list("gbps", &[]).unwrap(), vec![1.0, 2.5, 10.0]);
        let b = parse("sweep").unwrap();
        assert_eq!(b.get_f64_list("gbps", &[4.0]).unwrap(), vec![4.0]);
    }

    #[test]
    fn positionals_are_collected_and_rejectable() {
        let a = parse("audit run.json --strict").unwrap();
        assert_eq!(a.positionals(), ["run.json"]);
        assert!(a.switch("strict"));
        assert!(matches!(
            a.reject_positionals().unwrap_err(),
            ArgError::UnexpectedPositional(t) if t == "run.json"
        ));
        assert!(parse("simulate --model vgg19")
            .unwrap()
            .reject_positionals()
            .is_ok());
    }

    #[test]
    fn errors_are_descriptive() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
        assert!(matches!(
            parse("sim stray")
                .unwrap()
                .reject_positionals()
                .unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
        let a = parse("x --gbps abc").unwrap();
        assert!(matches!(
            a.get_or("gbps", 1.0, "number").unwrap_err(),
            ArgError::BadValue { .. }
        ));
        assert_eq!(
            a.require("model").unwrap_err(),
            ArgError::MissingFlag("model")
        );
        assert!(ArgError::MissingFlag("model")
            .to_string()
            .contains("--model"));
    }

    #[test]
    fn switch_before_flag() {
        let a = parse("run --quick --model vgg19").unwrap();
        assert!(a.switch("quick"));
        assert_eq!(a.get("model"), Some("vgg19"));
    }
}
