//! Engine performance commands: `p3 bench` (measure a sweep of engine
//! configurations into a [`BenchReport`]) and `p3 compare` (diff two
//! reports and fail on regressions).
//!
//! Wall-clock measurement is legal here — the CLI is not a simulation
//! crate — but only ever *reads* the engine: every simulated quantity in a
//! bench point (events, digest, peak in-flight flows, throughput) is
//! deterministic, which is what lets `p3 compare` hold those fields to
//! exact equality across machines while wall-clock throughput gets a
//! tolerance band.

use crate::args::Args;
use crate::commands::{bad_value, CliError};
use p3_cluster::{BackendKind, ClusterConfig, ClusterSim};
use p3_core::SyncStrategy;
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_prof::{
    compare_reports, compare_reports_subset, BenchPoint, BenchReport, BENCH_FORMAT_VERSION,
};
use std::fmt::Write as _;

/// Default output path of `p3 bench` — the checked-in baseline that
/// `p3 compare` gates CI against.
const BENCH_OUT: &str = "BENCH_simulate.json";

/// Cluster sizes of the full ladder. All powers of two so every backend
/// (halving–doubling included) accepts every rung. The engine's membership
/// mask allows 128, but the PS backend's per-reallocation water-fill is
/// quadratic in concurrent flows (the ROADMAP's incremental-allocator
/// item), which puts a 128-machine PS run north of 40 minutes — the ladder
/// stops at 64 until that lands. The trajectory below 64 already records
/// the blow-up the fix must flatten.
const FULL_LADDER: &[usize] = &[16, 32, 64];

/// The `--quick` ladder: small enough for a CI smoke job.
const QUICK_LADDER: &[usize] = &[16, 32];

/// One benchmark run: a fixed, seed-pinned configuration so the
/// deterministic fields of the resulting point are reproducible on any
/// machine. Returns `None` when the configuration fails to run.
fn bench_point(backend: BackendKind, machines: usize) -> Option<BenchPoint> {
    // Collectives want coarse slices (the PS optimum drowns them in
    // per-chunk overhead); 2M parameters matches the slice-size sweep's
    // collective plateau.
    let mut strategy = SyncStrategy::p3();
    if backend.is_collective() {
        strategy.slicing = p3_core::Slicing::MaxParams(2_000_000);
    }
    let cfg = ClusterConfig::new(
        ModelSpec::resnet50(),
        strategy,
        machines,
        Bandwidth::from_gbps(10.0),
    )
    .with_iters(1, 2)
    .with_seed(42)
    .with_backend(backend);
    let started = std::time::Instant::now();
    let r = ClusterSim::new(cfg).with_profiling().try_run().ok()?;
    let wall = started.elapsed().as_secs_f64();
    Some(BenchPoint {
        backend: backend.name().to_string(),
        machines: machines as u64,
        events: r.events,
        event_hash: r.event_hash,
        sim_seconds: r.finished_at.as_secs_f64(),
        peak_in_flight: r.peak_in_flight_flows,
        throughput: r.throughput,
        wall_seconds: wall,
        events_per_sec: if wall > 0.0 {
            r.events as f64 / wall
        } else {
            0.0
        },
    })
}

/// `p3 bench [--quick] [--machines A,B,...] [--out FILE]` — sweeps worker
/// count per backend, writes the measured [`BenchReport`] JSON, and prints
/// the table.
pub(crate) fn bench(args: &Args) -> Result<String, CliError> {
    let ladder: Vec<usize> = match args.get("machines") {
        Some(spec) => spec
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| bad_value("machines", spec, "comma-separated positive integers"))
            })
            .collect::<Result<_, _>>()?,
        None if args.switch("quick") => QUICK_LADDER.to_vec(),
        None => FULL_LADDER.to_vec(),
    };
    let ladder = &ladder[..];
    let out_path = args.get("out").unwrap_or(BENCH_OUT).to_string();
    let backends = [
        BackendKind::Ps,
        BackendKind::Ring,
        BackendKind::HalvingDoubling,
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>10} {:>6} {:>9} {:>12}",
        "backend", "machines", "events", "peak", "wall(s)", "events/sec"
    );
    let mut points = Vec::new();
    for &backend in &backends {
        for &machines in ladder {
            let Some(p) = bench_point(backend, machines) else {
                return Err(CliError::Sim(format!(
                    "bench point {} @ {machines} machines failed to run",
                    backend.name()
                )));
            };
            let _ = writeln!(
                out,
                "{:<18} {:>8} {:>10} {:>6} {:>9.2} {:>12.0}",
                p.backend, p.machines, p.events, p.peak_in_flight, p.wall_seconds, p.events_per_sec
            );
            points.push(p);
        }
    }
    let report = BenchReport {
        version: BENCH_FORMAT_VERSION,
        points,
    };
    std::fs::write(&out_path, report.to_json())
        .map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;
    let _ = writeln!(out, "bench report written: {out_path}");
    Ok(out)
}

/// `p3 compare BASELINE CANDIDATE [--tolerance T] [--subset]` — diffs two
/// bench reports. Deterministic fields must match exactly; wall-clock
/// events/sec may sink to `(1 - T)` of the baseline. Any regression is an
/// error, so the process exits nonzero and CI fails. With `--subset`,
/// baseline points the candidate does not cover are skipped instead of
/// counting as lost coverage — the mode for diffing a `--quick` candidate
/// against the full checked-in ladder.
pub(crate) fn compare(args: &Args) -> Result<String, CliError> {
    let (base_path, cand_path) = match args.positionals() {
        [a, b] => (a.as_str(), b.as_str()),
        _ => {
            return Err(CliError::Sim(
                "compare takes exactly two files: p3 compare BASELINE CANDIDATE".into(),
            ))
        }
    };
    let tolerance: f64 = args.get_or("tolerance", 0.1, "fraction in [0, 1)")?;
    if !(0.0..1.0).contains(&tolerance) {
        return Err(bad_value(
            "tolerance",
            &tolerance.to_string(),
            "fraction in [0, 1)",
        ));
    }
    let read = |path: &str| -> Result<BenchReport, CliError> {
        let doc =
            std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        BenchReport::from_json(&doc).map_err(|e| CliError::Io(format!("{path}: {e}")))
    };
    let baseline = read(base_path)?;
    let candidate = read(cand_path)?;
    let cmp = if args.switch("subset") {
        compare_reports_subset(&baseline, &candidate, tolerance)
    } else {
        compare_reports(&baseline, &candidate, tolerance)
    };
    let rendered = format!("baseline {base_path} vs candidate {cand_path}\n{cmp}");
    if cmp.is_pass() {
        Ok(rendered)
    } else {
        Err(CliError::Regression(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;

    fn run(line: &str) -> Result<String, CliError> {
        let args =
            Args::parse(line.split_whitespace().map(String::from)).map_err(CliError::Args)?;
        dispatch(&args)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("p3_cli_perf_{}_{name}", std::process::id()))
    }

    fn sample_report(events_per_sec: f64, hash: u64) -> String {
        let p = BenchPoint {
            backend: "ps".into(),
            machines: 4,
            events: 1000,
            event_hash: hash,
            sim_seconds: 1.5,
            peak_in_flight: 12,
            throughput: 640.0,
            wall_seconds: 0.5,
            events_per_sec,
        };
        BenchReport {
            version: BENCH_FORMAT_VERSION,
            points: vec![p],
        }
        .to_json()
    }

    #[test]
    fn compare_within_tolerance_passes() {
        let a = tmp("base_ok.json");
        let b = tmp("cand_ok.json");
        std::fs::write(&a, sample_report(2000.0, 7)).unwrap();
        std::fs::write(&b, sample_report(1900.0, 7)).unwrap();
        let out = run(&format!(
            "compare {} {} --tolerance 0.2",
            a.display(),
            b.display()
        ))
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn compare_beyond_tolerance_is_a_regression_error() {
        let a = tmp("base_slow.json");
        let b = tmp("cand_slow.json");
        std::fs::write(&a, sample_report(2000.0, 7)).unwrap();
        std::fs::write(&b, sample_report(500.0, 7)).unwrap();
        let err = run(&format!(
            "compare {} {} --tolerance 0.2",
            a.display(),
            b.display()
        ))
        .unwrap_err();
        assert!(matches!(err, CliError::Regression(_)), "{err}");
        assert!(err.to_string().contains("events/sec"), "{err}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn compare_flags_determinism_drift_at_any_tolerance() {
        let a = tmp("base_drift.json");
        let b = tmp("cand_drift.json");
        std::fs::write(&a, sample_report(2000.0, 7)).unwrap();
        std::fs::write(&b, sample_report(2000.0, 8)).unwrap();
        let err = run(&format!(
            "compare {} {} --tolerance 0.99",
            a.display(),
            b.display()
        ))
        .unwrap_err();
        assert!(err.to_string().contains("event hash"), "{err}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn compare_malformed_inputs_are_structured_errors() {
        let garbage = tmp("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        let profile = tmp("wrong_schema.json");
        std::fs::write(
            &profile,
            r#"{"format": "p3-profile", "version": 1, "timers": [], "counters": []}"#,
        )
        .unwrap();
        let good = tmp("good.json");
        std::fs::write(&good, sample_report(2000.0, 7)).unwrap();
        let msg = run(&format!("compare {} {}", garbage.display(), good.display()))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("not valid JSON"), "{msg}");
        let msg = run(&format!("compare {} {}", profile.display(), good.display()))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("schema mismatch"), "{msg}");
        let msg = run(&format!("compare {} missing_file.json", good.display()))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("missing_file.json"), "{msg}");
        for f in [&garbage, &profile, &good] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn bench_writes_a_parseable_report_and_compares_clean_against_itself() {
        let out_file = tmp("bench.json");
        let out = run(&format!("bench --machines 2 --out {}", out_file.display())).unwrap();
        assert!(out.contains("bench report written:"), "{out}");
        let doc = std::fs::read_to_string(&out_file).unwrap();
        let report = BenchReport::from_json(&doc).unwrap();
        // One rung × three backends, every field populated.
        assert_eq!(report.points.len(), 3);
        for p in &report.points {
            assert_eq!(p.machines, 2);
            assert!(p.events > 0 && p.event_hash != 0 && p.peak_in_flight > 0);
            assert!(p.throughput > 0.0 && p.sim_seconds > 0.0);
        }
        // A report always passes against itself — the CI gate's base case.
        let cmp = run(&format!(
            "compare {} {}",
            out_file.display(),
            out_file.display()
        ))
        .unwrap();
        assert!(cmp.contains("PASS"), "{cmp}");
        let _ = std::fs::remove_file(&out_file);
    }

    #[test]
    fn bench_rejects_bad_machine_lists() {
        assert!(run("bench --machines 0").is_err());
        assert!(run("bench --machines 2,x").is_err());
    }

    #[test]
    fn simulate_profile_out_writes_report_without_perturbing_the_digest() {
        let profile_file = tmp("profile.json");
        let base = "simulate --model resnet50 --machines 2 --gbps 20 --iters 2";
        let plain = run(base).unwrap();
        let profiled = run(&format!("{base} --profile-out {}", profile_file.display())).unwrap();
        assert!(profiled.contains("profile written:"), "{profiled}");
        // Same digest with profiling on or off — the non-intrusiveness
        // invariant, end to end through the CLI.
        let hash_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("event hash:"))
                .expect("simulate reports its event hash")
                .to_string()
        };
        assert_eq!(hash_line(&plain), hash_line(&profiled));
        assert!(plain.contains("peak in-flight flows:"), "{plain}");
        let doc = std::fs::read_to_string(&profile_file).unwrap();
        let report = p3_prof::ProfileReport::from_json(&doc).unwrap();
        assert!(report.timer("dispatch/NetWake").is_some());
        assert!(report.timer("net/poll").is_some());
        assert!(report.counter("net/reallocations").unwrap_or(0) > 0);
        let _ = std::fs::remove_file(&profile_file);
    }

    #[test]
    fn compare_subset_tolerates_quick_ladders() {
        // Baseline covers two rungs, candidate (a --quick run) only one.
        let p = |machines: u64| BenchPoint {
            backend: "ps".into(),
            machines,
            events: 1000 * machines,
            event_hash: 7 + machines,
            sim_seconds: 1.5,
            peak_in_flight: 12,
            throughput: 640.0,
            wall_seconds: 0.5,
            events_per_sec: 2000.0,
        };
        let full = BenchReport {
            version: BENCH_FORMAT_VERSION,
            points: vec![p(4), p(8)],
        };
        let quick = BenchReport {
            version: BENCH_FORMAT_VERSION,
            points: vec![p(4)],
        };
        let a = tmp("subset_base.json");
        let b = tmp("subset_cand.json");
        std::fs::write(&a, full.to_json()).unwrap();
        std::fs::write(&b, quick.to_json()).unwrap();
        let line = format!("compare {} {}", a.display(), b.display());
        let err = run(&line).unwrap_err();
        assert!(err.to_string().contains("missing from candidate"), "{err}");
        let out = run(&format!("{line} --subset")).unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("skipped"), "{out}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn compare_arity_and_tolerance_validation() {
        assert!(run("compare one.json").is_err());
        assert!(run("compare a.json b.json c.json").is_err());
        let err = run("compare a.json b.json --tolerance 1.5").unwrap_err();
        assert!(err.to_string().contains("tolerance"), "{err}");
    }
}
