//! The `p3 tune` subcommand: deterministic parallel configuration search
//! over (model × bandwidth × fault-class) cells. Thin argument/output
//! shell around `p3-tune`'s search driver.

use crate::args::Args;
use crate::commands::{bad_value, model_by_name, parse_topology_flags, resolve_machines, CliError};
use p3_models::ModelSpec;
use p3_tune::{
    tune, verify_recommended, Cell, EvalParams, FaultClass, SearchSpace, TuneReport, TuneSettings,
};
use std::fmt::Write as _;

pub(crate) fn tune_cmd(args: &Args) -> Result<String, CliError> {
    let models: Vec<ModelSpec> = args
        .get("models")
        .unwrap_or("resnet50")
        .split(',')
        .map(|m| model_by_name(m.trim()))
        .collect::<Result<_, _>>()?;
    if args.get("placement").is_some() {
        return Err(bad_value(
            "placement",
            args.get("placement").unwrap_or(""),
            "no --placement flag: tune searches placement, list values in --grid placement=...",
        ));
    }
    let (topology, _placement) = parse_topology_flags(args)?;
    let machines = resolve_machines(args, topology.as_ref(), 4)?;
    let gbps = args.get_f64_list("gbps", &[10.0])?;
    let faults: Vec<FaultClass> = args
        .get("faults")
        .unwrap_or("none")
        .split(',')
        .map(|f| {
            FaultClass::parse(f.trim()).map_err(|_| CliError::UnknownName {
                kind: "fault class",
                value: f.trim().to_string(),
                choices: "none, loss, straggler, crash",
            })
        })
        .collect::<Result<_, _>>()?;
    let space = match args.get("grid") {
        None => SearchSpace::default_space(),
        Some(spec) => SearchSpace::parse(spec).map_err(CliError::Sim)?,
    };
    let params = EvalParams {
        warmup: args.get_or("warmup", 2, "integer")?,
        screen_measure: args.get_or("screen-measure", 3, "integer")?,
        measure: args.get_or("measure", 10, "integer")?,
    };
    let settings = TuneSettings {
        space,
        params,
        generations: args.get_or("genetic-generations", 0, "integer")?,
        population: args.get_or("population", 8, "integer")?,
        seed: args.get_or("seed", 42, "integer")?,
        jobs: args.get_or("jobs", 1, "integer")?,
    };
    let mut cells = Vec::new();
    for model in &models {
        for &g in &gbps {
            for &fault in &faults {
                cells.push(Cell {
                    model: model.clone(),
                    machines,
                    gbps: g,
                    topology: topology.clone(),
                    fault,
                });
            }
        }
    }
    let outcome = tune(&cells, &settings).map_err(|e| CliError::Sim(e.to_string()))?;
    let report = TuneReport::from_outcome(&outcome, &settings);

    let mut out = String::new();
    out.push_str(&report.table());
    for c in &report.cells {
        let _ = writeln!(
            out,
            "cell {}: evaluated {} candidate(s) ({} infeasible), frontier {}",
            c.name,
            c.evaluated,
            c.infeasible,
            c.frontier.len()
        );
    }
    let cost = &report.cost;
    let _ = writeln!(
        out,
        "search cost: {} screening + {} refinement runs ({} warm-started, {} fresh), \
         {} cache hit(s), {} sim events",
        cost.screening_runs,
        cost.refinement_runs,
        cost.warm_restores,
        cost.warm_fallbacks,
        cost.cache_hits,
        cost.sim_events
    );
    // Wall-clock lives only on stdout; the report file stays byte-stable.
    let stage = |key: &str| -> f64 {
        outcome
            .profile
            .timer(match key {
                "screen" => "tune/screen",
                "genetic" => "tune/genetic",
                _ => "tune/refine",
            })
            .map_or(0.0, |t| t.seconds)
    };
    let _ = writeln!(
        out,
        "wall time: {:.2}s (screen {:.2}s, genetic {:.2}s, refine {:.2}s)",
        outcome.profile.wall_seconds,
        stage("screen"),
        stage("genetic"),
        stage("refine"),
    );
    if args.switch("audit") {
        let audited =
            verify_recommended(&outcome, &settings).map_err(|e| CliError::Audit(e.to_string()))?;
        let _ = writeln!(
            out,
            "audit: {audited} recommended config(s) re-simulate audit-clean"
        );
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        let _ = writeln!(out, "report file: {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::args::Args;
    use crate::commands::dispatch;

    fn run(line: &str) -> Result<String, crate::commands::CliError> {
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let args = Args::parse(tokens).expect("parse");
        dispatch(&args)
    }

    const TINY: &str = "tune --models alexnet --gbps 10 --machines 3 \
                        --grid slice=1000000,4000000;policy=consumption;backend=ps \
                        --warmup 1 --screen-measure 2 --measure 3 --seed 7";

    #[test]
    fn tune_prints_table_and_cost() {
        let out = run(TINY).expect("tune runs");
        assert!(out.contains("AlexNet/m3/10gbps/flat/none"), "{out}");
        assert!(out.contains("search cost:"), "{out}");
        assert!(out.contains("frontier"), "{out}");
    }

    #[test]
    fn tune_output_is_jobs_invariant_and_repeatable() {
        let strip_wall = |s: String| -> String {
            s.lines()
                .filter(|l| !l.starts_with("wall time:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = strip_wall(run(&format!("{TINY} --jobs 1")).expect("jobs 1"));
        let b = strip_wall(run(&format!("{TINY} --jobs 4")).expect("jobs 4"));
        let c = strip_wall(run(&format!("{TINY} --jobs 4")).expect("jobs 4 again"));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn tune_audit_verifies_recommended() {
        let out = run(&format!("{TINY} --audit")).expect("tune with audit");
        assert!(out.contains("re-simulate audit-clean"), "{out}");
    }

    #[test]
    fn tune_rejects_placement_flag() {
        assert!(run("tune --models alexnet --placement packed").is_err());
    }

    #[test]
    fn tune_rejects_unknown_fault_class() {
        assert!(run("tune --models alexnet --faults meteor").is_err());
    }
}
