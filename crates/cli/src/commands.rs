//! Command implementations. Each returns its output as a `String` so tests
//! can assert on it; `main` prints.

// p3-lint: allow(file-length): one function per subcommand plus their
// tests; grows a few lines per flag, split when a command outgrows a screen.

use crate::args::{ArgError, Args};
use core::fmt;
use p3_allreduce::{run_allreduce, AllreduceConfig};
use p3_cluster::{
    BackendKind, ClusterConfig, ClusterSim, FaultPlan, LinkDegradation, StragglerEpisode,
    WorkerCrash,
};
use p3_core::SyncStrategy;
use p3_des::{SimDuration, SimTime};
use p3_models::ModelSpec;
use p3_net::Bandwidth;
use p3_tensor::{gaussian_blobs, spirals};
use p3_topo::{Placement, Topology};
use p3_trace::{export_trace_json, import_trace_json, MetricsRegistry};
use p3_train::{train_async, train_sync, SyncMode, TrainConfig};
use std::fmt::Write as _;

/// CLI failure: argument errors or unknown names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Args(ArgError),
    /// Unknown command word.
    UnknownCommand(String),
    /// Unknown model/strategy/mode name.
    UnknownName {
        /// What kind of name (model, strategy, …).
        kind: &'static str,
        /// The offending value.
        value: String,
        /// Valid choices.
        choices: &'static str,
    },
    /// The simulation rejected the configuration or wedged.
    Sim(String),
    /// Writing an output file (trace/metrics export) failed.
    Io(String),
    /// A trace audit found invariant violations; the string is the full
    /// report.
    Audit(String),
    /// `p3 compare` found performance or determinism regressions; the
    /// string is the full comparison report.
    Regression(String),
    /// `p3 lint` found budget overruns or baseline regressions; the string
    /// is the rendered findings report.
    Lint(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `p3 help`)")
            }
            CliError::UnknownName {
                kind,
                value,
                choices,
            } => {
                write!(f, "unknown {kind} `{value}` (choices: {choices})")
            }
            CliError::Sim(why) => write!(f, "{why}"),
            CliError::Io(why) => write!(f, "{why}"),
            CliError::Audit(report) => write!(f, "{report}"),
            CliError::Regression(report) => write!(f, "{report}"),
            CliError::Lint(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

const MODEL_CHOICES: &str =
    "resnet50, inception_v3, vgg19, sockeye, resnet110, alexnet, transformer";

pub(crate) fn model_by_name(name: &str) -> Result<ModelSpec, CliError> {
    match name {
        "resnet50" => Ok(ModelSpec::resnet50()),
        "inception_v3" | "inception" => Ok(ModelSpec::inception_v3()),
        "vgg19" | "vgg" => Ok(ModelSpec::vgg19()),
        "sockeye" => Ok(ModelSpec::sockeye()),
        "resnet110" => Ok(ModelSpec::resnet110()),
        "alexnet" => Ok(ModelSpec::alexnet()),
        "transformer" => Ok(ModelSpec::transformer()),
        other => Err(CliError::UnknownName {
            kind: "model",
            value: other.to_string(),
            choices: MODEL_CHOICES,
        }),
    }
}

const STRATEGY_CHOICES: &str =
    "baseline, slicing, p3, tf, poseidon, p3-generation, p3-random, p3-notify-pull";

fn strategy_by_name(name: &str) -> Result<SyncStrategy, CliError> {
    match name {
        "baseline" => Ok(SyncStrategy::baseline()),
        "slicing" => Ok(SyncStrategy::slicing_only()),
        "p3" => Ok(SyncStrategy::p3()),
        "tf" => Ok(SyncStrategy::tf_style()),
        "poseidon" => Ok(SyncStrategy::poseidon_wfbp()),
        "p3-generation" => Ok(SyncStrategy::p3_generation_order()),
        "p3-random" => Ok(SyncStrategy::p3_random_order(7)),
        "p3-notify-pull" => Ok(SyncStrategy::p3_notify_pull()),
        other => Err(CliError::UnknownName {
            kind: "strategy",
            value: other.to_string(),
            choices: STRATEGY_CHOICES,
        }),
    }
}

/// Splits one episode spec on `:` and parses each field as f64.
fn colon_fields(
    flag: &'static str,
    spec: &str,
    expected: &'static str,
) -> Result<Vec<f64>, CliError> {
    spec.split(':')
        .map(|f| {
            f.trim().parse::<f64>().map_err(|_| {
                CliError::Args(ArgError::BadValue {
                    flag: flag.to_string(),
                    value: spec.to_string(),
                    expected,
                })
            })
        })
        .collect()
}

pub(crate) fn bad_value(flag: &'static str, value: &str, expected: &'static str) -> CliError {
    CliError::Args(ArgError::BadValue {
        flag: flag.to_string(),
        value: value.to_string(),
        expected,
    })
}

/// Builds a [`FaultPlan`] from the fault-injection flags shared by
/// `simulate` and `sweep`:
///
/// * `--loss P` — per-message drop probability in `[0, 1)`;
/// * `--straggler W:START:DUR:SLOWDOWN` — worker W computes SLOWDOWN×
///   slower from START for DUR seconds (comma-separated list);
/// * `--degrade M:START:DUR:FACTOR` — machine M's NIC runs at FACTOR of
///   nominal capacity (comma-separated list);
/// * `--crash W:AT[:REJOIN]` — worker W's process dies at AT seconds,
///   restarting after REJOIN seconds if given (comma-separated list).
fn parse_fault_plan(args: &Args) -> Result<FaultPlan, CliError> {
    let mut plan = FaultPlan::none();
    plan.loss_probability = args.get_or("loss", 0.0, "probability in [0, 1)")?;
    if let Some(spec) = args.get("straggler") {
        for part in spec.split(',') {
            let f = colon_fields("straggler", part, "W:START:DUR:SLOWDOWN")?;
            let [w, start, dur, slowdown] = f[..] else {
                return Err(bad_value("straggler", part, "W:START:DUR:SLOWDOWN"));
            };
            plan.stragglers.push(StragglerEpisode {
                worker: w as usize,
                start: SimTime::from_secs_f64(start),
                duration: SimDuration::from_secs_f64(dur),
                slowdown,
            });
        }
    }
    if let Some(spec) = args.get("degrade") {
        for part in spec.split(',') {
            let f = colon_fields("degrade", part, "M:START:DUR:FACTOR")?;
            let [m, start, dur, factor] = f[..] else {
                return Err(bad_value("degrade", part, "M:START:DUR:FACTOR"));
            };
            plan.link_degradations.push(LinkDegradation {
                machine: m as usize,
                start: SimTime::from_secs_f64(start),
                duration: SimDuration::from_secs_f64(dur),
                capacity_factor: factor,
            });
        }
    }
    if let Some(spec) = args.get("crash") {
        for part in spec.split(',') {
            let f = colon_fields("crash", part, "W:AT[:REJOIN]")?;
            let (w, at, rejoin) = match f[..] {
                [w, at] => (w, at, None),
                [w, at, rejoin] => (w, at, Some(SimDuration::from_secs_f64(rejoin))),
                _ => return Err(bad_value("crash", part, "W:AT[:REJOIN]")),
            };
            plan.crashes.push(WorkerCrash {
                worker: w as usize,
                at: SimTime::from_secs_f64(at),
                rejoin_after: rejoin,
            });
        }
    }
    Ok(plan)
}

/// Parses the topology/placement flags shared by `simulate` and `sweep`:
/// `--topology racks=R,size=S,oversub=F` and
/// `--placement spread|packed|rack-local`.
pub(crate) fn parse_topology_flags(args: &Args) -> Result<(Option<Topology>, Placement), CliError> {
    let topology = match args.get("topology") {
        None => None,
        Some(spec) => Some(
            Topology::parse_spec(spec)
                .map_err(|why| CliError::Sim(format!("--topology: {why}")))?,
        ),
    };
    let placement = match args.get("placement") {
        None => Placement::Spread,
        Some(name) => Placement::parse(name).map_err(|_| CliError::UnknownName {
            kind: "placement",
            value: name.to_string(),
            choices: "spread, packed, rack-local",
        })?,
    };
    Ok((topology, placement))
}

/// Cluster size: derived from the topology when one is given, otherwise
/// from `--machines` (defaulting to `default`). An explicit `--machines`
/// that contradicts the topology is an error.
pub(crate) fn resolve_machines(
    args: &Args,
    topology: Option<&Topology>,
    default: usize,
) -> Result<usize, CliError> {
    let explicit: Option<usize> = match args.get("machines") {
        None => None,
        Some(_) => Some(args.get_or("machines", default, "integer")?),
    };
    match (topology, explicit) {
        (Some(t), Some(m)) if m != t.machines() => Err(CliError::Sim(format!(
            "--machines {m} conflicts with the topology ({}: {} machines)",
            t.describe(),
            t.machines()
        ))),
        (Some(t), _) => Ok(t.machines()),
        (None, m) => Ok(m.unwrap_or(default)),
    }
}

/// Executes a parsed command line and returns its printable output.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, unknown names or malformed
/// flags.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    // Only `audit` (the trace file) and `compare` (the two reports) take
    // positionals.
    if !matches!(args.command(), "audit" | "compare") {
        args.reject_positionals()?;
    }
    match args.command() {
        "help" | "-h" | "--help" => Ok(help()),
        "models" => Ok(models_table()),
        "plan" => plan(args),
        "simulate" => simulate(args),
        "timeline" => timeline(args),
        "sweep" => sweep(args),
        "allreduce" => allreduce(args),
        "train" => train(args),
        "audit" => audit(args),
        "bench" => crate::perf::bench(args),
        "compare" => crate::perf::compare(args),
        "tune" => crate::tune::tune_cmd(args),
        "lint" => lint(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn help() -> String {
    "p3 — Priority-based Parameter Propagation (MLSys 2019) reproduction

USAGE: p3 <command> [--flag value]...

COMMANDS:
  models      List the model zoo with parameter statistics
  plan        Shard-plan statistics        --model M [--strategy S] [--servers N]
  simulate    One training-cluster run     --model M [--strategy S] [--machines N]
                                           [--gbps G] [--iters N] [fault flags]
                                           [--backend ps|ring|halving-doubling]
                                           [--slice-params N]
                                           [--trace-out F] [--metrics-out F]
                                           [topology flags] [iteration flags]
                                           [snapshot flags]
  timeline    ASCII Gantt of a traced run  --model M [--strategy S] [--machines N]
                                           [--gbps G] [--iters N] [--width W]
  sweep       Bandwidth sweep              --model M [--gbps 1,2,4] [--machines N]
                                           [fault flags] [topology flags]
                                           [iteration flags] [--out F] [--resume]
                                           [--jobs N]  parallel rows, deterministic order
  tune        Search for the best config   [--models A,B] [--gbps 1,2] [--machines N]
              per (model,bandwidth,fault)  [--faults none,loss,straggler,crash]
              cell: grid + genetic, Pareto [--grid slice=..;policy=..;backend=..;
              frontier over (iter time,     channels=..;placement=..]
              wire bytes, p99 stall)       [--genetic-generations G] [--population P]
                                           [--jobs N] [--seed S] [--warmup W]
                                           [--screen-measure N] [--measure N]
                                           [--out FILE]  write the TuneReport JSON
                                           [--audit]  replay recommended configs
                                           [topology flags: --topology only]
  allreduce   Collective-aggregation run   --model M [--gbps G] [--layerwise] [--fifo]
  train       Real data-parallel training  [--mode full|dgc|qsgd|terngrad|onebit|asgd]
                                           [--dataset spirals|blobs] [--epochs N]
  audit       Check a trace file against   p3 audit FILE
              the invariant catalog        (FILE from `p3 simulate --trace-out`)
  bench       Benchmark the engine across  [--quick] [--machines A,B,...]
              worker counts and backends   [--out FILE]  (writes BENCH_simulate.json)
  compare     Diff two bench reports       p3 compare BASELINE CANDIDATE
              and fail on regressions      [--tolerance T]  (default 0.1)
                                           [--subset]  skip baseline rungs the
                                           candidate does not cover
  lint        Static determinism analysis  [--root DIR]  workspace root (default .)
              of the workspace: taint,     [--json]  deterministic JSON report
              panic/unwrap ratchets,       [--baseline]  print a fresh
              schema drift, coverage       [findings-baseline] section to ratchet
  help        This text

FAULT FLAGS (simulate, sweep):
  --loss P                        drop each message with probability P
  --straggler W:START:DUR:SLOW    worker W computes SLOW x slower (seconds)
  --degrade M:START:DUR:FACTOR    machine M NIC at FACTOR of capacity
  --crash W:AT[:REJOIN]           worker W dies at AT s, restarts after REJOIN s

TOPOLOGY FLAGS (simulate, sweep):
  --topology racks=R,size=S,oversub=F   rack/core fabric instead of the flat fan-out
                                        (omit --machines; it is R*S)
  --placement spread|packed|rack-local  server placement policy on the topology

ITERATION FLAGS (simulate, sweep):
  --warmup N                      untimed warm-up iterations (simulate: 2, sweep: 1)
  --measure N                     timed iterations (simulate: --iters, sweep: 5)
  --seed N                        simulation seed (sweep default: 42)

TRACE FLAGS (simulate):
  --trace-out FILE                write the event trace as JSON: Perfetto-loadable
                                  and auditable with `p3 audit FILE`
  --metrics-out FILE              write the derived metrics registry as JSON
  --audit                         replay the run's trace through the invariant
                                  catalog (DESIGN.md §10); violations fail the run
  --profile-out FILE              profile the engine itself (timers per event
                                  type, allocator work counters, events/sec) and
                                  write the report as versioned JSON; profiling
                                  never perturbs results (DESIGN.md §13)

SNAPSHOT FLAGS (simulate):
  --snapshot-every N              snapshot every N completed iterations (with
                                  --snapshot-out; the latest snapshot wins)
  --snapshot-out FILE             where to write snapshots (implies every 1)
  --resume-from FILE              restore FILE and run it to completion; the
                                  resumed trace and final event hash are
                                  bit-identical to the uninterrupted run's
  --hash-every N                  emit a rolling state-hash trace event every N
                                  simulator events (divergence bisection)

SWEEP RESUME (sweep):
  --out FILE                      stream each completed row to FILE
  --resume                        reuse rows already present in --out FILE
"
    .to_string()
}

fn models_table() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>14} {:>10}",
        "model", "params(M)", "arrays", "heaviest(%)", "unit"
    );
    for m in [
        ModelSpec::resnet50(),
        ModelSpec::inception_v3(),
        ModelSpec::vgg19(),
        ModelSpec::sockeye(),
        ModelSpec::resnet110(),
        ModelSpec::alexnet(),
        ModelSpec::transformer(),
    ] {
        let Some(h) = m.heaviest_array() else {
            continue; // zoo models all have parameters
        };
        let heaviest = h.params as f64 / m.total_params() as f64 * 100.0;
        let _ = writeln!(
            out,
            "{:<14} {:>10.2} {:>8} {:>13.1}% {:>10}",
            m.name(),
            m.total_params() as f64 / 1e6,
            m.num_arrays(),
            heaviest,
            m.unit().to_string(),
        );
    }
    out
}

fn plan(args: &Args) -> Result<String, CliError> {
    let model = model_by_name(args.require("model")?)?;
    let strategy = strategy_by_name(args.get("strategy").unwrap_or("p3"))?;
    let servers: usize = args.get_or("servers", 4, "integer")?;
    let plan = strategy.plan(&model, servers, 0);
    let loads = plan.server_loads();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} under {} on {servers} servers:",
        model.name(),
        strategy.name()
    );
    let _ = writeln!(out, "  keys:          {}", plan.num_keys());
    let _ = writeln!(out, "  total params:  {}", plan.total_params());
    let empty = || CliError::Sim(format!("{} produced an empty shard plan", model.name()));
    let max = *loads.iter().max().ok_or_else(empty)? as f64;
    let min = *loads.iter().min().ok_or_else(empty)? as f64;
    let _ = writeln!(
        out,
        "  server loads:  {loads:?}  (imbalance {:.3}x)",
        max / min.max(1.0)
    );
    let biggest = plan
        .slices()
        .iter()
        .map(|s| s.params)
        .max()
        .ok_or_else(empty)?;
    let _ = writeln!(out, "  largest slice: {biggest} params");
    Ok(out)
}

fn simulate(args: &Args) -> Result<String, CliError> {
    let model = model_by_name(args.require("model")?)?;
    let mut strategy = strategy_by_name(args.get("strategy").unwrap_or("p3"))?;
    // Collectives want far coarser slices than the PS optimum (the
    // fusion-buffer economics of EXPERIMENTS.md's slice-size sweep), so
    // the granularity is overridable per run.
    if let Some(n) = args.get("slice-params") {
        let n: u64 = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| bad_value("slice-params", n, "positive parameter count"))?;
        strategy.slicing = p3_core::Slicing::MaxParams(n);
    }
    let (topology, placement) = parse_topology_flags(args)?;
    let machines = resolve_machines(args, topology.as_ref(), 4)?;
    let gbps: f64 = args.get_or("gbps", 10.0, "number")?;
    let iters: u64 = args.get_or("iters", 8, "integer")?;
    let warmup: u64 = args.get_or("warmup", 2, "integer")?;
    let measure: u64 = args.get_or("measure", iters, "integer")?;
    let seed: u64 = args.get_or("seed", 0x9e3779b9, "integer")?;
    if measure == 0 {
        return Err(bad_value("measure", "0", "positive integer"));
    }
    let backend = match args.get("backend").unwrap_or("ps") {
        "ps" => BackendKind::Ps,
        "ring" => BackendKind::Ring,
        "halving-doubling" => BackendKind::HalvingDoubling,
        other => return Err(bad_value("backend", other, "ps|ring|halving-doubling")),
    };
    let plan = parse_fault_plan(args)?;
    let faulty = !plan.is_empty();
    let trace_out = args.get("trace-out").map(str::to_string);
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let profile_out = args.get("profile-out").map(str::to_string);
    let audited = args.switch("audit");
    let hash_every: u64 = args.get_or("hash-every", 0, "integer")?;
    let snapshot_every: u64 = args.get_or("snapshot-every", 0, "integer")?;
    let snapshot_out = args.get("snapshot-out").map(str::to_string);
    let resume_from = args.get("resume-from").map(str::to_string);
    if snapshot_every > 0 && snapshot_out.is_none() {
        return Err(CliError::Args(ArgError::MissingFlag("snapshot-out")));
    }
    // `--snapshot-out` alone snapshots every completed iteration.
    let snapshot_every = if snapshot_out.is_some() && snapshot_every == 0 {
        1
    } else {
        snapshot_every
    };
    if resume_from.is_some() && (snapshot_out.is_some() || audited) {
        return Err(CliError::Sim(
            "--resume-from cannot be combined with --snapshot-out or --audit \
             (a resumed trace is a suffix of the full run; audit the full trace instead)"
                .into(),
        ));
    }
    let mut cfg = ClusterConfig::new(model, strategy, machines, Bandwidth::from_gbps(gbps))
        .with_iters(warmup, measure)
        .with_seed(seed)
        .with_faults(plan)
        .with_backend(backend)
        .with_placement(placement);
    if let Some(t) = topology {
        cfg = cfg.with_topology(t);
    }
    if trace_out.is_some() || metrics_out.is_some() {
        cfg = cfg.with_slice_trace();
    }
    if hash_every > 0 {
        cfg = cfg.with_state_hash_every(hash_every);
    }
    if audited {
        cfg = cfg.with_audit();
    }
    let meta = cfg.trace_meta();
    let sim_err = |e: p3_cluster::RunError| match e {
        p3_cluster::RunError::AuditFailed(report) => CliError::Audit(report),
        other => CliError::Sim(other.to_string()),
    };
    let mut snapshot_at: Option<u64> = None;
    // Wall-clock measurement lives in the CLI, outside the deterministic
    // core; the engine-side profiler is enabled only with --profile-out.
    let profiled = |sim: ClusterSim| {
        if profile_out.is_some() {
            sim.with_profiling()
        } else {
            sim
        }
    };
    let run_started = std::time::Instant::now();
    let (r, log) = match (&resume_from, &snapshot_out) {
        (Some(path), _) => {
            let bytes = std::fs::read(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let sim = ClusterSim::restore(cfg, &bytes)
                .map_err(|e| sim_err(p3_cluster::RunError::Snapshot(e)))?;
            profiled(sim).resume_traced().map_err(sim_err)?
        }
        (None, Some(path)) => {
            let mut write_err: Option<String> = None;
            let ran = profiled(ClusterSim::new(cfg)).try_run_traced_with_snapshots(
                snapshot_every,
                |iter, bytes| {
                    if write_err.is_none() {
                        match std::fs::write(path, &bytes) {
                            Ok(()) => snapshot_at = Some(iter),
                            Err(e) => write_err = Some(format!("{path}: {e}")),
                        }
                    }
                },
            );
            if let Some(why) = write_err {
                return Err(CliError::Io(why));
            }
            ran.map_err(sim_err)?
        }
        (None, None) => profiled(ClusterSim::new(cfg))
            .try_run_traced()
            .map_err(sim_err)?,
    };
    let run_wall = run_started.elapsed().as_secs_f64();
    let mut out = format!(
        "throughput: {:.1} {}/sec  |  mean iteration: {}  |  stall fraction: {:.2}\n",
        r.throughput, r.unit, r.mean_iteration, r.mean_stall_fraction
    );
    let _ = writeln!(
        out,
        "iteration p50: {}  |  p99: {}",
        r.p50_iteration, r.p99_iteration
    );
    let _ = writeln!(
        out,
        "engine: {} events ({:.0} events/sec)  |  peak in-flight flows: {}",
        r.events,
        if run_wall > 0.0 {
            r.events as f64 / run_wall
        } else {
            0.0
        },
        r.peak_in_flight_flows
    );
    let _ = writeln!(out, "event hash: {:#018x}", r.event_hash);
    if let Some(path) = &profile_out {
        let profile = r
            .profile
            .as_ref()
            .ok_or_else(|| CliError::Sim("profiled run produced no profile report".into()))?;
        std::fs::write(path, profile.to_json())
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        let _ = writeln!(out, "profile written: {path}");
    }
    if let Some(path) = &resume_from {
        let _ = writeln!(out, "resumed from: {path}");
    }
    if let Some(path) = &snapshot_out {
        match snapshot_at {
            Some(iter) => {
                let _ = writeln!(out, "snapshot written: {path} (iteration {iter})");
            }
            None => {
                let _ = writeln!(
                    out,
                    "no snapshot taken: run finished before iteration {snapshot_every}"
                );
            }
        }
    }
    let stalls: Vec<String> = r
        .stalled_per_worker
        .iter()
        .map(|d| format!("{d}"))
        .collect();
    let _ = writeln!(out, "stall per worker: [{}]", stalls.join(", "));
    if !r.links.is_empty() {
        let _ = writeln!(out, "link utilization:");
        for l in &r.links {
            let _ = writeln!(
                out,
                "  {:<12} {:>5.1}% busy  {:>9.1} MB{}",
                l.name,
                l.busy_fraction * 100.0,
                l.bytes / 1e6,
                if l.transit { "  (core)" } else { "" }
            );
        }
    }
    if backend.is_collective() {
        let _ = writeln!(
            out,
            "backend: {}  |  collective chunks: {}",
            backend.name(),
            r.messages.collective_chunks
        );
    }
    if audited {
        let _ = writeln!(out, "audit: clean (invariant catalog, DESIGN.md §10)");
    }
    if let Some(log) = &log {
        if let Some(path) = &trace_out {
            std::fs::write(path, export_trace_json(log, &meta))
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let _ = writeln!(out, "chrome trace written: {path}");
        }
        if let Some(path) = &metrics_out {
            let mut reg = MetricsRegistry::from_trace(log);
            for l in &r.links {
                reg.record_link_busy(&l.name, l.busy_fraction);
            }
            std::fs::write(path, reg.to_json())
                .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let _ = writeln!(out, "metrics written: {path}");
        }
    }
    if faulty {
        let _ = writeln!(
            out,
            "faults: {} lost, {} retransmits, {} gave up, {} degraded rounds, \
             {} flows cancelled, {} collectives aborted",
            r.faults.messages_lost,
            r.faults.retransmits,
            r.faults.gave_up,
            r.faults.degraded_rounds,
            r.faults.flows_cancelled,
            r.faults.collectives_aborted
        );
    }
    Ok(out)
}

/// Runs a short traced simulation and renders the first `--iters`
/// iterations as an ASCII Gantt chart (rows: per-worker compute/stall,
/// per-machine tx/rx, per-server aggregation).
fn timeline(args: &Args) -> Result<String, CliError> {
    let model = model_by_name(args.require("model")?)?;
    let strategy = strategy_by_name(args.get("strategy").unwrap_or("p3"))?;
    let machines: usize = args.get_or("machines", 2, "integer")?;
    let gbps: f64 = args.get_or("gbps", 10.0, "number")?;
    let iters: u64 = args.get_or("iters", 1, "integer")?;
    let width: usize = args.get_or("width", 72, "integer")?;
    if width == 0 {
        return Err(bad_value("width", "0", "positive integer"));
    }
    // Run one iteration past the rendered window so every span inside the
    // window has its end event on record (open spans are dropped).
    let cfg = ClusterConfig::new(model, strategy, machines, Bandwidth::from_gbps(gbps))
        .with_iters(0, iters.max(1) + 1)
        .with_slice_trace();
    let (_, log) = ClusterSim::new(cfg)
        .try_run_traced()
        .map_err(|e| CliError::Sim(e.to_string()))?;
    let log = log.ok_or_else(|| CliError::Sim("traced run produced no event log".into()))?;
    Ok(p3_cluster::ascii_timeline(&log, machines, iters, width))
}

/// Replays an exported trace file through the invariant catalog
/// (`p3-audit`). Accepts the spliced JSON written by
/// `p3 simulate --trace-out`; configuration-gated checks use the embedded
/// metadata. Violations exit non-zero with the full report.
fn audit(args: &Args) -> Result<String, CliError> {
    let path = match args.positionals() {
        [p] => p.as_str(),
        [] => args.require("file")?,
        [_, extra, ..] => {
            return Err(CliError::Args(ArgError::UnexpectedPositional(
                extra.clone(),
            )))
        }
    };
    let doc = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let (log, meta) = import_trace_json(&doc).map_err(|why| {
        CliError::Io(format!(
            "{path}: {why} (expected a trace written by `p3 simulate --trace-out`)"
        ))
    })?;
    let opts = p3_audit::AuditOptions::from_meta(&meta);
    let report = p3_audit::check_with(&log, &opts);
    if report.is_clean() {
        Ok(format!("{path}: {report}\n"))
    } else {
        Err(CliError::Audit(format!("{path}: {report}")))
    }
}

fn lint(args: &Args) -> Result<String, CliError> {
    let root = args.get("root").unwrap_or(".");
    let report = p3_lint::lint_workspace(std::path::Path::new(root))
        .map_err(|why| CliError::Io(format!("{root}: {why}")))?;
    if args.switch("baseline") {
        // Ratcheting aid: always succeeds so the fresh section can be
        // pasted into `p3-lint.toml` even when the current run is dirty.
        let mut out = String::from("[findings-baseline]\n");
        for (rule, n) in &report.counts {
            let _ = writeln!(out, "\"{rule}\" = {n}");
        }
        return Ok(out);
    }
    let rendered = if args.switch("json") {
        p3_lint::report::report_json(&report)
    } else {
        report.to_string()
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(CliError::Lint(rendered))
    }
}

fn sweep(args: &Args) -> Result<String, CliError> {
    let model = model_by_name(args.require("model")?)?;
    let (topology, placement) = parse_topology_flags(args)?;
    let machines = resolve_machines(args, topology.as_ref(), 4)?;
    let gbps = args.get_f64_list("gbps", &[1.0, 2.0, 4.0, 8.0, 16.0])?;
    let warmup: u64 = args.get_or("warmup", 1, "integer")?;
    let measure: u64 = args.get_or("measure", 5, "integer")?;
    let seed: u64 = args.get_or("seed", 42, "integer")?;
    if measure == 0 {
        return Err(bad_value("measure", "0", "positive integer"));
    }
    let strategies = SyncStrategy::fig7_series();
    let plan = parse_fault_plan(args)?;
    let jobs: usize = args.get_or("jobs", 1, "integer")?;
    let out_path = args.get("out").map(str::to_string);
    let resume = args.switch("resume");
    if resume && out_path.is_none() {
        return Err(CliError::Args(ArgError::MissingFlag("out")));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8}  {:>10}  {:>10}  {:>10}  {:>6}",
        "Gbps", "Baseline", "Slicing", "P3", "Peak"
    );
    // One rendered row: per-strategy throughput plus the row's peak
    // in-flight flow count (the max across its strategies — deterministic,
    // so rows stay reusable under --resume). A configuration that wedges
    // prints as NaN rather than aborting the sweep.
    let row_line = |g: f64| -> String {
        let mut peak = 0u64;
        let t: Vec<f64> = strategies
            .iter()
            .map(|s| {
                let mut cfg =
                    ClusterConfig::new(model.clone(), s.clone(), machines, Bandwidth::from_gbps(g))
                        .with_iters(warmup, measure)
                        .with_seed(seed)
                        .with_faults(plan.clone())
                        .with_placement(placement);
                if let Some(t) = &topology {
                    cfg = cfg.with_topology(t.clone());
                }
                match ClusterSim::new(cfg).try_run() {
                    Ok(r) => {
                        peak = peak.max(r.peak_in_flight_flows);
                        r.throughput
                    }
                    Err(_) => f64::NAN,
                }
            })
            .collect();
        format!(
            "{:>8.1}  {:>10.1}  {:>10.1}  {:>10.1}  {:>6}",
            g, t[0], t[1], t[2], peak
        )
    };
    if let Some(path) = &out_path {
        // Resumable sweep: each completed row is streamed to the results
        // file, and `--resume` reuses rows already present instead of
        // recomputing them — an interrupted sweep loses at most one cell.
        let mut done: Vec<(String, String)> = Vec::new();
        if resume {
            match std::fs::read_to_string(path) {
                Ok(doc) => {
                    for line in doc.lines().filter(|l| !l.trim().is_empty()) {
                        if let Some(key) = line.split_whitespace().next() {
                            done.push((key.to_string(), line.to_string()));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(CliError::Io(format!("{path}: {e}"))),
            }
        }
        // Rows not already in the file are computed on the thread pool and
        // merged back in bandwidth order, so the streamed file is
        // byte-identical whatever --jobs is.
        let missing: Vec<f64> = gbps
            .iter()
            .copied()
            .filter(|g| {
                let key = format!("{g:.1}");
                !done.iter().any(|(k, _)| *k == key)
            })
            .collect();
        let computed = p3_tune::run_indexed(jobs, missing.len(), |i| row_line(missing[i]));
        let mut fresh: Vec<(String, String)> = missing
            .iter()
            .map(|g| format!("{g:.1}"))
            .zip(computed)
            .collect();
        let mut reused = 0usize;
        for &g in &gbps {
            let key = format!("{g:.1}");
            let line = match done.iter().find(|(k, _)| *k == key) {
                Some((_, line)) => {
                    reused += 1;
                    line.clone()
                }
                None => {
                    let idx = fresh
                        .iter()
                        .position(|(k, _)| *k == key)
                        .ok_or_else(|| CliError::Sim(format!("sweep row {key} went missing")))?;
                    let (_, line) = fresh.remove(idx);
                    done.push((key, line.clone()));
                    let doc: String = done.iter().map(|(_, l)| format!("{l}\n")).collect();
                    std::fs::write(path, doc).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                    line
                }
            };
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "results file: {path}");
        if reused > 0 {
            let _ = writeln!(out, "resumed: {reused} row(s) reused");
        }
        return Ok(out);
    }
    for line in p3_tune::run_indexed(jobs, gbps.len(), |i| row_line(gbps[i])) {
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

fn allreduce(args: &Args) -> Result<String, CliError> {
    let model = model_by_name(args.require("model")?)?;
    let machines: usize = args.get_or("machines", 4, "integer")?;
    let gbps: f64 = args.get_or("gbps", 10.0, "number")?;
    let mut cfg = if args.switch("layerwise") {
        AllreduceConfig::layerwise_fifo(model, machines, Bandwidth::from_gbps(gbps))
    } else {
        AllreduceConfig::new(model, machines, Bandwidth::from_gbps(gbps))
    };
    if args.switch("fifo") {
        cfg.priority = false;
    }
    let r = run_allreduce(&cfg);
    Ok(format!(
        "throughput: {:.1} {}/sec  |  mean iteration: {}\n",
        r.throughput, r.unit, r.mean_iteration
    ))
}

fn train(args: &Args) -> Result<String, CliError> {
    let epochs: u32 = args.get_or("epochs", 15, "integer")?;
    let mut cfg = TrainConfig::new(epochs);
    cfg.workers = args.get_or("workers", 4, "integer")?;
    cfg.lr = args.get_or("lr", 0.1f32, "number")?;
    cfg.hidden = vec![48, 24];
    let data = match args.get("dataset").unwrap_or("spirals") {
        "spirals" => spirals(3, 6, 2400, 600, 21),
        "blobs" => gaussian_blobs(4, 10, 2400, 600, 1.2, 21),
        other => {
            return Err(CliError::UnknownName {
                kind: "dataset",
                value: other.to_string(),
                choices: "spirals, blobs",
            })
        }
    };
    let run = match args.get("mode").unwrap_or("full") {
        "full" | "p3" => train_sync(&data, &cfg, SyncMode::FullSync),
        "dgc" => train_sync(
            &data,
            &cfg,
            SyncMode::Dgc {
                final_sparsity: 0.99,
                warmup_epochs: 4,
            },
        ),
        "qsgd" => train_sync(&data, &cfg, SyncMode::Qsgd { levels: 4 }),
        "terngrad" => train_sync(&data, &cfg, SyncMode::TernGrad),
        "onebit" => train_sync(&data, &cfg, SyncMode::OneBit),
        "asgd" => train_async(&data, &cfg, cfg.workers - 1),
        other => {
            return Err(CliError::UnknownName {
                kind: "mode",
                value: other.to_string(),
                choices: "full, dgc, qsgd, terngrad, onebit, asgd",
            })
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mode: {}  epochs: {epochs}  workers: {}",
        run.mode_name, cfg.workers
    );
    for r in &run.records {
        let _ = writeln!(
            out,
            "  epoch {:>3}: loss {:.4}  val accuracy {:.4}",
            r.epoch, r.train_loss, r.val_accuracy
        );
    }
    let _ = writeln!(out, "final accuracy: {:.4}", run.final_accuracy);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> Result<String, CliError> {
        let args = Args::parse(line.split_whitespace().map(String::from))?;
        dispatch(&args)
    }

    #[test]
    fn help_lists_commands() {
        let h = run("help").unwrap();
        for cmd in [
            "models",
            "plan",
            "simulate",
            "sweep",
            "allreduce",
            "train",
            "lint",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn lint_runs_clean_on_this_workspace() {
        // Tests run with the crate dir as cwd; the workspace root is two up.
        let out = run("lint --root ../..").unwrap();
        assert!(out.contains("clean"), "{out}");

        let json = run("lint --root ../.. --json").unwrap();
        assert!(json.contains("\"format\": \"p3-lint\""), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");

        let baseline = run("lint --root ../.. --baseline").unwrap();
        assert!(baseline.starts_with("[findings-baseline]"), "{baseline}");
    }

    #[test]
    fn models_table_has_all_models() {
        let t = run("models").unwrap();
        for m in ["ResNet-50", "VGG-19", "Sockeye", "Transformer"] {
            assert!(t.contains(m), "missing {m}");
        }
        assert!(t.contains("71.5%"), "VGG heaviest share missing:\n{t}");
    }

    #[test]
    fn plan_reports_keys() {
        let out = run("plan --model vgg19 --strategy p3 --servers 4").unwrap();
        assert!(out.contains("keys:"));
        assert!(out.contains("143667240"));
    }

    #[test]
    fn simulate_runs_small() {
        let out = run("simulate --model resnet50 --strategy p3 --machines 2 --gbps 20 --iters 2")
            .unwrap();
        assert!(out.contains("throughput:"), "{out}");
    }

    #[test]
    fn train_runs_small() {
        let out = run("train --mode full --epochs 2 --workers 2").unwrap();
        assert!(out.contains("final accuracy:"), "{out}");
    }

    #[test]
    fn unknown_command_and_names_error() {
        assert!(matches!(
            run("frobnicate"),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            run("plan --model resnet9000"),
            Err(CliError::UnknownName { kind: "model", .. })
        ));
        assert!(matches!(
            run("simulate --model vgg19 --strategy warp"),
            Err(CliError::UnknownName {
                kind: "strategy",
                ..
            })
        ));
        let msg = run("plan").unwrap_err().to_string();
        assert!(msg.contains("--model"), "{msg}");
    }

    #[test]
    fn simulate_with_ring_backend_audits_clean() {
        let out = run(
            "simulate --model resnet50 --machines 2 --gbps 20 --iters 2 \
             --backend ring --slice-params 2000000 --audit",
        )
        .unwrap();
        assert!(out.contains("backend: ring"), "{out}");
        assert!(out.contains("collective chunks:"), "{out}");
        assert!(out.contains("audit: clean"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_slice_params() {
        assert!(matches!(
            run("simulate --model resnet50 --slice-params 0"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn simulate_rejects_bad_backend() {
        assert!(matches!(
            run("simulate --model resnet50 --backend gossip"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        // Halving–doubling needs a power-of-two cluster: the simulator's
        // validation error surfaces, not a panic.
        assert!(matches!(
            run("simulate --model resnet50 --machines 3 --backend halving-doubling"),
            Err(CliError::Sim(_))
        ));
    }

    #[test]
    fn simulate_with_faults_reports_counters() {
        let out = run(
            "simulate --model resnet50 --machines 2 --gbps 20 --iters 2 \
             --loss 0.02 --straggler 1:0:100:2.5",
        )
        .unwrap();
        assert!(out.contains("throughput:"), "{out}");
        assert!(out.contains("p99:"), "{out}");
        assert!(out.contains("faults:"), "{out}");
    }

    #[test]
    fn bad_fault_specs_error() {
        assert!(matches!(
            run("simulate --model resnet50 --straggler nope"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        assert!(matches!(
            run("simulate --model resnet50 --crash 0:1:2:3"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        // Structurally valid but semantically invalid: surfaces the
        // simulator's validation error instead of panicking.
        assert!(matches!(
            run("simulate --model resnet50 --machines 2 --loss 2.0"),
            Err(CliError::Sim(_))
        ));
    }

    #[test]
    fn allreduce_runs_small() {
        let out = run("allreduce --model resnet50 --machines 2 --gbps 20").unwrap();
        assert!(out.contains("throughput:"), "{out}");
    }

    #[test]
    fn simulate_reports_per_worker_stall() {
        let out = run("simulate --model resnet50 --strategy p3 --machines 2 --gbps 20 --iters 2")
            .unwrap();
        assert!(out.contains("stall per worker: ["), "{out}");
    }

    #[test]
    fn simulate_writes_trace_and_metrics_files() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("p3_cli_trace_{}.json", std::process::id()));
        let metrics = dir.join(format!("p3_cli_metrics_{}.json", std::process::id()));
        let line = format!(
            "simulate --model resnet50 --machines 2 --gbps 20 --iters 2 \
             --trace-out {} --metrics-out {}",
            trace.display(),
            metrics.display()
        );
        let out = run(&line).unwrap();
        assert!(out.contains("chrome trace written:"), "{out}");
        assert!(out.contains("metrics written:"), "{out}");

        let doc = std::fs::read_to_string(&trace).unwrap();
        let spans = p3_trace::validate_chrome_trace(&doc).expect("schema-valid trace");
        assert!(!spans.is_empty(), "trace has no complete spans");

        let mdoc = std::fs::read_to_string(&metrics).unwrap();
        assert!(mdoc.contains("\"counters\""), "{mdoc}");
        assert!(mdoc.contains("enqueue_push"), "{mdoc}");

        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn timeline_renders_a_gantt() {
        let out = run("timeline --model resnet50 --machines 2 --gbps 20 --iters 1").unwrap();
        assert!(out.contains("w0 compute"), "{out}");
        assert!(out.contains('#'), "{out}");
    }

    #[test]
    fn timeline_rejects_zero_width() {
        assert!(matches!(
            run("timeline --model resnet50 --machines 2 --width 0"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn simulate_with_topology_reports_link_utilization() {
        let out = run("simulate --model resnet50 --gbps 20 --iters 2 \
             --topology racks=2,size=2,oversub=4")
        .unwrap();
        assert!(out.contains("link utilization:"), "{out}");
        assert!(out.contains("m0.tx"), "{out}");
        assert!(out.contains("(core)"), "{out}");
    }

    #[test]
    fn simulate_without_topology_has_no_link_section() {
        let out = run("simulate --model resnet50 --machines 2 --gbps 20 --iters 2").unwrap();
        assert!(!out.contains("link utilization:"), "{out}");
    }

    #[test]
    fn topology_machine_conflict_and_bad_specs_error() {
        let msg = run("simulate --model resnet50 --machines 8 --topology racks=2,size=2")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("conflicts with the topology"), "{msg}");
        assert!(matches!(
            run("simulate --model resnet50 --topology racks=two"),
            Err(CliError::Sim(_))
        ));
        assert!(matches!(
            run("simulate --model resnet50 --topology racks=2,size=2 --placement sideways"),
            Err(CliError::UnknownName {
                kind: "placement",
                ..
            })
        ));
    }

    #[test]
    fn simulate_accepts_iteration_flags() {
        let out = run("simulate --model resnet50 --machines 2 --gbps 20 \
             --warmup 0 --measure 2 --seed 7")
        .unwrap();
        assert!(out.contains("throughput:"), "{out}");
        assert!(matches!(
            run("simulate --model resnet50 --machines 2 --measure 0"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn sweep_over_topology_is_deterministic() {
        let line = "sweep --model resnet50 --gbps 16 \
                    --topology racks=2,size=2,oversub=4 --measure 2 --seed 9";
        let a = run(line).unwrap();
        let b = run(line).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("Baseline"), "{a}");
    }

    #[test]
    fn sweep_accepts_iteration_flags() {
        let out =
            run("sweep --model resnet50 --machines 2 --gbps 16 --measure 1 --seed 3").unwrap();
        assert!(out.contains("16.0"), "{out}");
        assert!(matches!(
            run("sweep --model resnet50 --machines 2 --measure 0"),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn help_lists_topology_flags() {
        let h = run("help").unwrap();
        for flag in [
            "--topology",
            "--placement",
            "--warmup",
            "--measure",
            "--seed",
        ] {
            assert!(h.contains(flag), "help missing {flag}");
        }
    }

    /// Pulls the `event hash: 0x…` line out of a simulate report.
    fn event_hash_line(out: &str) -> &str {
        out.lines()
            .find(|l| l.starts_with("event hash:"))
            .expect("simulate reports its event hash")
    }

    #[test]
    fn snapshot_then_resume_matches_full_run_digest() {
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("p3_cli_snap_{}.bin", std::process::id()));
        let base = "simulate --model resnet50 --machines 2 --gbps 20 --iters 3";
        let full = run(base).unwrap();
        let snapped = run(&format!(
            "{base} --snapshot-every 1 --snapshot-out {}",
            snap.display()
        ))
        .unwrap();
        assert!(snapped.contains("snapshot written:"), "{snapped}");
        assert_eq!(event_hash_line(&full), event_hash_line(&snapped));
        let resumed = run(&format!("{base} --resume-from {}", snap.display())).unwrap();
        assert!(resumed.contains("resumed from:"), "{resumed}");
        // The rolling hash survives the snapshot, so the resumed run's
        // final digest equals the uninterrupted run's.
        assert_eq!(event_hash_line(&full), event_hash_line(&resumed));
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn resume_from_corrupt_file_is_a_structured_error() {
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("p3_cli_badsnap_{}.bin", std::process::id()));
        std::fs::write(&snap, b"this is not a snapshot").unwrap();
        let msg = run(&format!(
            "simulate --model resnet50 --machines 2 --resume-from {}",
            snap.display()
        ))
        .unwrap_err()
        .to_string();
        assert!(msg.contains("snapshot"), "{msg}");
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn snapshot_flag_validation_errors() {
        assert!(matches!(
            run("simulate --model resnet50 --snapshot-every 2"),
            Err(CliError::Args(ArgError::MissingFlag("snapshot-out")))
        ));
        let msg = run("simulate --model resnet50 --resume-from x.bin --audit")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--resume-from"), "{msg}");
    }

    #[test]
    fn ring_backend_with_crash_completes_and_audits_clean() {
        // Before the degraded-group reform this configuration was rejected
        // at validation; now the collective reforms over the survivors.
        let out = run(
            "simulate --model resnet50 --machines 2 --gbps 20 --iters 3 \
             --backend ring --slice-params 2000000 --crash 1:0.2:0.3 --audit",
        )
        .unwrap();
        assert!(out.contains("backend: ring"), "{out}");
        assert!(out.contains("collectives aborted"), "{out}");
        assert!(out.contains("audit: clean"), "{out}");
    }

    #[test]
    fn sweep_out_streams_rows_and_resume_reuses_them() {
        let dir = std::env::temp_dir();
        let res = dir.join(format!("p3_cli_sweep_{}.txt", std::process::id()));
        let line = format!(
            "sweep --model resnet50 --machines 2 --gbps 8,16 --measure 1 --seed 3 --out {}",
            res.display()
        );
        let fresh = run(&line).unwrap();
        assert!(fresh.contains("results file:"), "{fresh}");
        let doc = std::fs::read_to_string(&res).unwrap();
        assert_eq!(doc.lines().count(), 2, "{doc}");
        let resumed = run(&format!("{line} --resume")).unwrap();
        assert!(resumed.contains("resumed: 2 row(s) reused"), "{resumed}");
        // Reused rows render identically to freshly computed ones.
        for l in doc.lines() {
            assert!(fresh.contains(l), "{fresh}");
            assert!(resumed.contains(l), "{resumed}");
        }
        let _ = std::fs::remove_file(&res);
    }

    #[test]
    fn sweep_resume_requires_out() {
        assert!(matches!(
            run("sweep --model resnet50 --resume"),
            Err(CliError::Args(ArgError::MissingFlag("out")))
        ));
    }

    #[test]
    fn metrics_file_carries_link_gauges_under_topology() {
        let dir = std::env::temp_dir();
        let metrics = dir.join(format!("p3_cli_topo_metrics_{}.json", std::process::id()));
        let line = format!(
            "simulate --model resnet50 --gbps 20 --iters 2 \
             --topology racks=2,size=2,oversub=4 --metrics-out {}",
            metrics.display()
        );
        let out = run(&line).unwrap();
        assert!(out.contains("metrics written:"), "{out}");
        let mdoc = std::fs::read_to_string(&metrics).unwrap();
        assert!(mdoc.contains("link_busy_rack0.up"), "{mdoc}");
        let _ = std::fs::remove_file(&metrics);
    }
}
