//! # p3-cli — command-line interface to the P3 reproduction
//!
//! The `p3` binary wraps the workspace in a handful of commands:
//!
//! ```text
//! p3 models                                   # the model zoo and its stats
//! p3 plan      --model vgg19 --strategy p3    # shard-plan statistics
//! p3 simulate  --model vgg19 --strategy p3 --machines 4 --gbps 15
//! p3 sweep     --model resnet50 --gbps 1,2,4,8
//! p3 tune      --models resnet50 --gbps 5,10 --genetic-generations 2
//! p3 allreduce --model vgg19 --gbps 10
//! p3 train     --mode dgc --epochs 20
//! p3 help
//! ```
//!
//! Command implementations live here (library) so they are unit-testable;
//! `main.rs` only parses `std::env::args` and prints.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
mod commands;
mod perf;
mod tune;

pub use args::{ArgError, Args};
pub use commands::{dispatch, CliError};
