//! End-to-end coverage for `p3 audit`: clean traces pass, each mutated
//! fixture fails naming exactly the invariant it breaks, and the
//! `--audit` simulate flag runs the checker inline.

use std::path::{Path, PathBuf};

use p3_cli::{dispatch, Args, CliError};

fn run(line: &str) -> Result<String, CliError> {
    let args = Args::parse(line.split_whitespace().map(String::from)).expect("parse");
    dispatch(&args)
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/audit")
        .join(name)
}

fn audit_fixture(name: &str) -> Result<String, CliError> {
    run(&format!("audit {}", fixture(name).display()))
}

#[test]
fn clean_fixture_audits_clean() {
    let out = audit_fixture("clean_round.json").expect("clean trace must audit clean");
    assert!(out.contains("audit: clean"), "{out}");
}

#[test]
fn mutated_fixtures_name_their_invariant() {
    // One checked-in trace per invariant in the catalog; `p3 audit` must
    // reject each one and say which invariant broke.
    let cases = [
        ("monotone_clock.json", "monotone-clock"),
        ("causal_order.json", "causal-order"),
        ("byte_conservation.json", "byte-conservation"),
        ("capacity_feasibility.json", "capacity-feasibility"),
        ("priority_inversion.json", "priority-inversion"),
        ("in_flight_window.json", "in-flight-window"),
        ("stall_accounting.json", "stall-accounting"),
    ];
    for (file, invariant) in cases {
        match audit_fixture(file) {
            Err(CliError::Audit(report)) => assert!(
                report.contains(invariant),
                "{file}: report does not name {invariant}:\n{report}"
            ),
            other => panic!("{file}: expected an audit failure, got {other:?}"),
        }
    }
}

#[test]
fn audit_accepts_file_flag_form() {
    let out = run(&format!(
        "audit --file {}",
        fixture("clean_round.json").display()
    ))
    .unwrap();
    assert!(out.contains("audit: clean"), "{out}");
}

#[test]
fn audit_rejects_missing_and_non_trace_files() {
    let err = run("audit /nonexistent/trace.json").unwrap_err();
    assert!(matches!(err, CliError::Io(_)), "{err:?}");

    let garbage = std::env::temp_dir().join(format!("p3-garbage-{}.json", std::process::id()));
    std::fs::write(&garbage, "{\"traceEvents\": []}").unwrap();
    let err = run(&format!("audit {}", garbage.display())).unwrap_err();
    let _ = std::fs::remove_file(&garbage);
    let msg = err.to_string();
    assert!(msg.contains("p3 simulate --trace-out"), "{msg}");
}

#[test]
fn simulated_trace_round_trips_through_audit() {
    let trace = std::env::temp_dir().join(format!("p3-audit-e2e-{}.json", std::process::id()));
    run(&format!(
        "simulate --model resnet50 --strategy p3 --machines 2 --gbps 20 --iters 2 \
         --trace-out {}",
        trace.display()
    ))
    .expect("simulate");
    let out = run(&format!("audit {}", trace.display()));
    let _ = std::fs::remove_file(&trace);
    let out = out.expect("simulator trace must satisfy the invariant catalog");
    assert!(out.contains("audit: clean"), "{out}");
}

#[test]
fn simulate_audit_flag_checks_inline() {
    let out = run(
        "simulate --model resnet50 --strategy p3 --machines 2 --gbps 20 --iters 2 \
                   --audit",
    )
    .expect("audited run");
    assert!(out.contains("audit: clean"), "{out}");
}
